"""Dependency-free SVG visualisation of configurations, runs and safe regions."""

from .svg import SvgCanvas, render_configuration, render_safe_regions, render_trajectories

__all__ = [
    "SvgCanvas",
    "render_configuration",
    "render_safe_regions",
    "render_trajectories",
]
