"""Dependency-free SVG rendering of configurations, runs and constructions.

The reproduction has no plotting dependency; this module writes plain SVG
so that configurations, trajectories, visibility graphs and safe regions
can be inspected in any browser.  It is used by the examples and can be
driven from the command line (``python -m repro --svg out.svg ...``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, TextIO

from ..geometry.disk import Disk
from ..geometry.point import Point, PointLike
from ..model.configuration import Configuration
from ..model.visibility import visibility_edges

_DEFAULT_PALETTE = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
]


@dataclass
class SvgCanvas:
    """A minimal SVG scene with world-to-viewport scaling."""

    width: int = 800
    height: int = 800
    margin: float = 40.0
    background: str = "#ffffff"
    elements: List[str] = field(default_factory=list)
    _bounds: Optional[tuple] = None

    # -- world bounds -------------------------------------------------------------
    def fit(self, points: Iterable[PointLike], *, padding: float = 0.1) -> None:
        """Set the world window to the bounding box of ``points`` plus padding."""
        pts = [Point.of(p) for p in points]
        if not pts:
            raise ValueError("cannot fit an empty point set")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        span = max(x_max - x_min, y_max - y_min, 1e-9)
        pad = padding * span
        self._bounds = (x_min - pad, y_min - pad, x_max + pad, y_max + pad)

    def _require_bounds(self) -> tuple:
        if self._bounds is None:
            raise RuntimeError("call fit() before drawing")
        return self._bounds

    def to_pixel(self, point: PointLike) -> tuple:
        """World point to pixel coordinates (y axis flipped)."""
        x_min, y_min, x_max, y_max = self._require_bounds()
        p = Point.of(point)
        span_x = max(x_max - x_min, 1e-12)
        span_y = max(y_max - y_min, 1e-12)
        scale = min(
            (self.width - 2 * self.margin) / span_x,
            (self.height - 2 * self.margin) / span_y,
        )
        px = self.margin + (p.x - x_min) * scale
        py = self.height - self.margin - (p.y - y_min) * scale
        return px, py

    def pixel_scale(self) -> float:
        """Pixels per world unit."""
        x_min, y_min, x_max, y_max = self._require_bounds()
        span_x = max(x_max - x_min, 1e-12)
        span_y = max(y_max - y_min, 1e-12)
        return min(
            (self.width - 2 * self.margin) / span_x,
            (self.height - 2 * self.margin) / span_y,
        )

    # -- drawing primitives ----------------------------------------------------------
    def add_circle(
        self, center: PointLike, radius: float, *, fill: str = "none",
        stroke: str = "#000000", stroke_width: float = 1.0, opacity: float = 1.0,
    ) -> None:
        """A circle with a world-space radius."""
        cx, cy = self.to_pixel(center)
        r = radius * self.pixel_scale()
        self.elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" fill="{fill}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}" opacity="{opacity}"/>'
        )

    def add_dot(
        self, center: PointLike, *, radius_px: float = 4.0, fill: str = "#1f77b4",
        label: Optional[str] = None,
    ) -> None:
        """A fixed-pixel-size dot (a robot)."""
        cx, cy = self.to_pixel(center)
        self.elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{radius_px:.2f}" fill="{fill}"/>'
        )
        if label is not None:
            self.elements.append(
                f'<text x="{cx + 6:.2f}" y="{cy - 6:.2f}" font-size="11" '
                f'font-family="sans-serif">{label}</text>'
            )

    def add_line(
        self, start: PointLike, end: PointLike, *, stroke: str = "#999999",
        stroke_width: float = 1.0, dashed: bool = False, opacity: float = 1.0,
    ) -> None:
        """A straight segment between two world points."""
        x1, y1 = self.to_pixel(start)
        x2, y2 = self.to_pixel(end)
        dash = ' stroke-dasharray="4 3"' if dashed else ""
        self.elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}" opacity="{opacity}"{dash}/>'
        )

    def add_polyline(
        self, points: Sequence[PointLike], *, stroke: str = "#1f77b4",
        stroke_width: float = 1.5, opacity: float = 0.9,
    ) -> None:
        """An open polyline through the given world points."""
        pixels = " ".join(f"{x:.2f},{y:.2f}" for x, y in (self.to_pixel(p) for p in points))
        self.elements.append(
            f'<polyline points="{pixels}" fill="none" stroke="{stroke}" '
            f'stroke-width="{stroke_width}" opacity="{opacity}"/>'
        )

    def add_text(self, position: PointLike, text: str, *, font_size: int = 14) -> None:
        """A text label anchored at a world point."""
        x, y = self.to_pixel(position)
        self.elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{font_size}" '
            f'font-family="sans-serif">{text}</text>'
        )

    def add_title(self, text: str) -> None:
        """A title at the top-left corner of the canvas."""
        self.elements.append(
            f'<text x="{self.margin:.2f}" y="{self.margin * 0.6:.2f}" font-size="16" '
            f'font-family="sans-serif" font-weight="bold">{text}</text>'
        )

    # -- output -----------------------------------------------------------------------
    def render(self) -> str:
        """The complete SVG document as a string."""
        body = "\n  ".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="100%" height="100%" fill="{self.background}"/>\n'
            f"  {body}\n"
            "</svg>\n"
        )

    def write(self, stream_or_path) -> None:
        """Write the SVG to an open stream or a filesystem path."""
        content = self.render()
        if hasattr(stream_or_path, "write"):
            stream_or_path.write(content)
        else:
            with open(stream_or_path, "w", encoding="utf-8") as handle:
                handle.write(content)


def render_configuration(
    configuration: Configuration,
    *,
    show_edges: bool = True,
    show_ranges: bool = False,
    labels: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    canvas: Optional[SvgCanvas] = None,
) -> SvgCanvas:
    """Draw a configuration: robots, visibility edges, optional sensing ranges."""
    canvas = canvas or SvgCanvas()
    canvas.fit(configuration.positions)
    if title:
        canvas.add_title(title)
    if show_ranges:
        for p in configuration.positions:
            canvas.add_circle(
                p, configuration.visibility_range, stroke="#cccccc", stroke_width=0.7,
                opacity=0.6,
            )
    if show_edges:
        for i, j in sorted(configuration.edges()):
            canvas.add_line(configuration[i], configuration[j], stroke="#bbbbbb")
    for index, p in enumerate(configuration.positions):
        color = _DEFAULT_PALETTE[index % len(_DEFAULT_PALETTE)]
        label = labels[index] if labels is not None and index < len(labels) else None
        canvas.add_dot(p, fill=color, label=label)
    return canvas


def render_trajectories(
    recorder,
    *,
    visibility_range: Optional[float] = None,
    title: Optional[str] = None,
    canvas: Optional[SvgCanvas] = None,
) -> SvgCanvas:
    """Draw the piecewise-linear trajectories of a recorded run."""
    canvas = canvas or SvgCanvas()
    all_points: List[Point] = []
    for robot_id in recorder.robot_ids():
        all_points.extend(point for _, point in recorder.trajectory(robot_id))
    if not all_points:
        raise ValueError("the recorder holds no trajectories")
    canvas.fit(all_points)
    if title:
        canvas.add_title(title)
    for robot_id in recorder.robot_ids():
        color = _DEFAULT_PALETTE[robot_id % len(_DEFAULT_PALETTE)]
        points = [point for _, point in recorder.trajectory(robot_id)]
        if len(points) >= 2:
            canvas.add_polyline(points, stroke=color)
        canvas.add_dot(points[0], fill=color, radius_px=3.0)
        canvas.add_dot(points[-1], fill=color, radius_px=5.0)
    return canvas


def render_safe_regions(
    neighbour_positions: Sequence[PointLike],
    regions: Sequence[Disk],
    *,
    destination: Optional[PointLike] = None,
    title: Optional[str] = None,
    canvas: Optional[SvgCanvas] = None,
) -> SvgCanvas:
    """Draw an observer at the origin, its neighbours, safe regions and destination."""
    canvas = canvas or SvgCanvas()
    extent: List[Point] = [Point.origin()]
    extent.extend(Point.of(p) for p in neighbour_positions)
    for disk in regions:
        extent.append(disk.center + Point(disk.radius, disk.radius))
        extent.append(disk.center - Point(disk.radius, disk.radius))
    canvas.fit(extent)
    if title:
        canvas.add_title(title)
    for disk in regions:
        canvas.add_circle(disk.center, disk.radius, stroke="#2ca02c", fill="#2ca02c",
                          opacity=0.15)
    for index, p in enumerate(neighbour_positions):
        canvas.add_dot(p, fill="#d62728", label=f"N{index}")
        canvas.add_line(Point.origin(), p, stroke="#dddddd", dashed=True)
    canvas.add_dot(Point.origin(), fill="#1f77b4", label="observer")
    if destination is not None:
        canvas.add_dot(destination, fill="#ff7f0e", label="destination")
    return canvas
