"""The HTTP face of the job service: stdlib-only JSON over HTTP.

Endpoints (all JSON):

``GET  /api/health``
    Liveness plus store path and job counts.
``GET  /api/jobs``
    Status snapshots of every job, oldest first.
``POST /api/jobs``
    Submit: body ``{"spec": <SweepSpec.to_dict()>, "options": {...}}``;
    responds ``{"job_id": ..., "state": "queued", "total": N}``.
    Malformed bodies and invalid specs come back as 400 with the
    validation message, unknown routes and job ids as 404.
``GET  /api/jobs/<id>``
    One job's status (state, counts by origin, cost progress, ETA).
``GET  /api/jobs/<id>/results[?rows=1]``
    The live aggregate table; ``rows=1`` adds the raw rows in
    expansion order.

The server is a ``ThreadingHTTPServer``: polls are served while jobs
run on the manager's executor threads.  There is no auth — bind to
localhost (the default) or front it with something that terminates
trust, exactly like the socket backend's worker listener.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .jobs import JobManager

#: Cap on accepted request bodies (a submitted grid is a few KB).
MAX_BODY_BYTES = 1 << 20


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's :class:`JobManager`."""

    server_version = "repro-sweep-service/1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # plumbing

    def _send_json(self, code: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Optional[Dict[str, object]]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "request body required (JSON)"})
            return None
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_json(400, {"error": f"malformed JSON body: {error}"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "JSON body must be an object"})
            return None
        return payload

    def _route(self) -> Tuple[Tuple[str, ...], Dict[str, list]]:
        parsed = urlparse(self.path)
        parts = tuple(part for part in parsed.path.split("/") if part)
        return parts, parse_qs(parsed.query)

    def log_message(self, format: str, *args: object) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # verbs

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        parts, query = self._route()
        if parts == ("api", "health"):
            jobs = self.manager.list_jobs()
            self._send_json(
                200,
                {
                    "status": "ok",
                    "store": str(self.manager.store_path),
                    "jobs": len(jobs),
                    "by_state": _count_states(jobs),
                },
            )
            return
        if parts == ("api", "jobs"):
            self._send_json(200, {"jobs": self.manager.list_jobs()})
            return
        if len(parts) == 3 and parts[:2] == ("api", "jobs"):
            try:
                self._send_json(200, self.manager.status(parts[2]))
            except KeyError:
                self._send_json(404, {"error": f"unknown job id {parts[2]!r}"})
            return
        if (
            len(parts) == 4
            and parts[:2] == ("api", "jobs")
            and parts[3] == "results"
        ):
            include_rows = query.get("rows", ["0"])[-1] not in ("0", "", "false")
            try:
                self._send_json(
                    200, self.manager.results(parts[2], include_rows=include_rows)
                )
            except KeyError:
                self._send_json(404, {"error": f"unknown job id {parts[2]!r}"})
            return
        self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        parts, _ = self._route()
        if parts != ("api", "jobs"):
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        payload = self._read_json_body()
        if payload is None:
            return
        spec = payload.get("spec")
        if not isinstance(spec, dict):
            self._send_json(400, {"error": "body must carry a 'spec' object"})
            return
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            self._send_json(400, {"error": "'options' must be an object"})
            return
        try:
            job_id = self.manager.submit(spec, options=options)
        except (TypeError, ValueError) as error:
            self._send_json(400, {"error": str(error)})
            return
        except RuntimeError as error:
            self._send_json(503, {"error": str(error)})
            return
        status = self.manager.status(job_id)
        self._send_json(
            200,
            {"job_id": job_id, "state": status["state"], "total": status["total"]},
        )


def _count_states(jobs: list) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for job in jobs:
        counts[job["state"]] = counts.get(job["state"], 0) + 1
    return counts


def make_server(
    manager: JobManager,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``manager``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` (how the tests and the smoke tool run).
    The caller owns the lifecycle: ``serve_forever()`` /
    ``shutdown()`` / ``server_close()``, and the manager's
    ``start()``/``shutdown()``.
    """
    server = ThreadingHTTPServer((host, port), ServiceRequestHandler)
    server.manager = manager  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server
