"""Sweep-as-a-service: a job API in front of the sweep runner and store.

Many concurrent clients submit :class:`~repro.sweeps.spec.SweepSpec`
grids, get a job id back, poll status/progress (with the cost-model ETA
from ``RunSpec.cost_hint``), and fetch results as live
:class:`~repro.analysis.streaming.StreamingAggregator` tables that
update as rows land.  Every job runs against the shared
:class:`~repro.store.ResultsStore`, so previously computed science is
served from the store — a re-submitted sweep completes with zero
executed runs and bit-identical results.

Components: :class:`JobManager` (queue + executor threads),
:func:`make_server` (a stdlib ``ThreadingHTTPServer`` speaking JSON),
:class:`ServiceClient` (the urllib client the CLI verbs use), and the
``python -m repro serve`` / ``submit`` / ``status`` / ``results`` CLI.
Protocol and semantics are documented in ``docs/results-store.md``.
"""

from .client import DEFAULT_HOST, DEFAULT_PORT, ServiceClient, ServiceError
from .jobs import JOB_STATES, JobManager
from .server import make_server

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JOB_STATES",
    "JobManager",
    "ServiceClient",
    "ServiceError",
    "make_server",
]
