"""Job lifecycle of the sweep service: submit, queue, execute, observe.

A :class:`JobManager` owns a FIFO of submitted sweeps and a small pool
of executor threads.  Each job runs through the ordinary
:class:`~repro.sweeps.runner.SweepRunner` with the shared results store
attached, so all of the store's semantics — global dedup, claims,
crash-safe ingest — apply unchanged; the manager only adds bookkeeping:

* **Status** is a plain dict (JSON-ready): state, row counts by origin,
  cost-model progress and ETA.  While a job is queued the ETA is the
  summed ``cost_hint`` of its expansion; while it runs, the runner's
  live cost-weighted estimate.
* **Results** are built from a per-job
  :class:`~repro.analysis.streaming.StreamingAggregator` fed by the
  runner's ``on_row`` callback with expansion-order indices, so the
  table is exact mid-run and **bit-identical** to the batch table when
  the job finishes — regardless of arrival order or how many rows came
  from the store.

Concurrent jobs with overlapping grids are safe (that is the point):
their runners coordinate through store claims, so each run key is
computed once and every job still returns its full row set.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from ..analysis.streaming import StreamingAggregator
from ..sweeps.runner import SweepProgress, SweepRunner
from ..sweeps.spec import SweepSpec

#: The job lifecycle.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class _Job:
    """One submitted sweep (mutable, guarded by the manager's lock)."""

    job_id: str
    spec: SweepSpec
    options: Dict[str, object]
    state: str = "queued"
    error: Optional[str] = None
    total: int = 0
    cost_total: float = 0.0
    cost_done: float = 0.0
    eta_s: Optional[float] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    executed: int = 0
    resumed: int = 0
    store_hits: int = 0
    sources: Dict[str, int] = field(default_factory=dict)
    aggregator: StreamingAggregator = field(default_factory=StreamingAggregator)
    rows_by_order: Dict[int, Dict[str, object]] = field(default_factory=dict)


class JobManager:
    """Queue and execute sweep jobs against one shared results store."""

    def __init__(
        self,
        store_path: Union[str, Path],
        jobs_dir: Union[str, Path],
        *,
        workers: int = 1,
        backend: Optional[str] = None,
        executors: int = 1,
        claim_ttl_s: float = 3600.0,
    ) -> None:
        if executors < 1:
            raise ValueError("the manager needs at least one executor thread")
        self.store_path = Path(store_path)
        self.jobs_dir = Path(jobs_dir)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.backend = backend
        self.executors = executors
        self.claim_ttl_s = claim_ttl_s
        self._jobs: Dict[str, _Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._shutdown = threading.Event()
        self._sequence = 0

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Spawn the executor threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.executors):
            thread = threading.Thread(
                target=self._executor_loop,
                name=f"sweep-job-executor-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the executors."""
        self._shutdown.set()
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
        self._threads = []

    def __enter__(self) -> "JobManager":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # submission and observation

    def submit(
        self,
        spec: Union[SweepSpec, Mapping[str, object]],
        *,
        options: Optional[Mapping[str, object]] = None,
    ) -> str:
        """Queue one sweep; returns its job id.

        ``spec`` is a :class:`SweepSpec` or its ``to_dict`` form (what
        the HTTP API receives).  ``options`` may carry ``workers``,
        ``backend`` and ``chunk_size`` overrides for this job; anything
        else is rejected so client typos fail loudly.
        """
        if self._shutdown.is_set():
            raise RuntimeError("the job manager is shutting down")
        if not isinstance(spec, SweepSpec):
            spec = SweepSpec.from_dict(spec)
        opts = dict(options or {})
        unknown = set(opts) - {"workers", "backend", "chunk_size"}
        if unknown:
            raise ValueError(f"unknown job options: {sorted(unknown)}")
        runs = spec.expand()
        cost_total = sum(run.cost_hint() for run in runs)
        digest = hashlib.sha1(
            json.dumps(spec.to_dict(), sort_keys=True).encode("utf-8")
        ).hexdigest()[:8]
        with self._lock:
            self._sequence += 1
            job_id = f"job-{self._sequence:04d}-{digest}"
            self._jobs[job_id] = _Job(
                job_id=job_id,
                spec=spec,
                options=opts,
                total=len(runs),
                cost_total=cost_total,
                eta_s=cost_total,
                submitted_at=time.time(),
            )
        self._queue.put(job_id)
        return job_id

    def status(self, job_id: str) -> Dict[str, object]:
        """One job's status snapshot (raises ``KeyError`` for unknown ids)."""
        with self._lock:
            job = self._jobs[job_id]
            return self._status_locked(job)

    def _status_locked(self, job: _Job) -> Dict[str, object]:
        done = len(job.rows_by_order)
        elapsed = None
        if job.started_at is not None:
            end = job.finished_at if job.finished_at is not None else time.time()
            elapsed = end - job.started_at
        return {
            "job_id": job.job_id,
            "state": job.state,
            "error": job.error,
            "total": job.total,
            "done": done,
            "executed": job.executed,
            "resumed": job.resumed,
            "store_hits": job.store_hits,
            "sources": dict(job.sources),
            "cost_total": job.cost_total,
            "cost_done": job.cost_done,
            "eta_s": job.eta_s,
            "elapsed_s": elapsed,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "workers": job.options.get("workers", self.workers),
            "backend": job.options.get("backend", self.backend),
        }

    def list_jobs(self) -> List[Dict[str, object]]:
        """Status snapshots of every known job, oldest first."""
        with self._lock:
            return [self._status_locked(job) for job in self._jobs.values()]

    def results(
        self, job_id: str, *, include_rows: bool = False
    ) -> Dict[str, object]:
        """A job's live results: the aggregate table (and optionally rows).

        Valid at any point of the lifecycle — mid-run it covers the rows
        that have landed so far; after completion it is bit-identical to
        the batch table over the full sweep.
        """
        with self._lock:
            job = self._jobs[job_id]
            executed = job.sources.get("executed", 0)
            table = job.aggregator.to_table(
                executed=executed,
                resumed=job.aggregator.rows_added - executed,
            )
            payload: Dict[str, object] = {
                "job_id": job.job_id,
                "state": job.state,
                "rows_added": job.aggregator.rows_added,
                "total": job.total,
                "table": table.render(),
            }
            if include_rows:
                payload["rows"] = [
                    job.rows_by_order[index] for index in sorted(job.rows_by_order)
                ]
            return payload

    # ------------------------------------------------------------------
    # execution

    def _executor_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs[job_id]
                job.state = "running"
                job.started_at = time.time()
            try:
                self._run_job(job)
            except Exception as error:  # surface, never kill the executor
                with self._lock:
                    job.state = "failed"
                    job.error = f"{type(error).__name__}: {error}"
                    job.finished_at = time.time()

    def _run_job(self, job: _Job) -> None:
        def on_row(run_key: str, row: Dict[str, object], order: int, source: str) -> None:
            with self._lock:
                job.aggregator.add_row(row, order=order)
                job.rows_by_order[order] = row
                job.sources[source] = job.sources.get(source, 0) + 1

        def on_tick(tick: SweepProgress) -> None:
            with self._lock:
                job.cost_done = tick.cost_done
                job.eta_s = tick.eta_s

        runner = SweepRunner(
            job.spec,
            workers=int(job.options.get("workers", self.workers)),
            chunk_size=int(job.options.get("chunk_size", 1)),
            backend=job.options.get("backend", self.backend),
            jsonl_path=self.jobs_dir / f"{job.job_id}.jsonl",
            store=self.store_path,
            store_claim_ttl_s=self.claim_ttl_s,
            sweep_label=job.job_id,
        )
        result = runner.run(on_row=on_row, stream_progress=on_tick)
        with self._lock:
            job.state = "done"
            job.executed = result.executed
            job.resumed = result.resumed
            job.store_hits = result.store_hits
            job.eta_s = 0.0
            job.cost_done = job.cost_total
            job.finished_at = time.time()
