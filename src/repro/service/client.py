"""A stdlib (urllib) client for the sweep job service.

:class:`ServiceClient` wraps the JSON endpoints of
:mod:`repro.service.server` — submit a grid, poll status, fetch the
live table — and is what the ``submit``/``status``/``results`` CLI
verbs use, so scripts can drive the service the exact same way.
HTTP-level failures surface as :class:`ServiceError` carrying the
status code and the server's error message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Mapping, Optional, Union

from ..sweeps.spec import SweepSpec

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


class ServiceError(RuntimeError):
    """An HTTP request to the service failed."""

    def __init__(self, message: str, *, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talks JSON to one running ``python -m repro serve`` instance."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout_s: float = 30.0,
    ) -> None:
        self.base_url = f"http://{host}:{port}"
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # transport

    def _request(
        self, path: str, *, body: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = _error_detail(error)
            raise ServiceError(
                f"{error.code} from {url}: {detail}", status=error.code
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach the service at {self.base_url}: {error.reason}"
            ) from None

    # ------------------------------------------------------------------
    # endpoints

    def health(self) -> Dict[str, object]:
        """``GET /api/health`` — liveness, store path, job counts."""
        return self._request("/api/health")

    def jobs(self) -> Dict[str, object]:
        """``GET /api/jobs`` — status snapshots of every job."""
        return self._request("/api/jobs")

    def submit(
        self,
        spec: Union[SweepSpec, Mapping[str, object]],
        *,
        options: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        """``POST /api/jobs`` — queue a sweep; returns ``{"job_id": ...}``."""
        if isinstance(spec, SweepSpec):
            spec = spec.to_dict()
        body: Dict[str, object] = {"spec": dict(spec)}
        if options:
            body["options"] = dict(options)
        return self._request("/api/jobs", body=body)

    def status(self, job_id: str) -> Dict[str, object]:
        """``GET /api/jobs/<id>`` — one job's status snapshot."""
        return self._request(f"/api/jobs/{job_id}")

    def results(
        self, job_id: str, *, include_rows: bool = False
    ) -> Dict[str, object]:
        """``GET /api/jobs/<id>/results`` — the live aggregate table."""
        suffix = "?rows=1" if include_rows else ""
        return self._request(f"/api/jobs/{job_id}/results{suffix}")

    def wait(
        self,
        job_id: str,
        *,
        timeout_s: float = 600.0,
        poll_s: float = 0.2,
    ) -> Dict[str, object]:
        """Poll until the job leaves the queued/running states.

        Returns the terminal status snapshot; raises :class:`ServiceError`
        if ``timeout_s`` elapses first.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout_s:.0f}s"
                )
            time.sleep(poll_s)


def _error_detail(error: urllib.error.HTTPError) -> str:
    try:
        payload = json.loads(error.read().decode("utf-8"))
        return str(payload.get("error", payload))
    except (json.JSONDecodeError, UnicodeDecodeError, OSError):
        return error.reason or "unknown error"
