"""The service-facing CLI verbs: ``serve``, ``submit``, ``status``, ``results``.

``python -m repro serve`` starts the job service (HTTP JSON API backed by
a shared :class:`~repro.store.ResultsStore`); the other three verbs are
thin :class:`~repro.service.client.ServiceClient` wrappers so a shell is
a first-class service client::

    python -m repro serve --store results.sqlite --port 8642 &
    python -m repro submit --smoke --wait
    python -m repro status job-0001-ab12cd34
    python -m repro results job-0001-ab12cd34 --rows

``submit`` accepts the exact grid axes of ``python -m repro sweep``
(including ``--smoke``) — the grid is serialised as a
:meth:`SweepSpec.to_dict` payload and POSTed, never executed locally.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path
from typing import List, Optional

from .client import DEFAULT_HOST, DEFAULT_PORT, ServiceClient, ServiceError
from .jobs import JobManager
from .server import make_server

DEFAULT_STORE = "repro-results.sqlite"
DEFAULT_JOBS_DIR = "repro-jobs"


def _add_endpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"service host (default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"service port (default {DEFAULT_PORT})")


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve the sweep job API over HTTP (JSON).",
    )
    _add_endpoint_arguments(parser)
    parser.add_argument("--store", default=DEFAULT_STORE,
                        help="sqlite results store every job runs against "
                             f"(default {DEFAULT_STORE})")
    parser.add_argument("--jobs-dir", default=DEFAULT_JOBS_DIR,
                        help="directory for per-job JSONL row files "
                             f"(default {DEFAULT_JOBS_DIR})")
    parser.add_argument("--workers", type=int, default=1,
                        help="default worker processes per job (default 1)")
    parser.add_argument("--backend", default=None,
                        help="default execution backend for jobs "
                             "(default: serial/process-pool by worker count)")
    parser.add_argument("--executors", type=int, default=1,
                        help="jobs run concurrently by the service (default 1; "
                             "overlapping grids stay exactly-once via store claims)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")
    return parser


def main_serve(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro serve``."""
    args = build_serve_parser().parse_args(argv)
    manager = JobManager(
        Path(args.store),
        Path(args.jobs_dir),
        workers=args.workers,
        backend=args.backend,
        executors=args.executors,
    )
    try:
        server = make_server(
            manager, host=args.host, port=args.port, verbose=args.verbose
        )
    except OSError as error:
        print(f"python -m repro serve: error: cannot bind "
              f"{args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    print(f"serving the sweep job API on http://{host}:{port} "
          f"(store: {args.store}, jobs dir: {args.jobs_dir})", flush=True)

    def _stop(signum: int, frame: object) -> None:  # pragma: no cover
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    manager.start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        server.shutdown()
        server.server_close()
        manager.shutdown()
    return 0


def build_submit_parser() -> argparse.ArgumentParser:
    from ..sweeps.backends import backend_names
    from ..sweeps.cli import add_grid_arguments

    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit a sweep grid to a running job service.",
    )
    add_grid_arguments(parser)
    _add_endpoint_arguments(parser)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for this job (default: the "
                             "service's own default)")
    parser.add_argument("--backend", choices=backend_names(), default=None,
                        help="execution backend for this job")
    parser.add_argument("--wait", action="store_true",
                        help="block until the job finishes, then print its status")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="--wait deadline in seconds (default 600)")
    parser.add_argument("--json", action="store_true",
                        help="print raw JSON instead of human-readable lines")
    return parser


def main_submit(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro submit``."""
    from ..sweeps.cli import spec_from_args

    args = build_submit_parser().parse_args(argv)
    client = ServiceClient(args.host, args.port)
    options = {}
    if args.workers is not None:
        options["workers"] = args.workers
    if args.backend is not None:
        options["backend"] = args.backend
    try:
        spec = spec_from_args(args)
        submitted = client.submit(spec, options=options)
        job_id = str(submitted["job_id"])
        if args.wait:
            status = client.wait(job_id, timeout_s=args.timeout)
            if args.json:
                print(json.dumps(status, indent=2))
            else:
                _print_status(status)
            return 0 if status["state"] == "done" else 1
    except (ValueError, ServiceError) as error:
        print(f"python -m repro submit: error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(submitted, indent=2))
    else:
        print(f"submitted {submitted['total']} runs as {job_id} "
              f"({submitted['state']})")
        print(f"poll with: python -m repro status {job_id} "
              f"--host {args.host} --port {args.port}")
    return 0


def build_status_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro status",
        description="Show the status of one job (or all jobs) on the service.",
    )
    parser.add_argument("job_id", nargs="?", default=None,
                        help="job id; omitted = list every job")
    _add_endpoint_arguments(parser)
    parser.add_argument("--json", action="store_true",
                        help="print raw JSON instead of human-readable lines")
    return parser


def _print_status(status: dict) -> None:
    line = (f"{status['job_id']}: {status['state']} — "
            f"{status['done']}/{status['total']} rows")
    sources = status.get("sources") or {}
    if sources:
        origin = ", ".join(f"{count} {name}" for name, count in sorted(sources.items()))
        line += f" ({origin})"
    eta = status.get("eta_s")
    if status["state"] in ("queued", "running") and eta is not None:
        line += f", ETA {eta:.1f}s"
    if status.get("error"):
        line += f" — {status['error']}"
    print(line)


def main_status(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro status``."""
    args = build_status_parser().parse_args(argv)
    client = ServiceClient(args.host, args.port)
    try:
        if args.job_id is None:
            payload = client.jobs()
            if args.json:
                print(json.dumps(payload, indent=2))
            else:
                jobs = payload["jobs"]
                if not jobs:
                    print("no jobs submitted yet")
                for status in jobs:
                    _print_status(status)
            return 0
        status = client.status(args.job_id)
    except ServiceError as error:
        print(f"python -m repro status: error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(status, indent=2))
    else:
        _print_status(status)
    return 0


def build_results_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro results",
        description="Fetch a job's aggregate table (live while it runs).",
    )
    parser.add_argument("job_id", help="job id to fetch")
    _add_endpoint_arguments(parser)
    parser.add_argument("--rows", action="store_true",
                        help="include the raw per-run rows")
    parser.add_argument("--json", action="store_true",
                        help="print raw JSON instead of the rendered table")
    return parser


def main_results(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro results``."""
    args = build_results_parser().parse_args(argv)
    client = ServiceClient(args.host, args.port)
    try:
        payload = client.results(args.job_id, include_rows=args.rows)
    except ServiceError as error:
        print(f"python -m repro results: error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{payload['job_id']}: {payload['state']} — "
          f"{payload['rows_added']}/{payload['total']} rows aggregated")
    print(payload["table"])
    if args.rows:
        for row in payload["rows"]:
            print(json.dumps(row, sort_keys=True))
    return 0
