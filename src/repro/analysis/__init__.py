"""Analysis helpers: chain/lemma verification and plain-text reporting."""

from .chains import (
    LEMMA5_COS_BOUND,
    ChainEdgeMargin,
    EngagementTrace,
    adversarial_engagement_search,
    chain_invariant_margins,
)
from .congregation import (
    Lemma6Check,
    Lemma8Check,
    check_lemma6_on_configuration,
    check_lemma8_on_configuration,
    lemma6_distance_bound,
    lemma7_distance_bound,
    lemma8_perimeter_decrease,
)
from .streaming import GroupAccumulator, StreamingAggregator
from .tables import TextTable, render_key_values

__all__ = [
    "GroupAccumulator",
    "StreamingAggregator",
    "LEMMA5_COS_BOUND",
    "ChainEdgeMargin",
    "EngagementTrace",
    "Lemma6Check",
    "Lemma8Check",
    "TextTable",
    "adversarial_engagement_search",
    "chain_invariant_margins",
    "check_lemma6_on_configuration",
    "check_lemma8_on_configuration",
    "lemma6_distance_bound",
    "lemma7_distance_bound",
    "lemma8_perimeter_decrease",
    "render_key_values",
]
