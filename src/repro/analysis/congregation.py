"""Numeric verification of the congregation lemmas (Section 5, Lemmas 6-8).

The congregation argument bounds how close a robot with far-away
neighbours can get to a critical point ``A_H`` of the smallest circle
bounding the convex hull (Lemma 6), shows that staying away from ``A_H``
is contagious along the strong-neighbour graph (Lemma 7), and converts an
empty ``d``-neighbourhood of ``A_H`` into a definite perimeter decrease
(Lemma 8).  The experiment ``congregation_lemmas`` samples random
configurations and checks the concrete inequalities below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..algorithms.kknps import KKNPSAlgorithm
from ..geometry.hull import ConvexHull
from ..geometry.point import Point, PointLike
from ..geometry.sec import critical_points, smallest_enclosing_circle
from ..model.snapshot import Snapshot


def lemma6_distance_bound(zeta: float, xi: float, hull_radius: float) -> float:
    """Lemma 6's lower bound on the distance from ``A_H`` after a move.

    ``(zeta / (80 (1 + 1/xi)^{1/2}))^4 * r_H`` for a robot whose
    visibility lower bound satisfies ``V_Z >= zeta * r_H`` and whose motion
    is ``xi``-rigid.
    """
    if not 0.0 < xi <= 1.0:
        raise ValueError("xi must lie in (0, 1]")
    if zeta <= 0.0:
        raise ValueError("zeta must be positive")
    return ((zeta / (80.0 * math.sqrt(1.0 + 1.0 / xi))) ** 4) * hull_radius


def lemma7_distance_bound(mu: float, xi: float, hull_radius: float) -> float:
    """Lemma 7's contagion bound ``(mu / (240 (1+1/xi)^{1/2}))^4 * r_H``."""
    if mu <= 0.0:
        raise ValueError("mu must be positive")
    return ((mu / (240.0 * math.sqrt(1.0 + 1.0 / xi))) ** 4) * hull_radius


def lemma8_perimeter_decrease(d: float, hull_radius: float) -> float:
    """Lemma 8's bound: vacating ``Gamma_d(A_H)`` shortens the perimeter by ``d^3/(4 r_H^2)``."""
    if d < 0.0 or hull_radius <= 0.0:
        raise ValueError("need d >= 0 and a positive hull radius")
    return d ** 3 / (4.0 * hull_radius * hull_radius)


@dataclass(frozen=True)
class Lemma6Check:
    """One robot's move checked against the Lemma-6 bound."""

    robot_index: int
    v_lower_bound: float
    zeta: float
    distance_before: float
    distance_after: float
    bound: float
    satisfied: bool


def check_lemma6_on_configuration(
    positions: Sequence[PointLike],
    visibility_range: float,
    *,
    k: int = 1,
    xi: float = 1.0,
    progress_fraction: float = 1.0,
) -> List[Lemma6Check]:
    """Check Lemma 6 for every robot of a configuration under the KKNPS rule.

    ``A_H`` is taken to be a farthest critical point of the smallest circle
    enclosing the configuration; every robot's (xi-rigid) KKNPS move is
    computed from an exact snapshot and its post-move distance to ``A_H``
    is compared to the lemma's bound with ``zeta = V_Z / r_H``.
    """
    pts = [Point.of(p) for p in positions]
    enclosing = smallest_enclosing_circle(pts)
    r_h = enclosing.radius
    if r_h <= 0.0:
        return []
    criticals = critical_points(enclosing, pts)
    if not criticals:
        return []
    a_h = criticals[0]
    algorithm = KKNPSAlgorithm(k=k)
    fraction = max(xi, min(1.0, progress_fraction))

    checks: List[Lemma6Check] = []
    for index, position in enumerate(pts):
        others = [
            q - position
            for j, q in enumerate(pts)
            if j != index and position.distance_to(q) <= visibility_range + 1e-12
        ]
        if not others:
            continue
        snapshot = Snapshot(neighbours=tuple(others))
        v_z = snapshot.farthest_distance()
        if v_z <= 0.0:
            continue
        zeta = v_z / r_h
        destination = position + algorithm.compute(snapshot)
        realized = position.lerp(destination, fraction)
        bound = lemma6_distance_bound(zeta, xi, r_h)
        checks.append(
            Lemma6Check(
                robot_index=index,
                v_lower_bound=v_z,
                zeta=zeta,
                distance_before=position.distance_to(a_h),
                distance_after=realized.distance_to(a_h),
                bound=bound,
                satisfied=realized.distance_to(a_h) >= bound - 1e-12,
            )
        )
    return checks


@dataclass(frozen=True)
class Lemma8Check:
    """Perimeter decrease after emptying a ``d``-neighbourhood of ``A_H``."""

    d: float
    hull_radius: float
    perimeter_before: float
    perimeter_after: float
    decrease: float
    bound: float
    satisfied: bool


def check_lemma8_on_configuration(
    positions: Sequence[PointLike], d: float
) -> Optional[Lemma8Check]:
    """Check Lemma 8 by clearing the ``d``-neighbourhood of a critical hull point.

    Robots inside ``Gamma_d(A_H)`` are projected just outside it, in the
    direction of the hull's bounding-circle centre (which the paper's
    argument shows is where they must end up); the perimeter decrease is
    then compared to ``d^3 / (4 r_H^2)``.
    """
    pts = [Point.of(p) for p in positions]
    if len(pts) < 3:
        return None
    enclosing = smallest_enclosing_circle(pts)
    r_h = enclosing.radius
    criticals = critical_points(enclosing, pts)
    if not criticals or r_h <= 0.0 or d >= r_h:
        return None
    a_h = criticals[0]
    before = ConvexHull.of(pts).perimeter()
    moved: List[Point] = []
    for p in pts:
        if p.distance_to(a_h) < d:
            direction = (enclosing.center - a_h).unit()
            moved.append(a_h + direction * d)
        else:
            moved.append(p)
    after = ConvexHull.of(moved).perimeter()
    bound = lemma8_perimeter_decrease(d, r_h)
    decrease = before - after
    return Lemma8Check(
        d=d,
        hull_radius=r_h,
        perimeter_before=before,
        perimeter_after=after,
        decrease=decrease,
        bound=bound,
        satisfied=decrease >= bound - 1e-12,
    )
