"""Incremental sweep aggregation over streamed result rows.

The sweep runner streams rows as runs complete — in whatever order the
execution backend finishes them.  :class:`StreamingAggregator` consumes
that stream one row at a time and maintains the same group-by statistics
the batch :meth:`~repro.sweeps.runner.SweepResult.to_table` table
reports, so a live progress display (or a monitoring hook) can render
the aggregate mid-sweep without a second pass over the JSONL file.

Exactness contract: the finished table is **bit-identical** to the batch
table over the same rows, regardless of arrival order.  Counters and
maxima are order-independent anyway; the float means are made exact by
remembering each sample with its *order index* (the run's position in
the sweep's deterministic expansion) and summing in order-index order at
render time.  Running sums are still kept for the cheap mid-sweep
:meth:`snapshot`, where last-ULP exactness does not matter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .tables import TextTable

#: The batch table's group-by key: (algorithm, scheduler, workload, error model).
GroupKey = Tuple[str, str, str, str]

#: Row fields every aggregated row must carry.
REQUIRED_FIELDS = (
    "algorithm",
    "scheduler",
    "workload",
    "error_model",
    "converged",
    "cohesion",
    "activations",
    "final_diameter",
)


@dataclass
class GroupAccumulator:
    """Running statistics of one (algorithm, scheduler, workload, error) group."""

    count: int = 0
    converged: int = 0
    cohesive: int = 0
    activations_sum: float = 0.0
    diameter_sum: float = 0.0
    diameter_max: float = -math.inf
    #: (order index, activations, final diameter) per row — the exact-mean
    #: and quantile record.
    samples: List[Tuple[int, float, float]] = field(default_factory=list)

    def add(self, order: int, row: Mapping[str, object]) -> None:
        activations = row["activations"]
        diameter = row["final_diameter"]
        self.count += 1
        self.converged += bool(row["converged"])
        self.cohesive += bool(row["cohesion"])
        self.activations_sum += activations
        self.diameter_sum += diameter
        self.diameter_max = max(self.diameter_max, diameter)
        self.samples.append((order, activations, diameter))

    def ordered_samples(self) -> List[Tuple[int, float, float]]:
        """The samples sorted by order index (the batch iteration order)."""
        return sorted(self.samples)

    def exact_means(self) -> Tuple[float, float]:
        """(mean activations, mean final diameter), summed in batch order."""
        ordered = self.ordered_samples()
        activations_total = sum(sample[1] for sample in ordered)
        diameter_total = sum(sample[2] for sample in ordered)
        return activations_total / self.count, diameter_total / self.count

    def quantile(self, q: float) -> float:
        """Empirical final-diameter quantile (linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.samples:
            raise ValueError("quantile of an empty group")
        values = sorted(sample[2] for sample in self.samples)
        position = (len(values) - 1) * q
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return values[low]
        return values[low] + (values[high] - values[low]) * (position - low)


class StreamingAggregator:
    """Group-by sweep statistics maintained one row at a time."""

    def __init__(self) -> None:
        self.groups: Dict[GroupKey, GroupAccumulator] = {}
        self.rows_added = 0
        self._next_order = 0

    def add_row(self, row: Mapping[str, object], *, order: Optional[int] = None) -> None:
        """Fold one result row in.

        ``order`` is the row's position in the sweep's deterministic
        expansion; it anchors the exact-mean summation order.  When
        omitted (standalone use over an already-ordered stream) a
        monotone arrival counter is used.
        """
        for field_name in REQUIRED_FIELDS:
            if field_name not in row:
                raise ValueError(f"row is missing aggregate field {field_name!r}")
        if order is None:
            order = self._next_order
        self._next_order = max(self._next_order, order + 1)
        key: GroupKey = (
            str(row["algorithm"]),
            str(row["scheduler"]),
            str(row["workload"]),
            str(row["error_model"]),
        )
        self.groups.setdefault(key, GroupAccumulator()).add(order, row)
        self.rows_added += 1

    def snapshot(self) -> Dict[str, object]:
        """Cheap mid-sweep totals (running sums; no per-sample pass)."""
        return {
            "rows": self.rows_added,
            "groups": len(self.groups),
            "converged": sum(g.converged for g in self.groups.values()),
            "cohesive": sum(g.cohesive for g in self.groups.values()),
        }

    def group_quantiles(
        self, qs: Sequence[float] = (0.5, 0.9)
    ) -> Dict[GroupKey, Tuple[float, ...]]:
        """Final-diameter quantiles per group, groups in sorted order."""
        return {
            key: tuple(self.groups[key].quantile(q) for q in qs)
            for key in sorted(self.groups)
        }

    def to_table(
        self, *, executed: Optional[int] = None, resumed: int = 0
    ) -> TextTable:
        """The batch-identical aggregate table over every row added so far."""
        if executed is None:
            executed = self.rows_added - resumed
        table = TextTable(
            f"Sweep aggregate — {self.rows_added} runs "
            f"({executed} executed, {resumed} resumed)",
            [
                "algorithm",
                "scheduler",
                "workload",
                "error model",
                "runs",
                "converged",
                "cohesive",
                "mean activations",
                "mean final diameter",
                "worst final diameter",
            ],
        )
        for key in sorted(self.groups):
            group = self.groups[key]
            mean_activations, mean_diameter = group.exact_means()
            table.add_row(
                *key,
                group.count,
                f"{group.converged}/{group.count}",
                f"{group.cohesive}/{group.count}",
                mean_activations,
                mean_diameter,
                group.diameter_max,
            )
        return table
