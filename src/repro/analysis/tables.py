"""Plain-text tables for experiment reports.

The paper has no numeric tables, so the experiment harness prints its own:
each experiment renders its findings as a fixed-width text table with a
caption tying it back to the corresponding figure/section of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence


def _format_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


@dataclass
class TextTable:
    """A fixed-width text table with a title and column headers."""

    title: str
    columns: Sequence[str]
    rows: List[List[Any]] = field(default_factory=list)
    float_format: str = ".4g"

    def add_row(self, *values: Any) -> None:
        """Append a row; the number of values must match the columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but the table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        """The table as a multi-line string."""
        cells = [[_format_cell(v, self.float_format) for v in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def format_row(row: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

        separator = "-+-".join("-" * w for w in widths)
        lines = [self.title, format_row(headers), separator]
        lines.extend(format_row(row) for row in cells)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_key_values(title: str, pairs: Sequence[tuple], *, float_format: str = ".6g") -> str:
    """A two-column key/value block used for per-experiment headline numbers."""
    table = TextTable(title, ["quantity", "value"], float_format=float_format)
    for key, value in pairs:
        table.add_row(key, value)
    return table.render()
