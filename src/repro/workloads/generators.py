"""Workload generators: initial robot configurations for the experiments.

All generators guarantee the property every limited-visibility experiment
needs: the visibility graph of the generated configuration is connected.
Random generators take an explicit numpy ``Generator`` (or a seed) so runs
are reproducible.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from ..geometry.point import Point
from ..model.configuration import Configuration
from ..model.visibility import is_connected

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def line_configuration(
    n: int, *, spacing: float = 0.8, visibility_range: float = 1.0
) -> Configuration:
    """``n`` robots evenly spaced on a horizontal line (connected when spacing <= V)."""
    if n < 1:
        raise ValueError("need at least one robot")
    if spacing > visibility_range:
        raise ValueError("spacing beyond the visibility range would disconnect the line")
    points = [Point(i * spacing, 0.0) for i in range(n)]
    return Configuration.of(points, visibility_range)


def grid_configuration(
    rows: int, cols: int, *, spacing: float = 0.7, visibility_range: float = 1.0
) -> Configuration:
    """A ``rows x cols`` grid of robots (connected when spacing <= V)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid must have at least one row and one column")
    if spacing > visibility_range:
        raise ValueError("spacing beyond the visibility range would disconnect the grid")
    points = [Point(c * spacing, r * spacing) for r in range(rows) for c in range(cols)]
    return Configuration.of(points, visibility_range)


def truncated_grid_configuration(
    n: int, *, spacing: float = 0.7, visibility_range: float = 1.0
) -> Configuration:
    """Exactly ``n`` robots filling a near-square grid in row-major order.

    The last row may be partial; row-major truncation keeps the grid
    connected, since every robot still has its left or lower neighbour at
    ``spacing``.  This is the exact-count form the sweep engine needs: a
    grid point labelled ``n`` must actually simulate ``n`` robots.
    """
    if n < 1:
        raise ValueError("need at least one robot")
    if spacing > visibility_range:
        raise ValueError("spacing beyond the visibility range would disconnect the grid")
    cols = max(1, math.ceil(math.sqrt(n)))
    points = [
        Point((i % cols) * spacing, (i // cols) * spacing) for i in range(n)
    ]
    return Configuration.of(points, visibility_range)


def ring_configuration(
    n: int, *, visibility_range: float = 1.0, chord_fraction: float = 0.9
) -> Configuration:
    """``n`` robots on a circle whose neighbouring chord is ``chord_fraction * V``."""
    if n < 3:
        raise ValueError("a ring needs at least three robots")
    if not 0.0 < chord_fraction <= 1.0:
        raise ValueError("chord_fraction must lie in (0, 1]")
    chord = chord_fraction * visibility_range
    radius = chord / (2.0 * math.sin(math.pi / n))
    points = [
        Point.polar(radius, 2.0 * math.pi * i / n) for i in range(n)
    ]
    return Configuration.of(points, visibility_range)


def random_connected_configuration(
    n: int,
    *,
    visibility_range: float = 1.0,
    attach_radius_fraction: float = 0.9,
    spread: float = 0.75,
    seed: RngLike = 0,
) -> Configuration:
    """A random connected configuration built by incremental attachment.

    Each new robot is placed within ``attach_radius_fraction * V`` of a
    uniformly chosen existing robot, which guarantees connectivity by
    construction while producing irregular, sprawling shapes.  ``spread``
    biases how far from the anchor new robots land.
    """
    if n < 1:
        raise ValueError("need at least one robot")
    if not 0.0 < attach_radius_fraction <= 1.0:
        raise ValueError("attach_radius_fraction must lie in (0, 1]")
    rng = _rng(seed)
    points: List[Point] = [Point(0.0, 0.0)]
    max_radius = attach_radius_fraction * visibility_range
    while len(points) < n:
        anchor = points[int(rng.integers(0, len(points)))]
        radius = max_radius * (spread + (1.0 - spread) * rng.random())
        angle = rng.uniform(0.0, 2.0 * math.pi)
        points.append(anchor + Point.polar(radius, angle))
    configuration = Configuration.of(points, visibility_range)
    assert configuration.is_connected(), "incremental attachment must yield a connected configuration"
    return configuration


def clustered_configuration(
    n_clusters: int,
    robots_per_cluster: int,
    *,
    visibility_range: float = 1.0,
    cluster_radius_fraction: float = 0.3,
    seed: RngLike = 0,
    cluster_sizes: Optional[Sequence[int]] = None,
) -> Configuration:
    """Several tight clusters joined by a chain of bridging robots.

    The cluster centres sit on a line ``1.2 V`` apart with one bridging
    robot midway between consecutive clusters; with the default cluster
    radius (``0.3 V``) every cluster member is within ``0.9 V`` of the
    nearest bridge, so the configuration is connected but has long thin
    'corridors' — a stress shape for cohesion.

    ``cluster_sizes`` overrides the uniform ``robots_per_cluster`` with an
    explicit per-cluster count (one entry per cluster), which lets callers
    hit an exact total robot count.
    """
    if n_clusters < 1 or robots_per_cluster < 1:
        raise ValueError("need at least one cluster with at least one robot")
    if cluster_radius_fraction > 0.35:
        raise ValueError("cluster_radius_fraction above 0.35 can disconnect a cluster from its bridge")
    if cluster_sizes is None:
        cluster_sizes = [robots_per_cluster] * n_clusters
    if len(cluster_sizes) != n_clusters or any(size < 1 for size in cluster_sizes):
        raise ValueError("cluster_sizes needs one positive entry per cluster")
    rng = _rng(seed)
    cluster_gap = 1.2 * visibility_range
    cluster_radius = cluster_radius_fraction * visibility_range
    points: List[Point] = []
    for c, size in enumerate(cluster_sizes):
        center = Point(c * cluster_gap, 0.0)
        for _ in range(size):
            offset = Point.polar(
                cluster_radius * math.sqrt(rng.random()), rng.uniform(0.0, 2.0 * math.pi)
            )
            points.append(center + offset)
        if c + 1 < n_clusters:
            points.append(Point((c + 0.5) * cluster_gap, 0.0))
    configuration = Configuration.of(points, visibility_range)
    assert configuration.is_connected()
    return configuration


def blob_configuration(
    n: int,
    *,
    n_blobs: int = 3,
    visibility_range: float = 1.0,
    blob_radius_fraction: float = 0.2,
    centre_gap_fraction: float = 0.55,
    seed: RngLike = 0,
) -> Configuration:
    """``n`` robots split into dense blobs scattered by incremental attachment.

    Each blob centre is placed at ``centre_gap_fraction * V`` from a
    uniformly chosen earlier centre (chain connectivity of the blobs), and
    every robot lands within ``blob_radius_fraction * V`` of its centre.
    With ``centre_gap_fraction + 2 * blob_radius_fraction <= 1`` every robot
    of a blob sees every robot of the blob its centre attached to, so the
    configuration is connected by construction — unlike
    :func:`clustered_configuration` there are no bridging robots, which
    makes this the harsher cohesion workload of the two.
    """
    if n < 1:
        raise ValueError("need at least one robot")
    if n_blobs < 1:
        raise ValueError("need at least one blob")
    if n < n_blobs:
        raise ValueError("need at least one robot per blob")
    if centre_gap_fraction + 2.0 * blob_radius_fraction > 1.0:
        raise ValueError(
            "centre gap plus two blob radii beyond the visibility range would "
            "disconnect adjacent blobs"
        )
    rng = _rng(seed)
    centres: List[Point] = [Point(0.0, 0.0)]
    while len(centres) < n_blobs:
        anchor = centres[int(rng.integers(0, len(centres)))]
        angle = rng.uniform(0.0, 2.0 * math.pi)
        centres.append(anchor + Point.polar(centre_gap_fraction * visibility_range, angle))
    blob_radius = blob_radius_fraction * visibility_range
    sizes = [n // n_blobs + (1 if b < n % n_blobs else 0) for b in range(n_blobs)]
    points: List[Point] = []
    for centre, size in zip(centres, sizes):
        for _ in range(size):
            offset = Point.polar(
                blob_radius * math.sqrt(rng.random()), rng.uniform(0.0, 2.0 * math.pi)
            )
            points.append(centre + offset)
    configuration = Configuration.of(points, visibility_range)
    assert configuration.is_connected(), "blob attachment must yield a connected configuration"
    return configuration


def annulus_configuration(
    n: int,
    *,
    inner_radius: float = 0.5,
    outer_radius: float = 1.2,
    visibility_range: float = 1.0,
    seed: RngLike = 0,
    max_attempts: int = 400,
) -> Configuration:
    """Uniformly random points in an annulus, rejected until connected.

    The hole in the middle forces the visibility graph around a ring — a
    stress shape for congregation, since the hull must collapse through a
    region no robot starts in.  Raises if no connected sample is found
    within ``max_attempts`` (narrow the annulus or raise V).
    """
    if n < 2:
        raise ValueError("an annulus workload needs at least two robots")
    if not 0.0 <= inner_radius < outer_radius:
        raise ValueError("need 0 <= inner_radius < outer_radius")
    rng = _rng(seed)
    for _ in range(max_attempts):
        # Uniform by area: r^2 uniform on [inner^2, outer^2].
        radii = np.sqrt(
            rng.uniform(inner_radius**2, outer_radius**2, n)
        )
        angles = rng.uniform(0.0, 2.0 * math.pi, n)
        points = [Point.polar(float(r), float(a)) for r, a in zip(radii, angles)]
        if is_connected(points, visibility_range):
            return Configuration.of(points, visibility_range)
    raise RuntimeError(
        f"no connected configuration of {n} robots found in the annulus "
        f"[{inner_radius}, {outer_radius}] with V={visibility_range} "
        f"after {max_attempts} attempts"
    )


def random_disk_configuration(
    n: int,
    *,
    disk_radius: float = 2.0,
    visibility_range: float = 1.0,
    seed: RngLike = 0,
    max_attempts: int = 200,
) -> Configuration:
    """Uniformly random points in a disk, rejected until connected.

    Useful as an 'unstructured' workload; raises if no connected sample is
    found within ``max_attempts`` (choose a smaller disk or larger V).
    """
    rng = _rng(seed)
    for _ in range(max_attempts):
        radii = disk_radius * np.sqrt(rng.random(n))
        angles = rng.uniform(0.0, 2.0 * math.pi, n)
        points = [Point.polar(float(r), float(a)) for r, a in zip(radii, angles)]
        if is_connected(points, visibility_range):
            return Configuration.of(points, visibility_range)
    raise RuntimeError(
        f"no connected configuration of {n} robots found in a disk of radius {disk_radius} "
        f"with V={visibility_range} after {max_attempts} attempts"
    )


def polygon_configuration(
    n: int, *, side_length: float = 1.0, visibility_range: float = 1.0
) -> Configuration:
    """A regular ``n``-gon with the given side length.

    With ``side_length == visibility_range`` this is the frozen
    configuration used in the paper's error-tolerance arguments (Section 6.1
    and Section 7.2.1): any algorithm that refuses to move the apex of a
    near-degenerate triple must freeze on it.
    """
    if n < 3:
        raise ValueError("a polygon needs at least three vertices")
    circumradius = side_length / (2.0 * math.sin(math.pi / n))
    points = [Point.polar(circumradius, 2.0 * math.pi * i / n) for i in range(n)]
    return Configuration.of(points, visibility_range)


def two_robot_configuration(separation: float, *, visibility_range: float = 1.0) -> Configuration:
    """Two robots at the given separation (the minimal interesting configuration)."""
    return Configuration.of([Point(0.0, 0.0), Point(separation, 0.0)], visibility_range)
