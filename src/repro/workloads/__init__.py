"""Initial-configuration generators for experiments and benchmarks."""

from .generators import (
    annulus_configuration,
    blob_configuration,
    clustered_configuration,
    grid_configuration,
    line_configuration,
    polygon_configuration,
    random_connected_configuration,
    random_disk_configuration,
    ring_configuration,
    truncated_grid_configuration,
    two_robot_configuration,
)

__all__ = [
    "annulus_configuration",
    "blob_configuration",
    "clustered_configuration",
    "grid_configuration",
    "line_configuration",
    "polygon_configuration",
    "random_connected_configuration",
    "random_disk_configuration",
    "ring_configuration",
    "truncated_grid_configuration",
    "two_robot_configuration",
]
