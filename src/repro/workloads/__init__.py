"""Initial-configuration generators for experiments and benchmarks."""

from .generators import (
    clustered_configuration,
    grid_configuration,
    line_configuration,
    polygon_configuration,
    random_connected_configuration,
    random_disk_configuration,
    ring_configuration,
    two_robot_configuration,
)

__all__ = [
    "clustered_configuration",
    "grid_configuration",
    "line_configuration",
    "polygon_configuration",
    "random_connected_configuration",
    "random_disk_configuration",
    "ring_configuration",
    "two_robot_configuration",
]
