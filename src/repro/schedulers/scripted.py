"""Scripted (fully adversarial) schedules.

The constructive failures of the paper — Figure 4's separation of Ando's
algorithm under 1-Async and 2-NestA — are produced by hand-crafted
activation timelines.  A :class:`ScriptedScheduler` replays an explicit
list of activations exactly as given and then stops (optionally falling
back to a continuation scheduler afterwards so that fairness can be
restored for convergence experiments).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..model.types import Activation, SchedulerClass
from .base import EngineView, Scheduler


class ScriptedScheduler(Scheduler):
    """Replay an explicit activation timeline."""

    scheduler_class = SchedulerClass.SCRIPTED

    def __init__(
        self,
        activations: Sequence[Activation],
        *,
        continuation: Optional[Scheduler] = None,
        continuation_offset: float = 1.0,
    ) -> None:
        super().__init__()
        self._script: List[Activation] = sorted(activations, key=lambda a: a.look_time)
        self._validate_per_robot_ordering(self._script)
        self._cursor = 0
        self.continuation = continuation
        self.continuation_offset = continuation_offset
        self._continuation_started = False

    @staticmethod
    def _validate_per_robot_ordering(script: Sequence[Activation]) -> None:
        last_end: dict = {}
        for activation in script:
            previous_end = last_end.get(activation.robot_id, -1.0)
            if activation.look_time < previous_end - 1e-12:
                raise ValueError(
                    "scripted activations of one robot must not overlap "
                    f"(robot {activation.robot_id} at t={activation.look_time})"
                )
            last_end[activation.robot_id] = activation.end_time

    def _after_reset(self) -> None:
        self._cursor = 0
        self._continuation_started = False
        if self.continuation is not None:
            self.continuation.reset(self.n_robots, self._rng)

    def script_end_time(self) -> float:
        """Instant the last scripted activation ends."""
        return max((a.end_time for a in self._script), default=0.0)

    def next_batch(self, view: Optional[EngineView] = None) -> List[Activation]:
        """The next scripted activation, then (optionally) the continuation schedule."""
        if self._cursor < len(self._script):
            activation = self._script[self._cursor]
            self._cursor += 1
            return [activation]
        if self.continuation is None:
            return []
        offset = self.script_end_time() + self.continuation_offset
        batch = self.continuation.next_batch(view)
        if not self._continuation_started:
            self._continuation_started = True
        return [
            Activation(
                robot_id=a.robot_id,
                look_time=a.look_time + offset,
                compute_duration=a.compute_duration,
                move_duration=a.move_duration,
                progress_fraction=a.progress_fraction,
            )
            for a in batch
        ]

    def describe(self) -> str:
        return f"scripted({len(self._script)} activations)"


def validate_k_async(script: Iterable[Activation], k: int) -> bool:
    """Check that an explicit timeline satisfies the k-Async constraint.

    For every activity interval of every robot, at most ``k`` activations
    of any other single robot start within it.
    """
    activations = list(script)
    for outer in activations:
        counts: dict = {}
        for inner in activations:
            if inner.robot_id == outer.robot_id:
                continue
            if inner.starts_within(outer):
                counts[inner.robot_id] = counts.get(inner.robot_id, 0) + 1
        if counts and max(counts.values()) > k:
            return False
    return True


def validate_k_nesta(script: Iterable[Activation], k: int) -> bool:
    """Check that an explicit timeline satisfies the k-NestA constraint.

    Every pair of activity intervals of distinct robots must be disjoint or
    nested, and at most ``k`` intervals of one robot may be nested within a
    single interval of another.
    """
    activations = list(script)
    for a in activations:
        for b in activations:
            if a is b or a.robot_id == b.robot_id:
                continue
            if a.overlaps(b) and not (a.contains(b) or b.contains(a)):
                return False
    return validate_k_async(activations, k)
