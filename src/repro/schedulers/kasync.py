"""k-Async and unbounded Async schedulers.

In the asynchronous models every robot is activated independently of the
others; activity intervals may overlap arbitrarily and phase durations
are finite but unpredictable.  The k-Async restriction (introduced by
Katreniak and generalised in the paper) additionally requires that at most
``k`` activations of one robot *start* within any single activity interval
of another.

The stochastic generator below draws, per robot, an idle gap, a compute
duration and a move duration from configurable ranges, then issues
activations one at a time in global start-time order; before issuing an
activation it delays it as needed so that the k-bound holds with respect
to every currently active interval of every other robot (unbounded Async
is the same generator with the constraint disabled).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from ..model.types import Activation, SchedulerClass
from .base import ActivationLog, EngineView, Scheduler, uniform_or_constant


class KAsyncScheduler(Scheduler):
    """Randomised k-Async scheduler (``k = None`` gives unbounded Async)."""

    scheduler_class = SchedulerClass.K_ASYNC

    def __init__(
        self,
        k: Optional[int] = 1,
        *,
        idle_gap: Tuple[float, float] = (0.1, 2.0),
        compute_duration: Tuple[float, float] = (0.0, 0.2),
        move_duration: Tuple[float, float] = (0.2, 2.0),
        progress_fraction: Tuple[float, float] = (1.0, 1.0),
        initial_stagger: Tuple[float, float] = (0.0, 1.0),
    ) -> None:
        super().__init__()
        if k is not None and k < 1:
            raise ValueError("the asynchrony bound k must be at least 1 (or None for Async)")
        self.k = k
        self.idle_gap = idle_gap
        self.compute_duration = compute_duration
        self.move_duration = move_duration
        self.progress_fraction = progress_fraction
        self.initial_stagger = initial_stagger
        self._log: ActivationLog = ActivationLog(1)
        self._proposals: List[Tuple[float, int, int]] = []
        self._sequence = 0

    def _after_reset(self) -> None:
        self._log = ActivationLog(self.n_robots)
        self._proposals = []
        self._sequence = 0
        for robot_id in range(self.n_robots):
            start = uniform_or_constant(self._rng, self.initial_stagger)
            self._push_proposal(robot_id, start)

    # -- proposal queue -------------------------------------------------------
    def _push_proposal(self, robot_id: int, earliest_start: float) -> None:
        heapq.heappush(self._proposals, (earliest_start, self._sequence, robot_id))
        self._sequence += 1

    def _respect_k_bound(self, robot_id: int, start: float) -> float:
        """Delay ``start`` until the k-bound is respected for every active interval."""
        if self.k is None:
            return start
        changed = True
        while changed:
            changed = False
            for other in self._log.active_intervals_containing(start, exclude=robot_id):
                already = self._log.starts_within(robot_id, other.look_time, other.end_time)
                if already >= self.k:
                    start = other.end_time + 1e-9
                    changed = True
        return start

    def next_batch(self, view: Optional[EngineView] = None) -> List[Activation]:
        """The globally earliest pending activation, adjusted for the k-bound.

        Activations are issued in nondecreasing ``look_time`` order: if
        enforcing the k-bound (or the robot's own previous interval) pushes
        the popped proposal past another robot's pending proposal, the
        adjusted proposal is re-queued and the earlier one is served first.
        The engine relies on this ordering to build correct snapshots.
        """
        if not self._proposals:
            return []
        while True:
            earliest_start, _, robot_id = heapq.heappop(self._proposals)
            start = max(earliest_start, self._log.last_end_time(robot_id))
            start = self._respect_k_bound(robot_id, start)
            if self._proposals and start > self._proposals[0][0] + 1e-12:
                self._push_proposal(robot_id, start)
                continue
            break
        activation = Activation(
            robot_id=robot_id,
            look_time=start,
            compute_duration=uniform_or_constant(self._rng, self.compute_duration),
            move_duration=max(1e-6, uniform_or_constant(self._rng, self.move_duration)),
            progress_fraction=uniform_or_constant(self._rng, self.progress_fraction),
        )
        self._log.record(activation)
        gap = uniform_or_constant(self._rng, self.idle_gap)
        self._push_proposal(robot_id, activation.end_time + max(1e-6, gap))
        return [activation]

    def activation_counts(self):
        """Issued activation counts per robot (fairness accounting for tests)."""
        return self._log.activation_counts()

    def describe(self) -> str:
        return "async" if self.k is None else f"{self.k}-async"


class AsyncScheduler(KAsyncScheduler):
    """Unbounded asynchrony: the k-Async generator with the bound disabled."""

    scheduler_class = SchedulerClass.ASYNC

    def __init__(self, **kwargs) -> None:
        kwargs.pop("k", None)
        super().__init__(k=None, **kwargs)

    def describe(self) -> str:
        return "async"


class StalledAsyncScheduler(KAsyncScheduler):
    """An Async scheduler that keeps one robot's activity interval open very long.

    This is the kind of schedule the Section-7 adversary relies on: one
    robot Looks early, then its Compute/Move phase is stretched while the
    rest of the system is activated many times.  ``stalled_robot`` is the
    robot whose every activation lasts ``stall_duration``.
    """

    scheduler_class = SchedulerClass.ASYNC

    def __init__(self, stalled_robot: int = 0, stall_duration: float = 1000.0, **kwargs) -> None:
        kwargs.pop("k", None)
        super().__init__(k=None, **kwargs)
        if stall_duration <= 0.0:
            raise ValueError("stall_duration must be positive")
        self.stalled_robot = stalled_robot
        self.stall_duration = stall_duration

    def next_batch(self, view: Optional[EngineView] = None) -> List[Activation]:
        batch = super().next_batch(view)
        adjusted: List[Activation] = []
        for activation in batch:
            if activation.robot_id == self.stalled_robot:
                activation = Activation(
                    robot_id=activation.robot_id,
                    look_time=activation.look_time,
                    compute_duration=self.stall_duration / 2.0,
                    move_duration=self.stall_duration / 2.0,
                    progress_fraction=activation.progress_fraction,
                )
                self._log.last_interval[activation.robot_id] = activation
            adjusted.append(activation)
        return adjusted

    def describe(self) -> str:
        return f"async(stalled={self.stalled_robot})"
