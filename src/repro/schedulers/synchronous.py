"""Fully synchronous and semi-synchronous schedulers.

In the synchronous models time is divided into rounds; every robot
activated in a round performs its whole Look-Compute-Move cycle inside the
round, and nobody observes anybody mid-move.  FSync activates every robot
in every round; SSync activates an arbitrary (fair) subset.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..model.types import Activation, SchedulerClass
from .base import EngineView, Scheduler


class FSyncScheduler(Scheduler):
    """Every robot is activated in every round."""

    scheduler_class = SchedulerClass.FSYNC
    #: Every batch is one simultaneous round: the kernel may advance it
    #: through the batched fast path.
    round_structured = True

    def __init__(self, *, move_duration: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < move_duration < 1.0:
            raise ValueError("move_duration must keep the cycle inside the unit round")
        self.move_duration = move_duration
        self._round = 0

    def _after_reset(self) -> None:
        self._round = 0

    def next_batch(self, view: Optional[EngineView] = None) -> List[Activation]:
        """All robots, activated simultaneously at the start of the next round."""
        batch = [
            Activation(
                robot_id=i,
                look_time=float(self._round),
                compute_duration=0.0,
                move_duration=self.move_duration,
            )
            for i in range(self.n_robots)
        ]
        self._round += 1
        return batch

    def describe(self) -> str:
        return "fsync"


class SSyncScheduler(Scheduler):
    """A fair adversarial subset of robots is activated in every round.

    Each robot is activated independently with probability
    ``activation_probability``; fairness is enforced by forcing the
    activation of any robot that has sat idle for ``max_lag`` consecutive
    rounds, so every robot is activated infinitely often.
    """

    scheduler_class = SchedulerClass.SSYNC
    #: Every batch is one simultaneous round: the kernel may advance it
    #: through the batched fast path.
    round_structured = True

    def __init__(
        self,
        *,
        activation_probability: float = 0.5,
        max_lag: int = 5,
        move_duration: float = 0.5,
    ) -> None:
        super().__init__()
        if not 0.0 < activation_probability <= 1.0:
            raise ValueError("activation_probability must lie in (0, 1]")
        if max_lag < 1:
            raise ValueError("max_lag must be at least 1")
        if not 0.0 < move_duration < 1.0:
            raise ValueError("move_duration must keep the cycle inside the unit round")
        self.activation_probability = activation_probability
        self.max_lag = max_lag
        self.move_duration = move_duration
        self._round = 0
        self._lag: List[int] = []

    def _after_reset(self) -> None:
        self._round = 0
        self._lag = [0] * self.n_robots

    def next_batch(self, view: Optional[EngineView] = None) -> List[Activation]:
        """The activated subset for the next round (never empty)."""
        # One vectorized draw per round; the Generator's double stream is
        # identical whether consumed as n scalars or one size-n request,
        # so this is bit-for-bit the per-robot formulation.
        draws = self._rng.random(self.n_robots)
        chosen = [
            i
            for i in range(self.n_robots)
            if draws[i] < self.activation_probability or self._lag[i] >= self.max_lag
        ]
        if not chosen:
            chosen = [int(self._rng.integers(0, self.n_robots))]
        chosen_set = set(chosen)
        for i in range(self.n_robots):
            self._lag[i] = 0 if i in chosen_set else self._lag[i] + 1
        batch = [
            Activation(
                robot_id=i,
                look_time=float(self._round),
                compute_duration=0.0,
                move_duration=self.move_duration,
            )
            for i in sorted(chosen_set)
        ]
        self._round += 1
        return batch

    def describe(self) -> str:
        return f"ssync(p={self.activation_probability})"
