"""Scheduler interface and shared bookkeeping.

A scheduler decides *when* robots are activated and how long the phases
of each activity cycle last; it never decides where robots move.  The
paper treats the scheduler as an adversary constrained only by the
synchronisation model (FSync, SSync, k-NestA, k-Async, Async) and by
activation fairness.

The engine consumes activations in global ``look_time`` order.  To keep
that simple, schedulers must issue activations through :meth:`next_batch`
such that every later batch contains only activations that start no
earlier than those already issued (all built-in schedulers generate the
globally earliest pending activation on each call, or a whole synchronous
round at once).
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from ..model.types import Activation, SchedulerClass


class EngineView(Protocol):
    """The read-only view of the running simulation a scheduler may consult.

    Only reactive (adversarial) schedulers look at it; the stochastic
    schedulers are oblivious to robot positions, as the paper's schedulers
    conceptually are (they are adversaries over *timing*).
    """

    @property
    def time(self) -> float:  # pragma: no cover - protocol
        ...

    @property
    def n_robots(self) -> int:  # pragma: no cover - protocol
        ...

    def positions(self) -> Sequence:  # pragma: no cover - protocol
        ...


@dataclass
class ActivationLog:
    """Bookkeeping of issued activations, shared by the asynchronous schedulers."""

    n_robots: int
    start_times: Dict[int, List[float]] = field(default_factory=dict)
    last_interval: Dict[int, Activation] = field(default_factory=dict)
    total_issued: int = 0

    def __post_init__(self) -> None:
        self.start_times = {i: [] for i in range(self.n_robots)}

    def record(self, activation: Activation) -> None:
        """Record an issued activation."""
        self.start_times[activation.robot_id].append(activation.look_time)
        self.last_interval[activation.robot_id] = activation
        self.total_issued += 1

    def last_end_time(self, robot_id: int) -> float:
        """End time of the robot's most recently issued activation (0 if none)."""
        last = self.last_interval.get(robot_id)
        return last.end_time if last is not None else 0.0

    def starts_within(self, robot_id: int, start: float, end: float) -> int:
        """Number of issued activations of ``robot_id`` starting in ``[start, end)``."""
        return sum(1 for t in self.start_times[robot_id] if start <= t < end)

    def active_intervals_containing(self, time: float, *, exclude: Optional[int] = None):
        """Issued activations whose interval contains ``time`` (optionally excluding a robot)."""
        result = []
        for robot_id, activation in self.last_interval.items():
            if exclude is not None and robot_id == exclude:
                continue
            if activation.look_time <= time < activation.end_time:
                result.append(activation)
        return result

    def activation_counts(self) -> Dict[int, int]:
        """Number of issued activations per robot (fairness accounting)."""
        return {i: len(starts) for i, starts in self.start_times.items()}


class Scheduler(abc.ABC):
    """Base class of all schedulers."""

    scheduler_class: SchedulerClass = SchedulerClass.ASYNC

    def __init__(self) -> None:
        self._n_robots = 0
        self._rng: np.random.Generator = np.random.default_rng(0)

    def reset(self, n_robots: int, rng: Optional[np.random.Generator] = None) -> None:
        """Prepare the scheduler for a run over ``n_robots`` robots."""
        if n_robots < 1:
            raise ValueError("a schedule needs at least one robot")
        self._n_robots = n_robots
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._after_reset()

    def _after_reset(self) -> None:
        """Hook for subclasses to (re)initialise their own state."""

    @property
    def n_robots(self) -> int:
        """Number of robots this scheduler was reset for."""
        return self._n_robots

    @abc.abstractmethod
    def next_batch(self, view: Optional[EngineView] = None) -> List[Activation]:
        """The next batch of activations (empty list means the schedule is exhausted)."""

    def describe(self) -> str:
        """One-line description used in experiment tables."""
        return self.scheduler_class.value


def uniform_or_constant(rng: np.random.Generator, bounds) -> float:
    """Draw uniformly from a ``(low, high)`` pair, or return a constant float."""
    if isinstance(bounds, (tuple, list)):
        low, high = bounds
        if high <= low:
            return float(low)
        return float(rng.uniform(low, high))
    return float(bounds)
