"""k-NestA: nested-activation schedulers.

In the NestA model (Section 2.3.1 of the paper) the activity intervals of
any pair of robots are either disjoint or nested; the k-NestA restriction
allows at most ``k`` activity intervals of one robot to be nested within a
single activity interval of another.

The stochastic generator below produces a sequence of *activation events*:
each event consists of one outer activity interval and, inside it, a
(possibly empty) series of nested activity intervals of other robots, at
most ``k`` per nested robot, all pairwise disjoint.  Consecutive events
are disjoint in time, so every pair of intervals in the whole schedule is
disjoint or nested, as required.  Fairness is enforced by choosing outer
and nested robots with a least-recently-activated bias.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..model.types import Activation, SchedulerClass
from .base import EngineView, Scheduler, uniform_or_constant


class KNestAScheduler(Scheduler):
    """Randomised k-NestA scheduler."""

    scheduler_class = SchedulerClass.K_NESTA

    def __init__(
        self,
        k: int = 1,
        *,
        outer_duration: tuple = (2.0, 6.0),
        nested_duration: tuple = (0.1, 0.4),
        gap_between_events: tuple = (0.05, 0.5),
        nested_robot_fraction: float = 0.5,
        progress_fraction: tuple = (1.0, 1.0),
    ) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("the nesting bound k must be at least 1")
        if not 0.0 <= nested_robot_fraction <= 1.0:
            raise ValueError("nested_robot_fraction must lie in [0, 1]")
        self.k = k
        self.outer_duration = outer_duration
        self.nested_duration = nested_duration
        self.gap_between_events = gap_between_events
        self.nested_robot_fraction = nested_robot_fraction
        self.progress_fraction = progress_fraction
        self._time = 0.0
        self._since_activated: List[int] = []

    def _after_reset(self) -> None:
        self._time = 0.0
        self._since_activated = [0] * self.n_robots

    def _pick_outer(self) -> int:
        """Pick the outer robot with a least-recently-activated bias (fairness)."""
        lags = np.asarray(self._since_activated, dtype=float)
        weights = 1.0 + lags * lags
        weights /= weights.sum()
        return int(self._rng.choice(self.n_robots, p=weights))

    def next_batch(self, view: Optional[EngineView] = None) -> List[Activation]:
        """One whole activation event: an outer interval plus its nested intervals."""
        outer_robot = self._pick_outer()
        outer_start = self._time + uniform_or_constant(self._rng, self.gap_between_events)
        outer_length = max(0.5, uniform_or_constant(self._rng, self.outer_duration))
        outer = Activation(
            robot_id=outer_robot,
            look_time=outer_start,
            compute_duration=outer_length * 0.25,
            move_duration=outer_length * 0.75,
            progress_fraction=uniform_or_constant(self._rng, self.progress_fraction),
        )
        batch = [outer]

        # Choose which other robots get nested activations inside the outer interval.
        others = [i for i in range(self.n_robots) if i != outer_robot]
        others = [others[j] for j in self._rng.permutation(len(others))]
        n_nested_robots = int(round(self.nested_robot_fraction * len(others)))
        # Always nest the most-starved other robot so fairness cannot stall.
        if others and n_nested_robots == 0:
            n_nested_robots = 1
        nested_robots = sorted(
            others, key=lambda i: -self._since_activated[i]
        )[:n_nested_robots]

        cursor = outer_start + outer_length * 0.05
        outer_end = outer.end_time
        for robot_id in nested_robots:
            count = int(self._rng.integers(1, self.k + 1))
            for _ in range(count):
                length = max(1e-3, uniform_or_constant(self._rng, self.nested_duration))
                if cursor + length >= outer_end - 1e-6:
                    break
                batch.append(
                    Activation(
                        robot_id=robot_id,
                        look_time=cursor,
                        compute_duration=length * 0.25,
                        move_duration=length * 0.75,
                        progress_fraction=uniform_or_constant(self._rng, self.progress_fraction),
                    )
                )
                cursor += length + 1e-6
        # Nested intervals of different robots are serial, hence pairwise disjoint.

        activated = {a.robot_id for a in batch}
        for i in range(self.n_robots):
            self._since_activated[i] = 0 if i in activated else self._since_activated[i] + 1

        self._time = outer_end
        return sorted(batch, key=lambda a: a.look_time)

    def describe(self) -> str:
        return f"{self.k}-nesta"
