"""Schedulers: FSync, SSync, k-NestA, k-Async, Async and scripted adversaries."""

from .base import ActivationLog, EngineView, Scheduler, uniform_or_constant
from .kasync import AsyncScheduler, KAsyncScheduler, StalledAsyncScheduler
from .nesta import KNestAScheduler
from .scripted import ScriptedScheduler, validate_k_async, validate_k_nesta
from .synchronous import FSyncScheduler, SSyncScheduler

__all__ = [
    "ActivationLog",
    "AsyncScheduler",
    "EngineView",
    "FSyncScheduler",
    "KAsyncScheduler",
    "KNestAScheduler",
    "SSyncScheduler",
    "ScriptedScheduler",
    "Scheduler",
    "StalledAsyncScheduler",
    "uniform_or_constant",
    "validate_k_async",
    "validate_k_nesta",
]
