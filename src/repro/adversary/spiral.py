"""The Section-7 spiral initial configuration.

The impossibility construction starts from three robots ``X_A`` (the hub,
at the origin), ``X_C`` at distance ``V`` in direction -135 degrees, and
``X_B = P_0`` at distance ``V`` in direction 0, followed by a discrete
spiral tail ``P_1, P_2, ...`` of robots spaced exactly ``V`` apart, where
the segment ``P_{i-1} P_i`` makes a fixed turn angle ``psi`` with the
chord ``A P_{i-1}``.  The number of tail robots is chosen so that the
total rotation of the chords ``A P_i`` reaches (just over) ``3*pi/8``,
which the paper shows requires on the order of ``exp(3*pi / (8 sin psi))``
robots.

The spiral turns *away* from ``X_C`` (counter-clockwise with the layout
above) so that, once the adversary has dragged the whole tail onto the
final chord, the forced move of the hub — which lands in the half of the
sector ``C A B`` closer to ``C`` — points away from ``X_B``'s final
position and breaks their mutual visibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..geometry.angles import normalize_angle
from ..geometry.point import Point
from ..model.configuration import Configuration

#: Fixed robot indices in the spiral configuration.
HUB_INDEX = 0
C_INDEX = 1
B_INDEX = 2  # == first tail robot P_0


@dataclass(frozen=True)
class SpiralConfiguration:
    """The generated spiral plus its construction parameters."""

    psi: float
    visibility_range: float
    hub: Point
    c_robot: Point
    tail: tuple  # P_0 (= X_B), P_1, ..., P_m
    target_rotation: float

    @property
    def n_robots(self) -> int:
        """Total number of robots (hub + C + tail)."""
        return 2 + len(self.tail)

    @property
    def n_tail(self) -> int:
        """Number of tail robots (including ``X_B = P_0``)."""
        return len(self.tail)

    def positions(self) -> List[Point]:
        """All robot positions: hub, C, then the tail from ``P_0`` outward."""
        return [self.hub, self.c_robot, *self.tail]

    def configuration(self) -> Configuration:
        """The initial configuration (visibility range ``V``)."""
        return Configuration.of(self.positions(), self.visibility_range)

    def chord_lengths(self) -> List[float]:
        """Distances ``d_i = |A P_i|`` from the hub to each tail robot."""
        return [self.hub.distance_to(p) for p in self.tail]

    def chord_angles(self) -> List[float]:
        """Directions of the chords ``A -> P_i`` (radians)."""
        return [self.hub.angle_to(p) for p in self.tail]

    def total_rotation(self) -> float:
        """Total (unsigned) rotation between the first and last chord."""
        angles = self.chord_angles()
        total = 0.0
        for a, b in zip(angles, angles[1:]):
            total += abs(normalize_angle(b - a))
        return total

    def consecutive_gamma(self) -> List[float]:
        """The per-step chord rotations ``gamma_i`` (paper: ``~ sin(psi) / d_i``)."""
        angles = self.chord_angles()
        return [abs(normalize_angle(b - a)) for a, b in zip(angles, angles[1:])]

    def final_chord_direction(self) -> Point:
        """Unit direction of the last chord ``A -> P_m``."""
        return self.hub.direction_to(self.tail[-1])

    def bisector_direction(self) -> Point:
        """Unit direction of the bisector of the (convex) sector ``C A B``."""
        to_b = self.hub.direction_to(self.tail[0])
        to_c = self.hub.direction_to(self.c_robot)
        bisector = to_b + to_c
        return bisector.unit()

    def predicted_robot_count(self) -> float:
        """The paper's bound ``3 + exp(3*pi / (8 sin psi))`` on the robots needed."""
        return 3.0 + math.exp(3.0 * math.pi / (8.0 * math.sin(self.psi)))


def build_spiral(
    psi: float = 0.25,
    *,
    visibility_range: float = 1.0,
    target_rotation: float = 3.0 * math.pi / 8.0,
    max_tail: int = 200_000,
) -> SpiralConfiguration:
    """Generate the spiral configuration for turn angle ``psi``.

    Tail robots are appended until the chord ``A -> P_i`` has rotated by at
    least ``target_rotation`` away from the initial chord ``A -> P_0``.
    """
    if not 0.0 < psi < math.pi / 4.0:
        raise ValueError("psi must be a small positive turn angle (0 < psi < pi/4)")
    if visibility_range <= 0.0:
        raise ValueError("visibility range must be positive")
    v = visibility_range
    hub = Point(0.0, 0.0)
    c_robot = Point.polar(v, -3.0 * math.pi / 4.0)
    tail: List[Point] = [Point(v, 0.0)]

    initial_chord_angle = hub.angle_to(tail[0])
    while len(tail) < max_tail:
        previous = tail[-1]
        chord_direction = hub.angle_to(previous)
        rotated = abs(normalize_angle(chord_direction - initial_chord_angle))
        if rotated >= target_rotation:
            break
        # The next segment turns by +psi (counter-clockwise, away from X_C)
        # relative to the chord A -> P_{i-1}.
        segment_angle = chord_direction + psi
        tail.append(previous + Point.polar(v, segment_angle))
    else:
        raise RuntimeError(
            f"spiral did not reach the target rotation within {max_tail} tail robots"
        )
    return SpiralConfiguration(
        psi=psi,
        visibility_range=v,
        hub=hub,
        c_robot=c_robot,
        tail=tuple(tail),
        target_rotation=target_rotation,
    )
