"""Figure 4: Ando et al.'s algorithm loses visibility under 1-Async and 2-NestA.

The paper exhibits a five-robot configuration (three stationary robots
``A``, ``B``, ``C`` and two mobile robots ``X``, ``Y`` at visibility-range
separation) together with two activation timelines under which the
unmodified Go-To-The-Centre-Of-The-SEC algorithm drives ``X`` and ``Y``
more than ``V`` apart:

* a 1-Async timeline, in which ``Y`` Looks while ``X``'s first activity
  interval is in progress (so ``Y`` still sees ``X`` at its original
  position), ``X`` is activated a second time before ``Y``'s very long
  Move phase completes, and at most one activation of either robot starts
  within any activity interval of the other;
* a 2-NestA timeline with the same Looks and moves, in which both of
  ``X``'s activity intervals are nested inside ``Y``'s single interval.

This module provides a concrete instance of that family (derived
analytically; the docstring of :func:`canonical_instance` spells out the
geometry), the two activation timelines, a simulation driver that replays
them through the engine, and a randomised search over the family for the
robustness/ablation bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.ando import AndoAlgorithm
from ..algorithms.base import ConvergenceAlgorithm
from ..engine.simulator import SimulationConfig, SimulationResult, Simulator
from ..geometry.point import Point
from ..model.configuration import Configuration
from ..model.types import Activation
from ..schedulers.scripted import ScriptedScheduler, validate_k_async, validate_k_nesta

#: Robot indices used throughout this module.
ROBOT_X = 0
ROBOT_Y = 1
ROBOT_A = 2
ROBOT_B = 3
ROBOT_C = 4


@dataclass(frozen=True)
class AndoFailureInstance:
    """One member of the Figure-4 family: positions plus the visibility range."""

    x0: Point
    y0: Point
    a: Point
    b: Point
    c: Point
    visibility_range: float = 1.0

    def positions(self) -> List[Point]:
        """Positions indexed by the ``ROBOT_*`` constants."""
        return [self.x0, self.y0, self.a, self.b, self.c]

    def configuration(self) -> Configuration:
        """The initial configuration of the instance."""
        return Configuration.of(self.positions(), self.visibility_range)

    def is_admissible(self) -> bool:
        """Structural requirements of the construction.

        The initial configuration must be connected, ``X`` and ``Y`` must be
        mutually visible, ``A`` must be visible to ``Y`` but not to ``X``,
        and ``B`` must be visible to ``X`` but not to ``Y`` (``C`` only needs
        to keep the configuration connected and stay invisible to ``Y``).
        """
        v = self.visibility_range
        checks = [
            self.configuration().is_connected(),
            self.x0.distance_to(self.y0) <= v,
            self.a.distance_to(self.y0) <= v,
            self.a.distance_to(self.x0) > v,
            self.b.distance_to(self.x0) <= v,
            self.b.distance_to(self.y0) > v,
            self.c.distance_to(self.y0) > v,
        ]
        return all(checks)


def canonical_instance(visibility_range: float = 1.0) -> AndoFailureInstance:
    """The hand-constructed instance used by the Figure-4 benches.

    With ``V = 1``: ``Y`` at the origin, ``X`` at ``(1, 0)`` (exactly at
    visibility range), ``A = (0, -1)`` pulls ``Y``'s SEC centre to
    ``(0.5, -0.5)``; ``B = (1, 1)`` pulls ``X``'s first SEC centre to
    ``(0.5, 0.5)``; ``C = (0.1, 1.3)`` is connected to ``B``, invisible to
    both ``X`` and ``Y`` initially, and becomes visible to ``X`` after its
    first move, dragging ``X``'s second SEC centre further to
    ``(0.375, 0.625)``.  The final separation between ``X`` and ``Y`` is
    ``|(0.375, 0.625) - (0.5, -0.5)| ~= 1.13 > V``.
    """
    v = visibility_range
    return AndoFailureInstance(
        x0=Point(1.0, 0.0) * v,
        y0=Point(0.0, 0.0),
        a=Point(0.0, -1.0) * v,
        b=Point(1.0, 1.0) * v,
        c=Point(0.1, 1.3) * v,
        visibility_range=v,
    )


def one_async_schedule() -> List[Activation]:
    """The 1-Async timeline of Figure 4(a).

    ``X`` is activated twice, ``Y`` once with a very long activity
    interval; exactly one activation of either robot starts within any
    activity interval of the other, so the timeline is 1-Async.
    """
    return [
        Activation(robot_id=ROBOT_X, look_time=0.0, compute_duration=0.05, move_duration=0.05),
        Activation(robot_id=ROBOT_Y, look_time=0.02, compute_duration=9.98, move_duration=0.1),
        Activation(robot_id=ROBOT_X, look_time=1.0, compute_duration=0.05, move_duration=0.05),
    ]


def two_nesta_schedule() -> List[Activation]:
    """The 2-NestA timeline of Figure 4(b).

    Both of ``X``'s activity intervals are nested inside ``Y``'s single
    interval; no pair of intervals properly overlaps.
    """
    return [
        Activation(robot_id=ROBOT_Y, look_time=0.02, compute_duration=9.98, move_duration=0.1),
        Activation(robot_id=ROBOT_X, look_time=0.1, compute_duration=0.05, move_duration=0.05),
        Activation(robot_id=ROBOT_X, look_time=1.0, compute_duration=0.05, move_duration=0.05),
    ]


@dataclass
class AndoFailureOutcome:
    """Result of replaying one timeline on one instance with one algorithm."""

    instance: AndoFailureInstance
    schedule_name: str
    algorithm_name: str
    final_separation: float
    visibility_broken: bool
    cohesion_maintained: bool
    result: SimulationResult = field(repr=False)

    @property
    def separation_ratio(self) -> float:
        """Final X-Y separation as a multiple of the visibility range."""
        return self.final_separation / self.instance.visibility_range


def replay(
    instance: AndoFailureInstance,
    schedule: List[Activation],
    *,
    algorithm: Optional[ConvergenceAlgorithm] = None,
    schedule_name: str = "scripted",
) -> AndoFailureOutcome:
    """Replay a timeline on an instance and report the final X-Y separation."""
    algorithm = algorithm if algorithm is not None else AndoAlgorithm()
    config = SimulationConfig(
        visibility_range=instance.visibility_range,
        seed=0,
        max_activations=len(schedule) + 1,
        convergence_epsilon=1e-9,
        stop_at_convergence=False,
        use_random_frames=False,
        record_every=1,
    )
    simulator = Simulator(instance.positions(), algorithm, ScriptedScheduler(schedule), config)
    result = simulator.run()
    final = result.final_configuration
    separation = final[ROBOT_X].distance_to(final[ROBOT_Y])
    return AndoFailureOutcome(
        instance=instance,
        schedule_name=schedule_name,
        algorithm_name=algorithm.describe(),
        final_separation=separation,
        visibility_broken=separation > instance.visibility_range + 1e-9,
        cohesion_maintained=result.cohesion_maintained,
        result=result,
    )


def run_figure4(
    *,
    instance: Optional[AndoFailureInstance] = None,
    algorithm: Optional[ConvergenceAlgorithm] = None,
) -> Dict[str, AndoFailureOutcome]:
    """Replay both Figure-4 timelines (1-Async and 2-NestA) on an instance."""
    instance = instance if instance is not None else canonical_instance()
    schedule_a = one_async_schedule()
    schedule_b = two_nesta_schedule()
    if not validate_k_async(schedule_a, 1):
        raise AssertionError("the Figure-4(a) timeline must satisfy the 1-Async constraint")
    if not validate_k_nesta(schedule_b, 2):
        raise AssertionError("the Figure-4(b) timeline must satisfy the 2-NestA constraint")
    return {
        "1-async": replay(instance, schedule_a, algorithm=algorithm, schedule_name="1-async"),
        "2-nesta": replay(instance, schedule_b, algorithm=algorithm, schedule_name="2-nesta"),
    }


def search_failure_instances(
    *,
    n_candidates: int = 500,
    seed: int = 0,
    visibility_range: float = 1.0,
    schedule_name: str = "1-async",
) -> Tuple[Optional[AndoFailureOutcome], int]:
    """Randomised search over the Figure-4 family for separating instances.

    Samples admissible placements of the three stationary robots around the
    canonical geometry, replays the requested timeline with Ando's
    algorithm, and returns the best (largest-separation) outcome together
    with the number of admissible candidates that broke visibility.  Used
    by the robustness bench to show the failure is not knife-edge.
    """
    rng = np.random.default_rng(seed)
    schedule = one_async_schedule() if schedule_name == "1-async" else two_nesta_schedule()
    best: Optional[AndoFailureOutcome] = None
    breaking = 0
    v = visibility_range
    for _ in range(n_candidates):
        a = Point.polar(v * rng.uniform(0.9, 1.0), rng.uniform(-2.0, -1.1))
        b = Point(v, 0.0) + Point.polar(v * rng.uniform(0.9, 1.0), rng.uniform(1.1, 2.0))
        c = Point.of(b) + Point.polar(v * rng.uniform(0.7, 1.0), rng.uniform(2.0, 3.4))
        instance = AndoFailureInstance(
            x0=Point(v, 0.0), y0=Point(0.0, 0.0), a=a, b=b, c=c, visibility_range=v
        )
        if not instance.is_admissible():
            continue
        outcome = replay(instance, schedule, schedule_name=schedule_name)
        if outcome.visibility_broken:
            breaking += 1
        if best is None or outcome.final_separation > best.final_separation:
            best = outcome
    return best, breaking
