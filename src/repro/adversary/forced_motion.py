"""Forced-motion witnesses (Section 7.2.1 of the paper).

The impossibility argument needs the following fact: when a robot ``Q``
sees two neighbours at perceived distance (exactly) the visibility
threshold and perceived turn angle somewhere in ``[phi(1-lambda), phi]``,
no algorithm may refuse to move it — otherwise the adversary could build a
frozen, never-converging configuration out of regular polygons (or of
alternating-turn closed chains) whose true turn angles are confusable with
the perceived ones.

Concretely the paper observes that for any ``phi > 0`` and skew bound
``0 < lambda < 1``, choosing an integer ``M > 4*pi / (lambda*phi)``
guarantees two *consecutive* multiples of ``2*pi/M`` inside the perceived
interval ``[phi(1-lambda), phi]``; an algorithm that freezes at one of
them must move at the other, hence motion can always be forced.  This
module computes those witnesses explicitly so the impossibility bench can
table them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ForcedMotionWitness:
    """Two confusable special angles inside the perceived turn-angle interval."""

    turn_angle: float
    skew: float
    modulus: int
    index: int

    @property
    def lower_special_angle(self) -> float:
        """The smaller confusable angle ``2*pi*index / modulus``."""
        return 2.0 * math.pi * self.index / self.modulus

    @property
    def upper_special_angle(self) -> float:
        """The larger confusable angle ``2*pi*(index+1) / modulus``."""
        return 2.0 * math.pi * (self.index + 1) / self.modulus

    @property
    def perceived_interval(self) -> tuple:
        """The interval of turn angles the robot could be perceiving."""
        return (self.turn_angle * (1.0 - self.skew), self.turn_angle)

    def is_valid(self, *, eps: float = 1e-12) -> bool:
        """Both special angles lie inside the perceived interval."""
        low, high = self.perceived_interval
        return (
            low - eps <= self.lower_special_angle
            and self.upper_special_angle <= high + eps
            and self.index >= 1
        )


def paper_modulus(turn_angle: float, skew: float) -> int:
    """The modulus ``M`` the paper's argument uses: the first integer above ``4*pi/(lambda*phi)``."""
    if turn_angle <= 0.0 or not 0.0 < skew < 1.0:
        raise ValueError("need a positive turn angle and a skew in (0, 1)")
    return int(math.floor(4.0 * math.pi / (skew * turn_angle))) + 1


def forced_motion_witness(
    turn_angle: float, skew: float, *, modulus: Optional[int] = None
) -> ForcedMotionWitness:
    """Exhibit two consecutive multiples of ``2*pi/M`` inside ``[phi(1-lambda), phi]``.

    Raises :class:`ValueError` when no witness exists for the requested
    modulus (which the paper's bound guarantees cannot happen for
    ``M > 4*pi/(lambda*phi)``).
    """
    if modulus is None:
        modulus = paper_modulus(turn_angle, skew)
    low = turn_angle * (1.0 - skew)
    high = turn_angle
    index = int(math.ceil(low * modulus / (2.0 * math.pi) - 1e-12))
    index = max(index, 1)
    witness = ForcedMotionWitness(
        turn_angle=turn_angle, skew=skew, modulus=modulus, index=index
    )
    if not witness.is_valid():
        raise ValueError(
            f"no pair of consecutive multiples of 2*pi/{modulus} lies in "
            f"[{low:.6g}, {high:.6g}]; increase the modulus"
        )
    return witness


def smallest_witness_modulus(turn_angle: float, skew: float, *, limit: int = 10_000_000) -> int:
    """The smallest modulus admitting a witness (for comparison with the paper's bound)."""
    if turn_angle <= 0.0 or not 0.0 < skew < 1.0:
        raise ValueError("need a positive turn angle and a skew in (0, 1)")
    low = turn_angle * (1.0 - skew)
    high = turn_angle
    for modulus in range(2, limit):
        index = int(math.ceil(low * modulus / (2.0 * math.pi) - 1e-12))
        if index < 1:
            index = 1
        if 2.0 * math.pi * (index + 1) / modulus <= high + 1e-15 and (
            2.0 * math.pi * index / modulus >= low - 1e-15
        ):
            return modulus
    raise RuntimeError("no witness modulus found below the search limit")


def distance_indistinguishable(true_distance: float, threshold: float, delta: float) -> bool:
    """Could ``true_distance`` be perceived as exactly ``threshold``?

    With relative distance error ``delta``, any true distance in
    ``(threshold / (1 + delta), threshold]`` — in particular anything in
    ``(threshold (1 - delta), threshold]`` — admits a perception equal to
    the visibility threshold, which is what the Section-7 construction
    needs for every chain edge it manipulates.
    """
    if true_distance > threshold:
        return False
    return true_distance * (1.0 + delta) >= threshold
