"""The full Section-7 impossibility construction, end to end.

Given a turn angle ``psi`` and error bounds ``delta`` (relative distance
error) and ``lam`` (compass skew), this driver

1. builds the spiral initial configuration (Figure 19, left);
2. computes the move the hub robot ``X_A`` is *forced* to plan from its
   initial view of ``X_B`` and ``X_C`` — both for the abstract argument
   (any positive ``zeta`` into the ``C``-side half of the sector ``C A B``)
   and concretely for representative natural algorithms (the paper's
   KKNPS rule and Ando et al.'s rule), whose planned moves land exactly on
   the sector bisector;
3. runs the sliver-flattening adversary (Figures 20-22) that drags the
   whole tail onto the final chord while every individual move stays
   inside the neighbour lens and changes hub distances by ``O(psi^2)``;
4. exhibits the forced-motion witnesses (Section 7.2.1) for the turn
   angles the adversary relies on; and
5. finally lets ``X_A``'s pending move complete and checks that the edge
   ``(X_A, X_B)`` of the initial visibility graph is broken — i.e. the
   execution violates Cohesive Convergence — and that the final visibility
   graph splits into linearly separable components.

Everything the paper's argument needs is verified numerically and
reported in an :class:`ImpossibilityReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..algorithms.ando import AndoAlgorithm
from ..algorithms.kknps import KKNPSAlgorithm
from ..geometry.angles import normalize_angle
from ..geometry.point import Point
from ..model.configuration import Configuration
from ..model.snapshot import Snapshot
from ..model.visibility import connected_components, is_linearly_separable, visibility_edges
from .forced_motion import ForcedMotionWitness, forced_motion_witness
from .sliver import FlatteningResult, flatten_spiral
from .spiral import B_INDEX, C_INDEX, HUB_INDEX, SpiralConfiguration, build_spiral


@dataclass(frozen=True)
class HubMove:
    """The move a representative algorithm plans for the hub from its initial view."""

    algorithm_name: str
    displacement: Point
    zeta: float
    direction_angle: float
    in_c_side_half_sector: bool


@dataclass
class ImpossibilityReport:
    """Everything the Section-7 verification bench reports."""

    spiral: SpiralConfiguration
    flattening: FlatteningResult
    hub_moves: List[HubMove]
    witnesses: List[ForcedMotionWitness]
    delta: float
    skew: float
    required_zeta: float
    separations: Dict[str, float] = field(default_factory=dict)
    visibility_broken: Dict[str, bool] = field(default_factory=dict)
    final_components: int = 0
    components_linearly_separable: bool = False

    @property
    def construction_is_legal(self) -> bool:
        """Every adversarial move stayed inside the neighbour lens."""
        return self.flattening.lens_violations == 0

    @property
    def drift_within_paper_bound(self) -> bool:
        """Every robot's hub-distance drift is within the paper's ``4*psi^2`` bound."""
        return self.flattening.max_abs_drift <= self.flattening.paper_total_drift_bound() + 1e-9

    @property
    def edges_indistinguishable_from_threshold(self) -> bool:
        """All manipulated chain edges stayed within the distance-error band."""
        return self.flattening.edges_stay_indistinguishable(self.delta)

    @property
    def any_representative_breaks_visibility(self) -> bool:
        """At least one representative forced hub move breaks the (X_A, X_B) edge."""
        return any(self.visibility_broken.values())

    def summary_lines(self) -> List[str]:
        """Human-readable summary used by the bench and the example script."""
        spiral = self.spiral
        flat = self.flattening
        lines = [
            f"spiral: psi={spiral.psi:.3f}, tail robots={spiral.n_tail}, "
            f"total robots={spiral.n_robots} "
            f"(paper bound ~{spiral.predicted_robot_count():.0f})",
            f"total chord rotation: {spiral.total_rotation():.4f} rad "
            f"(target {spiral.target_rotation:.4f})",
            f"flattening: {flat.total_moves} adversarial activations, "
            f"{flat.stages_completed} stages, lens violations={flat.lens_violations}",
            f"max |hub-distance drift| = {flat.max_abs_drift:.3e} "
            f"(paper bound 4*psi^2 = {flat.paper_total_drift_bound():.3e})",
            f"chain edge lengths stayed in [{flat.min_edge_length_seen:.4f}, "
            f"{flat.max_edge_length_seen:.4f}] (delta needed <= {self.delta})",
            f"required zeta for separation: {self.required_zeta:.4f}",
        ]
        for move in self.hub_moves:
            broken = self.visibility_broken.get(move.algorithm_name, False)
            separation = self.separations.get(move.algorithm_name, float("nan"))
            lines.append(
                f"hub move by {move.algorithm_name}: zeta={move.zeta:.4f} at "
                f"{math.degrees(move.direction_angle):.1f} deg -> final |A' X_B| = "
                f"{separation:.4f} ({'BROKEN' if broken else 'kept'})"
            )
        lines.append(
            f"final visibility graph components: {self.final_components}, "
            f"linearly separable: {self.components_linearly_separable}"
        )
        return lines


def hub_snapshot(spiral: SpiralConfiguration, *, reveal_range: bool) -> Snapshot:
    """The hub's initial snapshot: it sees exactly ``X_B`` and ``X_C``."""
    hub = spiral.hub
    visible = [
        p - hub
        for p in spiral.positions()[1:]
        if hub.distance_to(p) <= spiral.visibility_range + 1e-12
    ]
    return Snapshot(
        neighbours=tuple(visible),
        visibility_range=spiral.visibility_range if reveal_range else None,
    )


def representative_hub_moves(spiral: SpiralConfiguration) -> List[HubMove]:
    """Hub moves planned by the representative natural algorithms."""
    moves: List[HubMove] = []
    bisector = spiral.bisector_direction()
    to_b = spiral.hub.direction_to(spiral.tail[0])
    to_c = spiral.hub.direction_to(spiral.c_robot)
    for algorithm in (KKNPSAlgorithm(k=1), AndoAlgorithm()):
        snapshot = hub_snapshot(spiral, reveal_range=algorithm.requires_visibility_range)
        displacement = algorithm.compute(snapshot)
        zeta = displacement.norm()
        angle = displacement.angle() if zeta > 0.0 else 0.0
        # The move lies in the C-side half of the sector when it is at least
        # as close (in angle) to the C direction as to the B direction.
        if zeta > 0.0:
            gap_to_c = abs(normalize_angle(angle - to_c.angle()))
            gap_to_b = abs(normalize_angle(angle - to_b.angle()))
            in_half = gap_to_c <= gap_to_b + 1e-9
        else:
            in_half = False
        moves.append(
            HubMove(
                algorithm_name=algorithm.describe(),
                displacement=displacement,
                zeta=zeta,
                direction_angle=angle,
                in_c_side_half_sector=in_half,
            )
        )
    return moves


def required_zeta(spiral: SpiralConfiguration, flattening: FlatteningResult) -> float:
    """Smallest hub move along the sector bisector that breaks the (X_A, X_B) edge.

    Computed directly from the realised final position of ``X_B``: we need
    ``|zeta * u_bisector - B_final| > V``; solving the quadratic for the
    boundary case gives the threshold.
    """
    v = spiral.visibility_range
    b_final = flattening.b_final - spiral.hub
    u = spiral.bisector_direction()
    d = b_final.norm()
    cos_angle = u.dot(b_final) / d if d > 0.0 else 1.0
    # |zeta*u - b|^2 = zeta^2 - 2*zeta*d*cos + d^2 > v^2
    a = 1.0
    b_coeff = -2.0 * d * cos_angle
    c_coeff = d * d - v * v
    discriminant = b_coeff * b_coeff - 4.0 * a * c_coeff
    if c_coeff > 0.0:
        # B_final is already farther than V from the hub: any positive zeta works.
        return 0.0
    if discriminant < 0.0:
        return math.inf
    return (-b_coeff + math.sqrt(discriminant)) / 2.0


def run_impossibility(
    psi: float = 0.3,
    *,
    delta: float = 0.05,
    skew: float = 0.1,
    visibility_range: float = 1.0,
    target_rotation: float = 3.0 * math.pi / 8.0,
    max_passes_per_stage: int = 60,
) -> ImpossibilityReport:
    """Run the whole Section-7 construction and verify its claims numerically."""
    spiral = build_spiral(
        psi, visibility_range=visibility_range, target_rotation=target_rotation
    )
    hub_moves = representative_hub_moves(spiral)
    flattening = flatten_spiral(spiral, max_passes_per_stage=max_passes_per_stage)

    # Forced-motion witnesses for the turn angles the adversary manipulates:
    # the full sliver angle psi and the residual essential-collinearity angle.
    witnesses = [forced_motion_witness(psi, skew)]
    residual = psi / (2.0 * spiral.n_tail)
    witnesses.append(forced_motion_witness(residual, skew))

    report = ImpossibilityReport(
        spiral=spiral,
        flattening=flattening,
        hub_moves=hub_moves,
        witnesses=witnesses,
        delta=delta,
        skew=skew,
        required_zeta=required_zeta(spiral, flattening),
    )

    # Final configuration: hub moved by each representative zeta, tail flattened.
    for move in hub_moves:
        hub_final = spiral.hub + move.displacement
        separation = hub_final.distance_to(flattening.b_final)
        report.separations[move.algorithm_name] = separation
        report.visibility_broken[move.algorithm_name] = (
            separation > visibility_range + 1e-9
        )

    # Component structure of the final configuration, using the first
    # representative move that breaks visibility (if any).
    breaking = [m for m in hub_moves if report.visibility_broken.get(m.algorithm_name)]
    chosen = breaking[0] if breaking else hub_moves[0]
    final_positions = [spiral.hub + chosen.displacement, spiral.c_robot, *flattening.final_tail]
    edges = visibility_edges(final_positions, visibility_range)
    components = connected_components(len(final_positions), edges)
    report.final_components = len(components)
    if len(components) >= 2:
        components_sorted = sorted(components, key=len)
        report.components_linearly_separable = is_linearly_separable(
            final_positions, components_sorted[0], set().union(*components_sorted[1:])
        )
    return report
