"""Adversarial constructions: the paper's counterexamples and impossibility proof."""

from .ando_counterexample import (
    AndoFailureInstance,
    AndoFailureOutcome,
    canonical_instance,
    one_async_schedule,
    replay,
    run_figure4,
    search_failure_instances,
    two_nesta_schedule,
)
from .forced_motion import (
    ForcedMotionWitness,
    distance_indistinguishable,
    forced_motion_witness,
    paper_modulus,
    smallest_witness_modulus,
)
from .impossibility import (
    HubMove,
    ImpossibilityReport,
    representative_hub_moves,
    required_zeta,
    run_impossibility,
)
from .sliver import CollapseMove, FlatteningResult, collapse_point, flatten_spiral
from .spiral import SpiralConfiguration, build_spiral

__all__ = [
    "AndoFailureInstance",
    "AndoFailureOutcome",
    "CollapseMove",
    "FlatteningResult",
    "ForcedMotionWitness",
    "HubMove",
    "ImpossibilityReport",
    "SpiralConfiguration",
    "build_spiral",
    "canonical_instance",
    "collapse_point",
    "distance_indistinguishable",
    "flatten_spiral",
    "forced_motion_witness",
    "one_async_schedule",
    "paper_modulus",
    "replay",
    "representative_hub_moves",
    "required_zeta",
    "run_figure4",
    "run_impossibility",
    "search_failure_instances",
    "smallest_witness_modulus",
    "two_nesta_schedule",
]
