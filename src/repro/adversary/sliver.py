"""Sliver flattening: the adversary's tail manipulation (Section 7.2.2-7.2.3).

The Section-7 adversary repeatedly activates tail robots so that, stage by
stage, the robots ``X_0 .. X_{i-1}`` already lying (essentially) on the
chord ``A P_{i-1}`` end up lying on the next chord ``A P_i``.  Each
individual activation collapses one *thin triangle*: a robot ``Q`` whose
chain neighbours ``R`` (inner) and ``P`` (outer) are at distance
(essentially) ``V`` is moved to a point (essentially) collinear with them.
Every such move

* stays inside the *lens* — the intersection of the closed ``V``-disks
  around ``R`` and ``P`` — which is all a connectivity-preserving
  algorithm can be sure of, and
* changes the robot's distance to the hub ``A`` by at most ``phi^2 / 2``,
  where ``phi`` is the turn angle being collapsed, so the accumulated
  change stays ``O(psi^2)`` per robot.

This module performs the flattening operationally (a Gauss-Seidel-style
sweep of triangle collapses, mirroring the paper's recursive description)
and records, for every move, the quantities the verification bench checks
against the paper's bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..geometry.point import Point
from ..geometry.segment import Segment, foot_of_perpendicular
from ..geometry.tolerances import EPS
from .spiral import SpiralConfiguration


@dataclass(frozen=True)
class CollapseMove:
    """One tail-robot activation performed by the adversary."""

    stage: int
    robot_index: int
    old_position: Point
    new_position: Point
    turn_before: float
    within_lens: bool
    hub_distance_change: float
    inner_distance_after: float
    outer_distance_after: float

    @property
    def move_length(self) -> float:
        """Length of the move."""
        return self.old_position.distance_to(self.new_position)

    def respects_paper_drift_bound(self, *, slack: float = 1e-9) -> bool:
        """Per-move bound: the hub-distance change is at most ``turn^2 / 2``."""
        return abs(self.hub_distance_change) <= self.turn_before * self.turn_before / 2.0 + slack


@dataclass
class FlatteningResult:
    """Aggregate outcome of flattening the whole spiral tail."""

    spiral: SpiralConfiguration
    final_tail: List[Point]
    total_moves: int
    lens_violations: int
    drift_bound_violations: int
    max_single_move_length: float
    min_edge_length_seen: float
    max_edge_length_seen: float
    hub_distance_initial: List[float]
    hub_distance_final: List[float]
    sampled_moves: List[CollapseMove] = field(default_factory=list)
    stages_completed: int = 0
    max_passes_used: int = 0

    @property
    def per_robot_drift(self) -> List[float]:
        """Net change of each tail robot's distance to the hub."""
        return [
            final - initial
            for initial, final in zip(self.hub_distance_initial, self.hub_distance_final)
        ]

    @property
    def max_abs_drift(self) -> float:
        """Largest absolute hub-distance drift over all tail robots."""
        return max(abs(d) for d in self.per_robot_drift)

    @property
    def b_final(self) -> Point:
        """Final position of ``X_B`` (tail robot 0)."""
        return self.final_tail[0]

    def paper_total_drift_bound(self) -> float:
        """The paper's bound ``4 * psi^2`` on any robot's total hub-distance drift."""
        return 4.0 * self.spiral.psi * self.spiral.psi

    def edges_stay_indistinguishable(self, delta: float) -> bool:
        """All chain edges stayed in ``((1 - delta) V, V]`` throughout the flattening."""
        v = self.spiral.visibility_range
        return (
            self.min_edge_length_seen > (1.0 - delta) * v
            and self.max_edge_length_seen <= v + 1e-9
        )


def collapse_point(hub: Point, inner: Point, current: Point, outer: Point) -> Point:
    """The destination of one triangle collapse.

    The moved robot should become collinear with ``inner`` and ``outer``.
    Among collinear points we prefer the one at the robot's current
    distance from the hub (so the per-move hub-distance change is zero);
    when the supporting line does not reach that circle we fall back to the
    orthogonal projection of the current position onto the line.
    """
    line = Segment(inner, outer)
    direction = outer - inner
    length = direction.norm()
    if length <= EPS:
        return foot_of_perpendicular(current, inner, outer)
    u = direction / length
    # Intersect the line inner + t*u with the circle of radius |hub->current| about the hub.
    radius = hub.distance_to(current)
    w = inner - hub
    b = 2.0 * w.dot(u)
    c = w.norm_squared() - radius * radius
    discriminant = b * b - 4.0 * c
    if discriminant < 0.0:
        return foot_of_perpendicular(current, inner, outer)
    sqrt_disc = math.sqrt(discriminant)
    candidates = [inner + u * ((-b - sqrt_disc) / 2.0), inner + u * ((-b + sqrt_disc) / 2.0)]
    return min(candidates, key=lambda p: p.distance_to(current))


def _turn_magnitude(inner: Point, middle: Point, outer: Point) -> float:
    """Unsigned turn angle at ``middle`` along the chain ``inner -> middle -> outer``."""
    a = middle - inner
    b = outer - middle
    if a.norm() <= EPS or b.norm() <= EPS:
        return 0.0
    cos_value = max(-1.0, min(1.0, a.dot(b) / (a.norm() * b.norm())))
    return math.acos(cos_value)


def flatten_spiral(
    spiral: SpiralConfiguration,
    *,
    collinearity_tolerance: Optional[float] = None,
    max_passes_per_stage: int = 60,
    sample_moves: int = 2000,
) -> FlatteningResult:
    """Run the full adversarial flattening of the spiral tail.

    Stage ``i`` (for each tail robot beyond the first) sweeps the chain
    ``X_{i-1}, ..., X_0`` repeatedly, collapsing the thin triangle at each
    robot, until every turn angle along ``A, X_0, ..., X_i`` is below the
    collinearity tolerance (default: ``psi / (2 * n_tail)``, the paper's
    "essential collinearity").
    """
    v = spiral.visibility_range
    n_tail = spiral.n_tail
    tolerance = (
        collinearity_tolerance
        if collinearity_tolerance is not None
        else spiral.psi / (2.0 * n_tail)
    )
    hub = spiral.hub
    chain: List[Point] = list(spiral.tail)
    hub_distance_initial = [hub.distance_to(p) for p in chain]

    total_moves = 0
    lens_violations = 0
    drift_bound_violations = 0
    max_single_move = 0.0
    min_edge = math.inf
    max_edge = 0.0
    sampled: List[CollapseMove] = []
    max_passes_used = 0

    def edge_lengths() -> List[float]:
        lengths = [hub.distance_to(chain[0])]
        lengths.extend(chain[j].distance_to(chain[j + 1]) for j in range(len(chain) - 1))
        return lengths

    for length in edge_lengths():
        min_edge = min(min_edge, length)
        max_edge = max(max_edge, length)

    stages_completed = 0
    for stage in range(1, n_tail):
        # Robots 0 .. stage-1 must become essentially collinear with the hub
        # and the (unmoved) robot at index ``stage``.
        for pass_index in range(max_passes_per_stage):
            worst_turn = 0.0
            for j in range(stage - 1, -1, -1):
                inner = hub if j == 0 else chain[j - 1]
                outer = chain[j + 1]
                current = chain[j]
                turn = _turn_magnitude(inner, current, outer)
                worst_turn = max(worst_turn, turn)
                if turn <= tolerance:
                    continue
                new_position = collapse_point(hub, inner, current, outer)
                inner_distance = new_position.distance_to(inner)
                outer_distance = new_position.distance_to(outer)
                within_lens = inner_distance <= v + 1e-9 and outer_distance <= v + 1e-9
                hub_change = hub.distance_to(new_position) - hub.distance_to(current)
                move = CollapseMove(
                    stage=stage,
                    robot_index=j,
                    old_position=current,
                    new_position=new_position,
                    turn_before=turn,
                    within_lens=within_lens,
                    hub_distance_change=hub_change,
                    inner_distance_after=inner_distance,
                    outer_distance_after=outer_distance,
                )
                chain[j] = new_position
                total_moves += 1
                if not within_lens:
                    lens_violations += 1
                if not move.respects_paper_drift_bound():
                    drift_bound_violations += 1
                max_single_move = max(max_single_move, move.move_length)
                min_edge = min(min_edge, inner_distance, outer_distance)
                max_edge = max(max_edge, inner_distance, outer_distance)
                if len(sampled) < sample_moves:
                    sampled.append(move)
            max_passes_used = max(max_passes_used, pass_index + 1)
            if worst_turn <= tolerance:
                break
        stages_completed = stage

    return FlatteningResult(
        spiral=spiral,
        final_tail=chain,
        total_moves=total_moves,
        lens_violations=lens_violations,
        drift_bound_violations=drift_bound_violations,
        max_single_move_length=max_single_move,
        min_edge_length_seen=min_edge,
        max_edge_length_seen=max_edge,
        hub_distance_initial=hub_distance_initial,
        hub_distance_final=[hub.distance_to(p) for p in chain],
        sampled_moves=sampled,
        stages_completed=stages_completed,
        max_passes_used=max_passes_used,
    )
