"""A sqlite-backed, globally deduplicated store of sweep result rows.

One database file holds every row ever computed, keyed by the run's
deterministic ``run_key``:

``results``
    ``run_key`` (primary key), ``schema_version`` (the payload contract
    version — rows written under a different contract are treated as
    misses, never misread), ``payload`` (the row as JSON, byte-for-byte
    the dict the runner produced), plus provenance: ``sweep_label``,
    ``source`` (``executed`` / ``jsonl-import`` / ...), ``host``,
    ``pid`` and ``created_at``.
``claims``
    Short-lived execution leases: a runner *claims* a key before
    computing it so concurrent runners sharing the store execute each
    key exactly once between them.  A claim names its owner (store
    instance), host, pid and claim time; it is released atomically by
    the ``put`` of its row.
``store_meta``
    The database-layout version, checked on open.

Concurrency model: sqlite's file locking serializes writers across
processes (``busy_timeout`` retries), an instance-level lock serializes
threads sharing one connection, and every multi-statement operation runs
inside ``BEGIN IMMEDIATE`` so check-then-act sequences (claiming, insert
-or-ignore puts) are atomic.  Dedup is **first-writer-wins**: a second
``put`` of an existing key is ignored, which is sound because rows are
pure functions of their spec up to timing fields.

Crash model: every ``put`` commits a transaction, so a runner killed
mid-ingest leaves the database with whole rows only — sqlite's journal
rolls back any half-written transaction on the next open.  Stale claims
left by the dead process are detected (same-host pid liveness, wall
-clock TTL everywhere) and stolen by the next runner; a stolen claim can
at worst recompute a row, never corrupt one.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

#: Version of the row-payload contract.  Rows written under another
#: version are treated as cache misses (and recomputed), never misread.
ROW_SCHEMA_VERSION = 1

#: Database-layout version stored in ``store_meta`` and checked on open.
STORE_LAYOUT_VERSION = 1

#: Default wall-clock lease on a claim.  A claim older than this is
#: considered abandoned and may be stolen even when its owner cannot be
#: proven dead; stealing can at worst recompute a row (first-writer-wins
#: makes that harmless), so the TTL bounds how long a wedged runner can
#: stall its peers.
DEFAULT_CLAIM_TTL_S = 3600.0

#: sqlite bind-parameter budget per ``IN (...)`` query.
_IN_CHUNK = 500


class StoreError(RuntimeError):
    """The store file exists but cannot be used (layout mismatch, ...)."""


@dataclass(frozen=True)
class ClaimInfo:
    """One execution lease as recorded in the ``claims`` table."""

    run_key: str
    owner: str
    host: str
    pid: int
    claimed_at: float

    def age_s(self, now: Optional[float] = None) -> float:
        """Seconds since the claim was taken."""
        return max(0.0, (time.time() if now is None else now) - self.claimed_at)


class ResultsStore:
    """The persistent, shared, deduplicated results database.

    Instances are cheap handles over one sqlite file; open as many as
    needed (one per runner / thread is the intended pattern — sqlite
    coordinates them through file locks).  All methods are safe to call
    from multiple threads of one instance.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        busy_timeout_s: float = 30.0,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._host = socket.gethostname()
        #: Unique identity of this handle — claims it takes are re-entrant
        #: for it and foreign for every other handle, even in-process.
        self.owner_id = f"{self._host}:{os.getpid()}:{uuid.uuid4().hex[:8]}"
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            str(self.path),
            timeout=busy_timeout_s,
            isolation_level=None,  # manual BEGIN IMMEDIATE transactions
            check_same_thread=False,
        )
        self._conn.execute("PRAGMA busy_timeout = %d" % int(busy_timeout_s * 1000))
        # WAL lets readers proceed while a writer commits; sqlite falls
        # back silently where WAL is unsupported (the store still works,
        # just with coarser locking).
        self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.execute("PRAGMA synchronous = FULL")
        self._ensure_layout()

    # ------------------------------------------------------------------
    # layout

    def _ensure_layout(self) -> None:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    """
                    CREATE TABLE IF NOT EXISTS store_meta (
                        key TEXT PRIMARY KEY,
                        value TEXT NOT NULL
                    )
                    """
                )
                self._conn.execute(
                    """
                    CREATE TABLE IF NOT EXISTS results (
                        run_key TEXT PRIMARY KEY,
                        schema_version INTEGER NOT NULL,
                        payload TEXT NOT NULL,
                        sweep_label TEXT,
                        source TEXT NOT NULL,
                        host TEXT NOT NULL,
                        pid INTEGER NOT NULL,
                        created_at REAL NOT NULL
                    )
                    """
                )
                self._conn.execute(
                    """
                    CREATE TABLE IF NOT EXISTS claims (
                        run_key TEXT PRIMARY KEY,
                        owner TEXT NOT NULL,
                        host TEXT NOT NULL,
                        pid INTEGER NOT NULL,
                        claimed_at REAL NOT NULL
                    )
                    """
                )
                row = self._conn.execute(
                    "SELECT value FROM store_meta WHERE key = 'layout_version'"
                ).fetchone()
                if row is None:
                    self._conn.execute(
                        "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                        ("layout_version", str(STORE_LAYOUT_VERSION)),
                    )
                elif int(row[0]) > STORE_LAYOUT_VERSION:
                    raise StoreError(
                        f"results store {self.path} has layout version {row[0]}, "
                        f"newer than this code supports ({STORE_LAYOUT_VERSION})"
                    )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            else:
                self._conn.execute("COMMIT")

    # ------------------------------------------------------------------
    # reads

    def get(self, run_key: str) -> Optional[Dict[str, object]]:
        """The stored row of one run key, or None (misses include rows
        written under a different payload schema version)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE run_key = ? AND schema_version = ?",
                (run_key, ROW_SCHEMA_VERSION),
            ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def get_many(self, run_keys: Sequence[str]) -> Dict[str, Dict[str, object]]:
        """Stored rows for every hit among ``run_keys`` (misses absent)."""
        hits: Dict[str, Dict[str, object]] = {}
        keys = list(run_keys)
        with self._lock:
            for start in range(0, len(keys), _IN_CHUNK):
                chunk = keys[start : start + _IN_CHUNK]
                marks = ",".join("?" for _ in chunk)
                rows = self._conn.execute(
                    f"SELECT run_key, payload FROM results "
                    f"WHERE schema_version = ? AND run_key IN ({marks})",
                    [ROW_SCHEMA_VERSION, *chunk],
                ).fetchall()
                for key, payload in rows:
                    hits[key] = json.loads(payload)
        return hits

    def provenance(self, run_key: str) -> Optional[Dict[str, object]]:
        """Who computed a stored row, when, and under which label."""
        with self._lock:
            row = self._conn.execute(
                "SELECT schema_version, sweep_label, source, host, pid, created_at "
                "FROM results WHERE run_key = ?",
                (run_key,),
            ).fetchone()
        if row is None:
            return None
        return {
            "schema_version": row[0],
            "sweep_label": row[1],
            "source": row[2],
            "host": row[3],
            "pid": row[4],
            "created_at": row[5],
        }

    def run_keys(self) -> List[str]:
        """Every stored run key (current payload schema only)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT run_key FROM results WHERE schema_version = ? "
                "ORDER BY run_key",
                (ROW_SCHEMA_VERSION,),
            ).fetchall()
        return [row[0] for row in rows]

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results WHERE schema_version = ?",
                (ROW_SCHEMA_VERSION,),
            ).fetchone()
        return int(count)

    def __contains__(self, run_key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE run_key = ? AND schema_version = ?",
                (run_key, ROW_SCHEMA_VERSION),
            ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    # writes

    def put(
        self,
        row: Mapping[str, object],
        *,
        sweep_label: Optional[str] = None,
        source: str = "executed",
    ) -> bool:
        """Ingest one completed row; True when this call inserted it.

        First-writer-wins: an existing row for the key is left untouched
        (rows are pure functions of their spec, so the duplicate carries
        no new information beyond timing).  Any claim on the key is
        released in the same transaction, so a crash can never leave a
        stored row still claimed.
        """
        return self.put_many([row], sweep_label=sweep_label, source=source) == 1

    def put_many(
        self,
        rows: Iterable[Mapping[str, object]],
        *,
        sweep_label: Optional[str] = None,
        source: str = "executed",
    ) -> int:
        """Ingest many rows in one crash-safe transaction; count inserted."""
        payloads = []
        for row in rows:
            key = row.get("run_key")
            if not isinstance(key, str) or not key:
                raise ValueError("a result row must carry a string 'run_key'")
            payloads.append((key, json.dumps(row)))
        if not payloads:
            return 0
        now = time.time()
        inserted = 0
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for key, payload in payloads:
                    cursor = self._conn.execute(
                        "INSERT OR IGNORE INTO results "
                        "(run_key, schema_version, payload, sweep_label, source, "
                        " host, pid, created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            key,
                            ROW_SCHEMA_VERSION,
                            payload,
                            sweep_label,
                            source,
                            self._host,
                            os.getpid(),
                            now,
                        ),
                    )
                    inserted += cursor.rowcount
                    self._conn.execute(
                        "DELETE FROM claims WHERE run_key = ?", (key,)
                    )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            else:
                self._conn.execute("COMMIT")
        return inserted

    def import_jsonl(
        self,
        jsonl_path: Union[str, Path],
        *,
        sweep_label: Optional[str] = None,
        repair: bool = True,
    ) -> int:
        """Import a legacy per-sweep JSONL result file; count rows inserted.

        Reuses the runner's loader, so a file left torn by a crash is
        repaired on the way in exactly as a resume would repair it: a
        truncated trailing line is dropped (and removed from the file
        when ``repair`` is on), an unterminated-but-parseable final row
        is kept, and garbage lines are skipped with a one-shot warning.
        """
        from ..sweeps.runner import load_completed_rows  # runtime, no cycle

        label = sweep_label if sweep_label is not None else Path(jsonl_path).name
        rows = load_completed_rows(jsonl_path, repair=repair)
        return self.put_many(
            rows.values(), sweep_label=label, source="jsonl-import"
        )

    # ------------------------------------------------------------------
    # claims

    def claim(self, run_key: str, *, ttl_s: float = DEFAULT_CLAIM_TTL_S) -> bool:
        """Try to lease ``run_key`` for execution by this handle.

        False when the row already exists (it needs no execution) or a
        *live* foreign claim holds the key.  A dead claim — same-host
        owner whose pid no longer exists, or any claim older than
        ``ttl_s`` — is stolen.  Re-claiming a key this handle already
        holds returns True.
        """
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                done = self._conn.execute(
                    "SELECT 1 FROM results WHERE run_key = ? AND schema_version = ?",
                    (run_key, ROW_SCHEMA_VERSION),
                ).fetchone()
                if done is not None:
                    return False
                existing = self._conn.execute(
                    "SELECT owner, host, pid, claimed_at FROM claims "
                    "WHERE run_key = ?",
                    (run_key,),
                ).fetchone()
                if existing is None:
                    self._conn.execute(
                        "INSERT INTO claims (run_key, owner, host, pid, claimed_at) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (run_key, self.owner_id, self._host, os.getpid(), now),
                    )
                    return True
                info = ClaimInfo(run_key, *existing)
                if info.owner == self.owner_id:
                    return True
                if self._claim_is_live(info, ttl_s, now):
                    return False
                self._conn.execute(
                    "UPDATE claims SET owner = ?, host = ?, pid = ?, claimed_at = ? "
                    "WHERE run_key = ?",
                    (self.owner_id, self._host, os.getpid(), now, run_key),
                )
                return True
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            finally:
                if self._conn.in_transaction:
                    self._conn.execute("COMMIT")

    def _claim_is_live(self, info: ClaimInfo, ttl_s: float, now: float) -> bool:
        """Whether a foreign claim still protects its key."""
        if now - info.claimed_at >= ttl_s:
            return False
        if info.host == self._host and info.pid != os.getpid():
            try:
                os.kill(info.pid, 0)
            except ProcessLookupError:
                return False
            except PermissionError:
                pass  # exists, just not ours to signal
        return True

    def claim_info(self, run_key: str) -> Optional[ClaimInfo]:
        """The current lease on a key, if any."""
        with self._lock:
            row = self._conn.execute(
                "SELECT owner, host, pid, claimed_at FROM claims WHERE run_key = ?",
                (run_key,),
            ).fetchone()
        if row is None:
            return None
        return ClaimInfo(run_key, *row)

    def release(self, run_key: str, *, force: bool = False) -> bool:
        """Drop a lease (only this handle's, unless ``force``)."""
        with self._lock:
            if force:
                cursor = self._conn.execute(
                    "DELETE FROM claims WHERE run_key = ?", (run_key,)
                )
            else:
                cursor = self._conn.execute(
                    "DELETE FROM claims WHERE run_key = ? AND owner = ?",
                    (run_key, self.owner_id),
                )
        return cursor.rowcount > 0

    def claim_count(self) -> int:
        """Number of outstanding leases."""
        with self._lock:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM claims").fetchone()
        return int(count)

    # ------------------------------------------------------------------
    # health

    def integrity_ok(self) -> bool:
        """sqlite's own integrity check (used by the crash tests)."""
        with self._lock:
            (verdict,) = self._conn.execute("PRAGMA integrity_check").fetchone()
        return verdict == "ok"

    def stats(self) -> Dict[str, object]:
        """Summary counters (the ``store stats`` CLI verb's payload)."""
        with self._lock:
            (rows,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
            by_source = dict(
                self._conn.execute(
                    "SELECT source, COUNT(*) FROM results GROUP BY source"
                ).fetchall()
            )
        return {
            "path": str(self.path),
            "layout_version": STORE_LAYOUT_VERSION,
            "row_schema_version": ROW_SCHEMA_VERSION,
            "rows": int(rows),
            "claims": self.claim_count(),
            "by_source": by_source,
        }

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultsStore({str(self.path)!r}, owner={self.owner_id!r})"
