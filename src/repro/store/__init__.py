"""The persistent results store: globally deduplicated sweep rows.

The sweep pipeline is content-addressed — every run has a deterministic
``run_key`` and its result row is a pure function of the spec — so any
row ever computed can be served from a store instead of recomputed.
:class:`ResultsStore` is that store: a single sqlite file holding one
row per run key (schema-versioned JSON payload plus provenance), with a
claims table that lets many concurrent runners share the file and
execute each key exactly once between them.

The :class:`~repro.sweeps.runner.SweepRunner` consults the store before
dispatching to any backend (``store=`` / the ``--store`` CLI flag), and
the job service in :mod:`repro.service` puts the store in front of many
concurrent clients.  Semantics and schema are documented in
``docs/results-store.md``.
"""

from .results_store import (
    ROW_SCHEMA_VERSION,
    ClaimInfo,
    ResultsStore,
    StoreError,
)

__all__ = [
    "ROW_SCHEMA_VERSION",
    "ClaimInfo",
    "ResultsStore",
    "StoreError",
]
