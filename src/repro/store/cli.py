"""The ``python -m repro store`` subcommand: inspect and feed the store.

Two verbs:

``store import FILE [FILE ...] --store PATH``
    Ingest legacy per-sweep JSONL result files into the store through
    the crash-safe path (torn trailing lines are repaired on the way
    in).  Idempotent: re-importing inserts nothing new.
``store stats --store PATH``
    Row / claim counters and schema versions, as text or ``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .results_store import ResultsStore

DEFAULT_STORE_PATH = "repro-results.sqlite"


def build_parser() -> argparse.ArgumentParser:
    """The store subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro store",
        description="Inspect or feed the persistent results store.",
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    importer = verbs.add_parser(
        "import", help="ingest legacy JSONL result files into the store"
    )
    importer.add_argument("files", nargs="+", help="JSONL result files to ingest")
    importer.add_argument("--store", default=DEFAULT_STORE_PATH,
                          help="results store database file")
    importer.add_argument("--label", default=None,
                          help="sweep label recorded as provenance "
                               "(default: each file's name)")
    importer.add_argument("--no-repair", action="store_true",
                          help="do not rewrite torn source files while importing")

    stats = verbs.add_parser("stats", help="print store counters")
    stats.add_argument("--store", default=DEFAULT_STORE_PATH,
                       help="results store database file")
    stats.add_argument("--json", action="store_true",
                       help="machine-readable output")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro store``."""
    args = build_parser().parse_args(argv)
    with ResultsStore(args.store) as store:
        if args.verb == "import":
            total = 0
            for path in args.files:
                inserted = store.import_jsonl(
                    path, sweep_label=args.label, repair=not args.no_repair
                )
                total += inserted
                print(f"{path}: {inserted} new rows")
            print(f"{total} rows imported into {args.store} "
                  f"({len(store)} total)")
            return 0
        payload = store.stats()
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for key in ("path", "layout_version", "row_schema_version",
                        "rows", "claims"):
                print(f"{key}: {payload[key]}")
            for source, count in sorted(payload["by_source"].items()):
                print(f"rows from {source}: {count}")
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
