"""Command-line interface: run one simulation (or a sweep) from the shell.

Examples::

    python -m repro --algorithm kknps --scheduler k-async --k 3 --robots 20
    python -m repro --algorithm ando --scheduler ssync --robots 12 --epsilon 0.02
    python -m repro --workload clusters --svg out.svg --trace
    python -m repro sweep --algorithms kknps ando --workers 4 --out results.jsonl
    python -m repro sweep --smoke
    python -m repro serve --store results.sqlite
    python -m repro submit --smoke --wait
    python -m repro store stats --store results.sqlite

The default form builds a workload, runs the requested algorithm under
the requested scheduler, prints a summary table, and can optionally dump
the trajectories to an SVG file.  The ``sweep`` subcommand fans a whole
parameter grid out across worker processes (see :mod:`repro.sweeps`);
``store`` inspects and imports into the persistent results store
(:mod:`repro.store`); ``serve``/``submit``/``status``/``results`` run and
talk to the sweep job service (:mod:`repro.service`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .algorithms import (
    AndoAlgorithm,
    CenterOfGravityAlgorithm,
    KKNPSAlgorithm,
    KatreniakAlgorithm,
    MinboxAlgorithm,
)
from .analysis.tables import render_key_values
from .engine import SimulationConfig, run_simulation
from .geometry.transforms import SymmetricDistortion
from .model import MotionModel, PerceptionModel
from .schedulers import (
    AsyncScheduler,
    FSyncScheduler,
    KAsyncScheduler,
    KNestAScheduler,
    SSyncScheduler,
)
from .workloads import (
    clustered_configuration,
    grid_configuration,
    line_configuration,
    random_connected_configuration,
    ring_configuration,
)

ALGORITHMS = ("kknps", "ando", "katreniak", "cog", "gcm")
SCHEDULERS = ("fsync", "ssync", "k-nesta", "k-async", "async")
WORKLOADS = ("random", "line", "grid", "ring", "clusters")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run one Point-Convergence simulation (PODC 2021 reproduction).",
        epilog="Subcommand: 'python -m repro sweep --help' runs whole parameter "
               "grids across worker processes with resumable JSONL results.",
    )
    parser.add_argument("--algorithm", choices=ALGORITHMS, default="kknps")
    parser.add_argument("--scheduler", choices=SCHEDULERS, default="k-async")
    parser.add_argument("--workload", choices=WORKLOADS, default="random")
    parser.add_argument("--robots", type=int, default=15, help="number of robots")
    parser.add_argument("--k", type=int, default=2, help="asynchrony bound for k-Async/k-NestA")
    parser.add_argument("--epsilon", type=float, default=0.05, help="convergence threshold")
    parser.add_argument("--max-activations", type=int, default=30000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--xi", type=float, default=1.0, help="rigidity lower bound in (0, 1]")
    parser.add_argument("--distance-error", type=float, default=0.0,
                        help="relative distance measurement error bound")
    parser.add_argument("--skew", type=float, default=0.0, help="compass skew bound")
    parser.add_argument("--svg", type=str, default=None,
                        help="write the trajectories of the run to this SVG file")
    parser.add_argument("--trace", action="store_true",
                        help="print the hull-diameter trace of the run")
    return parser


def make_algorithm(args: argparse.Namespace):
    """Instantiate the requested algorithm."""
    if args.algorithm == "kknps":
        return KKNPSAlgorithm(
            k=args.k,
            distance_error_tolerance=args.distance_error,
            skew_tolerance=args.skew,
        )
    if args.algorithm == "ando":
        return AndoAlgorithm()
    if args.algorithm == "katreniak":
        return KatreniakAlgorithm()
    if args.algorithm == "cog":
        return CenterOfGravityAlgorithm()
    return MinboxAlgorithm()


def make_scheduler(args: argparse.Namespace):
    """Instantiate the requested scheduler."""
    if args.scheduler == "fsync":
        return FSyncScheduler()
    if args.scheduler == "ssync":
        return SSyncScheduler()
    if args.scheduler == "k-nesta":
        return KNestAScheduler(k=args.k)
    if args.scheduler == "k-async":
        return KAsyncScheduler(k=args.k)
    return AsyncScheduler()


def make_workload(args: argparse.Namespace):
    """Instantiate the requested initial configuration."""
    if args.workload == "random":
        return random_connected_configuration(args.robots, seed=args.seed)
    if args.workload == "line":
        return line_configuration(args.robots)
    if args.workload == "grid":
        side = max(2, int(round(args.robots ** 0.5)))
        return grid_configuration(side, side)
    if args.workload == "ring":
        return ring_configuration(max(3, args.robots))
    robots_per_cluster = max(2, args.robots // 3)
    return clustered_configuration(3, robots_per_cluster, seed=args.seed)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro`` (single run, or the sweep subcommand)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        from .sweeps.cli import main as sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "store":
        from .store.cli import main as store_main

        return store_main(argv[1:])
    if argv and argv[0] in ("serve", "submit", "status", "results"):
        from .service import cli as service_cli

        verb_main = getattr(service_cli, f"main_{argv[0]}")
        return verb_main(argv[1:])
    args = build_parser().parse_args(argv)

    configuration = make_workload(args)
    algorithm = make_algorithm(args)
    scheduler = make_scheduler(args)

    perception = PerceptionModel(
        distance_error=args.distance_error,
        distortion=SymmetricDistortion(amplitude=args.skew, frequency=2) if args.skew else None,
    )
    config = SimulationConfig(
        visibility_range=configuration.visibility_range,
        max_activations=args.max_activations,
        convergence_epsilon=args.epsilon,
        seed=args.seed,
        k_bound=args.k,
        perception=perception,
        motion=MotionModel(xi=args.xi),
        record_trajectories=args.svg is not None,
    )
    result = run_simulation(configuration.positions, algorithm, scheduler, config)

    print(
        render_key_values(
            f"{algorithm.describe()} under {scheduler.describe()} on "
            f"{args.workload} workload ({len(configuration)} robots)",
            [
                ("converged", result.converged),
                ("convergence time", result.convergence_time),
                ("cohesion maintained", result.cohesion_maintained),
                ("activations processed", result.activations_processed),
                ("initial hull diameter", result.initial_hull_diameter),
                ("final hull diameter", result.final_hull_diameter),
                ("simulated time", result.final_time),
                ("wall time (s)", result.wall_time_seconds),
            ],
        )
    )

    if args.trace:
        print("\nhull-diameter trace:")
        samples = result.metrics.samples
        step = max(1, len(samples) // 25)
        for sample in samples[::step]:
            print(f"  t = {sample.time:10.2f}   diameter = {sample.hull_diameter:.6f}")

    if args.svg is not None and result.trajectories is not None:
        from .viz import render_trajectories

        canvas = render_trajectories(
            result.trajectories,
            title=f"{algorithm.describe()} under {scheduler.describe()}",
        )
        canvas.write(args.svg)
        print(f"\ntrajectories written to {args.svg}")

    return 0 if (result.converged and result.cohesion_maintained) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
