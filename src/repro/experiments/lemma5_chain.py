"""Experiment L5 — Lemma 5 / Theorem 4 (Figures 10-14): no doomed engagement.

Theorem 4 states that two initially-visible robots following the paper's
safe regions can never be separated beyond ``V`` by a 1-Async (or
k-Async) adversary.  The experiment attacks that claim directly with a
greedy randomised adversary (see :mod:`repro.analysis.chains`) and reports
the largest separation it ever achieves, together with the Lemma-5 edge
inequality margins along the most adversarial trace found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..analysis.chains import (
    LEMMA5_COS_BOUND,
    ChainEdgeMargin,
    EngagementTrace,
    adversarial_engagement_search,
    chain_invariant_margins,
)
from ..analysis.tables import TextTable


@dataclass
class Lemma5Result:
    """Largest separations achieved by the adversarial engagement search."""

    visibility_range: float
    per_k: List[tuple] = field(default_factory=list)  # (k, max separation ratio, steps, trials)
    worst_trace_margins: List[ChainEdgeMargin] = field(default_factory=list)
    worst_trace: EngagementTrace = None

    def to_table(self) -> TextTable:
        table = TextTable(
            "Lemma 5 / Theorem 4 — adversarial engagement search "
            "(separation must never exceed V)",
            ["k", "steps", "trials", "max separation / V", "exceeded V"],
        )
        for k, ratio, steps, trials in self.per_k:
            table.add_row(k, steps, trials, ratio, ratio > 1.0 + 1e-9)
        return table

    @property
    def theorem4_holds(self) -> bool:
        """No trial ever separated the pair beyond the visibility range."""
        return all(ratio <= 1.0 + 1e-9 for _, ratio, _, _ in self.per_k)

    @property
    def lemma5_margin_satisfied(self) -> bool:
        """Every edge of the worst trace satisfies the Lemma-5 inequality."""
        return all(m.satisfied for m in self.worst_trace_margins)


def run(
    *,
    k_values: tuple = (1, 2, 4),
    steps: int = 30,
    trials: int = 120,
    seed: int = 0,
    visibility_range: float = 1.0,
) -> Lemma5Result:
    """Run the adversarial engagement search for each asynchrony bound."""
    result = Lemma5Result(visibility_range=visibility_range)
    worst_ratio = -1.0
    for k in k_values:
        trace = adversarial_engagement_search(
            visibility_range=visibility_range,
            k=k,
            steps=steps,
            trials=trials,
            seed=seed + k,
        )
        ratio = trace.max_separation_ratio()
        result.per_k.append((k, ratio, steps, trials))
        if ratio > worst_ratio:
            worst_ratio = ratio
            result.worst_trace = trace
            result.worst_trace_margins = chain_invariant_margins(trace)
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print(result.to_table().render())
    print(f"\nLemma 5 cos bound: {LEMMA5_COS_BOUND:.6f}")
    print(f"Theorem 4 holds in every trial: {result.theorem4_holds}")


if __name__ == "__main__":  # pragma: no cover
    main()
