"""Experiment T1 — the headline separation matrix (Theorems 3-4 vs Section 7 / Figure 4).

The paper's main message is a *separation*: with bounded asynchrony
(k-Async, any fixed k) Cohesive Convergence is solvable — by the paper's
algorithm — while with unbounded asynchrony it is not, and the classical
algorithms already fail at very low levels of asynchrony.  This experiment
assembles that message into a single success matrix:

* rows: algorithm (KKNPS at matching k, KKNPS at k=1 run beyond its bound,
  Ando et al., Katreniak);
* columns: scheduler (SSync, 1-Async, k-Async, k-NestA, plus the scripted
  Figure-4 adversary and the Section-7 spiral adversary where applicable);
* cells: did the run preserve every initial visibility edge, and did it
  converge?

Random schedulers cannot certify impossibility, so the adversarial columns
carry the constructive failures (Figure 4 for Ando, Section 7 for any
error-tolerant algorithm), while the stochastic columns show the positive
side of the separation.

The stochastic cells are expressed through the sweep engine
(:mod:`repro.sweeps`): every (algorithm, scheduler, seed) cell entry is a
:class:`~repro.sweeps.RunSpec`, aliased entries (e.g. KKNPS at matched k
and at fixed k=1 under SSync, which are the same run) are deduplicated by
run key, and ``workers > 1`` fans the whole matrix out across processes
with results identical to the serial run.  The adversarial columns replay
scripted timelines and stay outside the sweep engine by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..adversary.ando_counterexample import (
    canonical_instance,
    one_async_schedule,
    replay,
    two_nesta_schedule,
)
from ..algorithms.ando import AndoAlgorithm
from ..algorithms.kknps import KKNPSAlgorithm
from ..analysis.tables import TextTable
from ..sweeps import RunSpec, SweepRunner


@dataclass(frozen=True)
class MatrixCell:
    """One algorithm/scheduler cell of the separation matrix."""

    algorithm: str
    scheduler: str
    runs: int
    cohesion_preserved: int
    converged: int
    worst_final_diameter: float

    @property
    def always_cohesive(self) -> bool:
        return self.cohesion_preserved == self.runs

    @property
    def always_converged(self) -> bool:
        return self.converged == self.runs


@dataclass
class SeparationMatrixResult:
    """All cells of the separation matrix."""

    cells: List[MatrixCell] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            "Separation matrix — cohesion / convergence per algorithm and scheduler",
            [
                "algorithm",
                "scheduler",
                "runs",
                "cohesive",
                "converged",
                "worst final diameter",
            ],
        )
        for cell in self.cells:
            table.add_row(
                cell.algorithm,
                cell.scheduler,
                cell.runs,
                f"{cell.cohesion_preserved}/{cell.runs}",
                f"{cell.converged}/{cell.runs}",
                cell.worst_final_diameter,
            )
        return table

    def cell(self, algorithm: str, scheduler: str) -> Optional[MatrixCell]:
        """Look up one cell by its labels."""
        for cell in self.cells:
            if cell.algorithm == algorithm and cell.scheduler == scheduler:
                return cell
        return None


def _cell_from_rows(
    algorithm_label: str, scheduler_label: str, rows: List[Dict[str, object]]
) -> MatrixCell:
    """Aggregate the sweep rows of one cell into its matrix entry."""
    return MatrixCell(
        algorithm=algorithm_label,
        scheduler=scheduler_label,
        runs=len(rows),
        cohesion_preserved=sum(1 for r in rows if r["cohesion"]),
        converged=sum(1 for r in rows if r["converged"]),
        worst_final_diameter=max(r["final_diameter"] for r in rows),
    )


def run(
    *,
    n_robots: int = 10,
    runs_per_cell: int = 3,
    max_activations: int = 6000,
    epsilon: float = 0.05,
    k: int = 4,
    seed: int = 0,
    workers: int = 1,
    backend: Optional[str] = None,
) -> SeparationMatrixResult:
    """Build the separation matrix.

    The stochastic columns use ``runs_per_cell`` random connected
    configurations of ``n_robots`` robots each; the adversarial columns
    replay the Figure-4 construction.  ``workers > 1`` fans the stochastic
    runs out across a process pool via the sweep engine.
    """
    result = SeparationMatrixResult()

    stochastic_columns = [
        ("ssync", "ssync", 1, None),
        ("1-async", "k-async", 1, 1),
        (f"{k}-async", "k-async", k, k),
        (f"{k}-nesta", "k-nesta", k, k),
    ]
    algorithm_rows: List[Tuple[str, Callable[[Optional[int]], Tuple[Tuple[str, float], ...]]]] = [
        ("kknps(k matched)", lambda k_bound: (("k", k_bound or 1),)),
        ("kknps(k=1 fixed)", lambda k_bound: (("k", 1),)),
        ("ando", lambda k_bound: ()),
        ("katreniak", lambda k_bound: ()),
    ]

    # One run spec per (algorithm row, scheduler column, seed) cell entry.
    # Aliased entries (same spec reached from different cells, e.g. both
    # KKNPS rows under SSync) share a run key and execute only once.
    cell_keys: List[Tuple[str, str, List[str]]] = []
    unique: Dict[str, RunSpec] = {}
    for algorithm_label, params_for in algorithm_rows:
        algorithm = "kknps" if algorithm_label.startswith("kknps") else algorithm_label
        for scheduler_label, scheduler, scheduler_k, k_bound in stochastic_columns:
            keys: List[str] = []
            for run_index in range(runs_per_cell):
                spec = RunSpec(
                    algorithm=algorithm,
                    scheduler=scheduler,
                    workload="random",
                    n_robots=n_robots,
                    seed=seed + run_index,
                    scheduler_k=scheduler_k,
                    algorithm_params=params_for(k_bound),
                    k_bound=k_bound,
                    epsilon=epsilon,
                    max_activations=max_activations,
                )
                unique.setdefault(spec.run_key, spec)
                keys.append(spec.run_key)
            cell_keys.append((algorithm_label, scheduler_label, keys))

    sweep = SweepRunner(list(unique.values()), workers=workers, backend=backend).run()
    rows_by_key = {row["run_key"]: row for row in sweep.rows}
    for algorithm_label, scheduler_label, keys in cell_keys:
        result.cells.append(
            _cell_from_rows(
                algorithm_label, scheduler_label, [rows_by_key[key] for key in keys]
            )
        )

    # Adversarial columns: the scripted Figure-4 timelines.
    instance = canonical_instance()
    for schedule_name, schedule in (
        ("fig4 1-async adversary", one_async_schedule()),
        ("fig4 2-nesta adversary", two_nesta_schedule()),
    ):
        for algorithm_label, algorithm in (
            ("ando", AndoAlgorithm()),
            ("kknps(k matched)", KKNPSAlgorithm(k=1 if "1-async" in schedule_name else 2)),
        ):
            outcome = replay(instance, schedule, algorithm=algorithm, schedule_name=schedule_name)
            result.cells.append(
                MatrixCell(
                    algorithm=algorithm_label,
                    scheduler=schedule_name,
                    runs=1,
                    cohesion_preserved=0 if outcome.visibility_broken else 1,
                    converged=0,
                    worst_final_diameter=outcome.result.final_hull_diameter,
                )
            )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
