"""Experiment T1 — the headline separation matrix (Theorems 3-4 vs Section 7 / Figure 4).

The paper's main message is a *separation*: with bounded asynchrony
(k-Async, any fixed k) Cohesive Convergence is solvable — by the paper's
algorithm — while with unbounded asynchrony it is not, and the classical
algorithms already fail at very low levels of asynchrony.  This experiment
assembles that message into a single success matrix:

* rows: algorithm (KKNPS at matching k, KKNPS at k=1 run beyond its bound,
  Ando et al., Katreniak);
* columns: scheduler (SSync, 1-Async, k-Async, k-NestA, plus the scripted
  Figure-4 adversary and the Section-7 spiral adversary where applicable);
* cells: did the run preserve every initial visibility edge, and did it
  converge?

Random schedulers cannot certify impossibility, so the adversarial columns
carry the constructive failures (Figure 4 for Ando, Section 7 for any
error-tolerant algorithm), while the stochastic columns show the positive
side of the separation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..adversary.ando_counterexample import (
    canonical_instance,
    one_async_schedule,
    replay,
    two_nesta_schedule,
)
from ..algorithms.ando import AndoAlgorithm
from ..algorithms.base import ConvergenceAlgorithm
from ..algorithms.katreniak import KatreniakAlgorithm
from ..algorithms.kknps import KKNPSAlgorithm
from ..analysis.tables import TextTable
from ..engine.simulator import SimulationConfig, run_simulation
from ..schedulers.base import Scheduler
from ..schedulers.kasync import KAsyncScheduler
from ..schedulers.nesta import KNestAScheduler
from ..schedulers.synchronous import SSyncScheduler
from ..workloads.generators import random_connected_configuration


@dataclass(frozen=True)
class MatrixCell:
    """One algorithm/scheduler cell of the separation matrix."""

    algorithm: str
    scheduler: str
    runs: int
    cohesion_preserved: int
    converged: int
    worst_final_diameter: float

    @property
    def always_cohesive(self) -> bool:
        return self.cohesion_preserved == self.runs

    @property
    def always_converged(self) -> bool:
        return self.converged == self.runs


@dataclass
class SeparationMatrixResult:
    """All cells of the separation matrix."""

    cells: List[MatrixCell] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            "Separation matrix — cohesion / convergence per algorithm and scheduler",
            [
                "algorithm",
                "scheduler",
                "runs",
                "cohesive",
                "converged",
                "worst final diameter",
            ],
        )
        for cell in self.cells:
            table.add_row(
                cell.algorithm,
                cell.scheduler,
                cell.runs,
                f"{cell.cohesion_preserved}/{cell.runs}",
                f"{cell.converged}/{cell.runs}",
                cell.worst_final_diameter,
            )
        return table

    def cell(self, algorithm: str, scheduler: str) -> Optional[MatrixCell]:
        """Look up one cell by its labels."""
        for cell in self.cells:
            if cell.algorithm == algorithm and cell.scheduler == scheduler:
                return cell
        return None


def _stochastic_cell(
    algorithm_factory: Callable[[], ConvergenceAlgorithm],
    scheduler_factory: Callable[[], Scheduler],
    *,
    algorithm_label: str,
    scheduler_label: str,
    n_robots: int,
    runs: int,
    seed: int,
    max_activations: int,
    epsilon: float,
    k_bound: Optional[int],
) -> MatrixCell:
    cohesive = 0
    converged = 0
    worst_diameter = 0.0
    for run_index in range(runs):
        configuration = random_connected_configuration(n_robots, seed=seed + run_index)
        result = run_simulation(
            configuration.positions,
            algorithm_factory(),
            scheduler_factory(),
            SimulationConfig(
                max_activations=max_activations,
                convergence_epsilon=epsilon,
                seed=seed + run_index,
                k_bound=k_bound,
            ),
        )
        if result.cohesion_maintained:
            cohesive += 1
        if result.converged:
            converged += 1
        worst_diameter = max(worst_diameter, result.final_hull_diameter)
    return MatrixCell(
        algorithm=algorithm_label,
        scheduler=scheduler_label,
        runs=runs,
        cohesion_preserved=cohesive,
        converged=converged,
        worst_final_diameter=worst_diameter,
    )


def run(
    *,
    n_robots: int = 10,
    runs_per_cell: int = 3,
    max_activations: int = 6000,
    epsilon: float = 0.05,
    k: int = 4,
    seed: int = 0,
) -> SeparationMatrixResult:
    """Build the separation matrix.

    The stochastic columns use ``runs_per_cell`` random connected
    configurations of ``n_robots`` robots each; the adversarial columns
    replay the Figure-4 construction.
    """
    result = SeparationMatrixResult()

    stochastic_columns = [
        ("ssync", lambda: SSyncScheduler(), None),
        ("1-async", lambda: KAsyncScheduler(k=1), 1),
        (f"{k}-async", lambda: KAsyncScheduler(k=k), k),
        (f"{k}-nesta", lambda: KNestAScheduler(k=k), k),
    ]
    algorithm_rows = [
        ("kknps(k matched)", lambda k_bound: KKNPSAlgorithm(k=k_bound or 1)),
        ("kknps(k=1 fixed)", lambda k_bound: KKNPSAlgorithm(k=1)),
        ("ando", lambda k_bound: AndoAlgorithm()),
        ("katreniak", lambda k_bound: KatreniakAlgorithm()),
    ]

    for algorithm_label, algorithm_factory in algorithm_rows:
        for scheduler_label, scheduler_factory, k_bound in stochastic_columns:
            result.cells.append(
                _stochastic_cell(
                    lambda kb=k_bound: algorithm_factory(kb),
                    scheduler_factory,
                    algorithm_label=algorithm_label,
                    scheduler_label=scheduler_label,
                    n_robots=n_robots,
                    runs=runs_per_cell,
                    seed=seed,
                    max_activations=max_activations,
                    epsilon=epsilon,
                    k_bound=k_bound,
                )
            )

    # Adversarial columns: the scripted Figure-4 timelines.
    instance = canonical_instance()
    for schedule_name, schedule in (
        ("fig4 1-async adversary", one_async_schedule()),
        ("fig4 2-nesta adversary", two_nesta_schedule()),
    ):
        for algorithm_label, algorithm in (
            ("ando", AndoAlgorithm()),
            ("kknps(k matched)", KKNPSAlgorithm(k=1 if "1-async" in schedule_name else 2)),
        ):
            outcome = replay(instance, schedule, algorithm=algorithm, schedule_name=schedule_name)
            result.cells.append(
                MatrixCell(
                    algorithm=algorithm_label,
                    scheduler=schedule_name,
                    runs=1,
                    cohesion_preserved=0 if outcome.visibility_broken else 1,
                    converged=0,
                    worst_final_diameter=outcome.result.final_hull_diameter,
                )
            )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
