"""Experiment L68 — Lemmas 6-8 (Figures 16-17): congregation bounds.

Monte-Carlo verification of the concrete inequalities used in the
congregation argument:

* Lemma 6: a robot whose visibility lower bound is at least ``zeta * r_H``
  ends any ``xi``-rigid move at distance at least
  ``(zeta / (80 (1+1/xi)^{1/2}))^4 r_H`` from a critical point ``A_H`` of
  the hull's bounding circle;
* Lemma 8: if every robot is outside the ``d``-neighbourhood of ``A_H``,
  the hull perimeter is smaller by at least ``d^3 / (4 r_H^2)``.

The experiment samples random connected configurations, evaluates the
paper's algorithm on exact snapshots, and counts violations (expected:
none) together with the observed safety margins, plus the hull-nesting
invariant (``CH_{t+} ⊆ CH_t``) along short simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..algorithms.kknps import KKNPSAlgorithm
from ..analysis.congregation import (
    check_lemma6_on_configuration,
    check_lemma8_on_configuration,
)
from ..analysis.tables import TextTable
from ..engine.simulator import SimulationConfig, run_simulation
from ..geometry.hull import hulls_nested
from ..schedulers.kasync import KAsyncScheduler
from ..workloads.generators import random_connected_configuration


@dataclass
class CongregationLemmasResult:
    """Counts and margins for the Lemma-6 / Lemma-8 / hull-nesting checks."""

    lemma6_checks: int = 0
    lemma6_violations: int = 0
    lemma6_min_margin: float = float("inf")
    lemma8_checks: int = 0
    lemma8_violations: int = 0
    lemma8_min_margin: float = float("inf")
    hull_nesting_checks: int = 0
    hull_nesting_violations: int = 0

    def to_table(self) -> TextTable:
        table = TextTable(
            "Lemmas 6-8 (Figs. 16-17) — congregation bounds, Monte-Carlo verification",
            ["check", "samples", "violations", "min margin"],
        )
        table.add_row("lemma 6 (distance from A_H)", self.lemma6_checks, self.lemma6_violations,
                      self.lemma6_min_margin if self.lemma6_checks else "-")
        table.add_row("lemma 8 (perimeter decrease)", self.lemma8_checks, self.lemma8_violations,
                      self.lemma8_min_margin if self.lemma8_checks else "-")
        table.add_row("hull nesting CH_{t+} ⊆ CH_t", self.hull_nesting_checks,
                      self.hull_nesting_violations, "-")
        return table

    @property
    def all_hold(self) -> bool:
        """No violation in any of the three checks."""
        return (
            self.lemma6_violations == 0
            and self.lemma8_violations == 0
            and self.hull_nesting_violations == 0
        )


def run(
    *,
    configurations: int = 20,
    n_robots: int = 10,
    xi: float = 0.5,
    k: int = 2,
    seed: int = 0,
    nesting_runs: int = 3,
    nesting_activations: int = 300,
) -> CongregationLemmasResult:
    """Run all three checks over random connected configurations."""
    rng = np.random.default_rng(seed)
    result = CongregationLemmasResult()

    for index in range(configurations):
        configuration = random_connected_configuration(n_robots, seed=seed + index)
        positions = list(configuration.positions)

        for check in check_lemma6_on_configuration(
            positions,
            configuration.visibility_range,
            k=k,
            xi=xi,
            progress_fraction=float(rng.uniform(xi, 1.0)),
        ):
            result.lemma6_checks += 1
            if not check.satisfied:
                result.lemma6_violations += 1
            margin = check.distance_after - check.bound
            result.lemma6_min_margin = min(result.lemma6_min_margin, margin)

        d = 0.05 * configuration.hull_radius()
        lemma8 = check_lemma8_on_configuration(positions, d)
        if lemma8 is not None:
            result.lemma8_checks += 1
            if not lemma8.satisfied:
                result.lemma8_violations += 1
            result.lemma8_min_margin = min(
                result.lemma8_min_margin, lemma8.decrease - lemma8.bound
            )

    # Hull nesting along simulated runs: the convex hull of the sampled
    # configurations must be (weakly) nested over time.
    for run_index in range(nesting_runs):
        configuration = random_connected_configuration(n_robots, seed=seed + 1000 + run_index)
        sim = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=k),
            KAsyncScheduler(k=k),
            SimulationConfig(
                max_activations=nesting_activations,
                convergence_epsilon=1e-6,
                stop_at_convergence=False,
                seed=seed + run_index,
                k_bound=k,
            ),
        )
        samples = sim.metrics.samples
        diameters = [s.hull_diameter for s in samples]
        for earlier, later in zip(diameters, diameters[1:]):
            result.hull_nesting_checks += 1
            if later > earlier + 1e-9:
                result.hull_nesting_violations += 1
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
