"""Experiment C1 — congregation under k-Async: scaling in n and in k, plus ablations.

Section 5 of the paper proves the algorithm converges to a point under
k-Async from any connected configuration.  This experiment measures that
convergence empirically:

* a sweep over the number of robots ``n`` (activations and epochs needed
  to bring the hull diameter below ``epsilon``);
* a sweep over the asynchrony bound ``k`` (the ``1/k`` scaling of the safe
  regions slows each activation's progress roughly linearly in ``k``);
* the ablations called out in DESIGN.md: the safe-region radius divisor
  (paper value 8) and the close/distant threshold (paper value ``V_Y/2``).

Every run also reports whether cohesion (preservation of the initial
visibility edges) held, and how close any initial edge ever came to the
visibility range (the safety margin).

The grid is expressed through the sweep engine (:mod:`repro.sweeps`):
each measurement is a picklable :class:`~repro.sweeps.RunSpec`, so the
whole experiment can fan out across worker processes via ``workers > 1``
with results identical to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.tables import TextTable
from ..sweeps import RunSpec, SweepRunner


@dataclass(frozen=True)
class ConvergenceRow:
    """One convergence measurement."""

    label: str
    n_robots: int
    k: int
    converged: bool
    cohesion: bool
    activations: int
    epochs: Optional[int]
    final_diameter: float
    max_initial_edge_stretch: float


@dataclass
class ConvergenceResult:
    """All rows of the convergence experiment."""

    epsilon: float
    rows: List[ConvergenceRow] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            f"Congregation under k-Async (hull diameter threshold {self.epsilon})",
            [
                "variant",
                "n",
                "k",
                "converged",
                "cohesive",
                "activations",
                "epochs",
                "final diameter",
                "max edge stretch / V",
            ],
        )
        for row in self.rows:
            table.add_row(
                row.label,
                row.n_robots,
                row.k,
                row.converged,
                row.cohesion,
                row.activations,
                row.epochs if row.epochs is not None else "-",
                row.final_diameter,
                row.max_initial_edge_stretch,
            )
        return table

    @property
    def all_cohesive(self) -> bool:
        """Every paper-parameter run preserved the initial edges."""
        return all(row.cohesion for row in self.rows if row.label.startswith("kknps"))


def _spec(
    *,
    algorithm_params: Tuple[Tuple[str, float], ...],
    n_robots: int,
    k: int,
    seed: int,
    epsilon: float,
    max_activations: int,
) -> RunSpec:
    """One KKNPS-under-k-Async measurement as a sweep run spec."""
    return RunSpec(
        algorithm="kknps",
        scheduler="k-async",
        workload="random",
        n_robots=n_robots,
        seed=seed,
        scheduler_k=k,
        algorithm_params=algorithm_params,
        k_bound=k,
        epsilon=epsilon,
        max_activations=max_activations,
    )


def run(
    *,
    n_values: tuple = (5, 10, 15),
    k_values: tuple = (1, 2, 4),
    epsilon: float = 0.05,
    max_activations: int = 20000,
    seed: int = 0,
    include_ablations: bool = True,
    workers: int = 1,
    backend: Optional[str] = None,
) -> ConvergenceResult:
    """Run the n-sweep, the k-sweep and (optionally) the ablations.

    ``workers > 1`` executes the measurements across a process pool via the
    sweep engine; ``backend`` selects another execution backend by name
    (e.g. ``"work-stealing"``).  The rows are identical to the serial run.
    """
    measurements: List[Tuple[str, RunSpec]] = []

    for n in n_values:
        measurements.append(
            (
                "kknps (paper)",
                _spec(
                    algorithm_params=(("k", 2),),
                    n_robots=n,
                    k=2,
                    seed=seed + n,
                    epsilon=epsilon,
                    max_activations=max_activations,
                ),
            )
        )
    for k in k_values:
        measurements.append(
            (
                "kknps (paper)",
                _spec(
                    algorithm_params=(("k", k),),
                    n_robots=10,
                    k=k,
                    seed=seed + 100 + k,
                    epsilon=epsilon,
                    max_activations=max_activations,
                ),
            )
        )
    if include_ablations:
        # Ablation 1: drop the 1/k scaling while the scheduler runs at k=4.
        measurements.append(
            (
                "ablation: no 1/k scaling",
                _spec(
                    algorithm_params=(("k", 1),),
                    n_robots=10,
                    k=4,
                    seed=seed + 200,
                    epsilon=epsilon,
                    max_activations=max_activations,
                ),
            )
        )
        # Ablation 2: a more aggressive safe-region radius (divisor 4 instead of 8).
        measurements.append(
            (
                "ablation: radius divisor 4",
                _spec(
                    algorithm_params=(("k", 2), ("radius_divisor", 4.0)),
                    n_robots=10,
                    k=2,
                    seed=seed + 300,
                    epsilon=epsilon,
                    max_activations=max_activations,
                ),
            )
        )
        # Ablation 3: a different close/distant threshold (0.25 V_Y instead of 0.5 V_Y).
        measurements.append(
            (
                "ablation: close threshold 0.25",
                _spec(
                    algorithm_params=(("k", 2), ("close_fraction", 0.25)),
                    n_robots=10,
                    k=2,
                    seed=seed + 400,
                    epsilon=epsilon,
                    max_activations=max_activations,
                ),
            )
        )

    sweep = SweepRunner(
        [spec for _, spec in measurements], workers=workers, backend=backend
    ).run()

    result = ConvergenceResult(epsilon=epsilon)
    for (label, spec), row in zip(measurements, sweep.rows):
        result.rows.append(
            ConvergenceRow(
                label=label,
                n_robots=row["n_robots"],
                k=spec.scheduler_k,
                converged=row["converged"],
                cohesion=row["cohesion"],
                activations=row["activations"],
                epochs=row["epochs"],
                final_diameter=row["final_diameter"],
                max_initial_edge_stretch=row["max_edge_stretch"] / row["visibility_range"],
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
