"""Experiment S2 — Section 1.2.2 baselines: CoG vs GCM under unlimited visibility.

The paper's related-work discussion contrasts the Centre-of-Gravity
algorithm of Cohen and Peleg (``O(n^2)`` rounds to halve the hull
diameter, lower bound ``Omega(n)``) with the Go-To-The-Centre-Of-Minbox
algorithm of Cord-Landwehr et al. (asymptotically optimal; a constant
number of rounds with axis agreement).  This experiment measures the
rounds needed to halve the hull diameter under SSync subset activation for
both algorithms as the number of robots grows — the shape to reproduce is
"GCM at least as fast as CoG at every n".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..algorithms.cog import CenterOfGravityAlgorithm
from ..algorithms.gcm import MinboxAlgorithm
from ..analysis.tables import TextTable
from ..engine.convergence import rounds_to_halve
from ..engine.simulator import SimulationConfig, run_simulation
from ..schedulers.synchronous import FSyncScheduler, SSyncScheduler
from ..workloads.generators import random_disk_configuration


@dataclass(frozen=True)
class BaselineRow:
    """Rounds-to-halve measurement for one algorithm and robot count."""

    algorithm: str
    scheduler: str
    n_robots: int
    rounds_to_halve: Optional[float]
    converged: bool


@dataclass
class BaselinesResult:
    """All rows of the unlimited-visibility baseline comparison."""

    rows: List[BaselineRow] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            "Section 1.2.2 baselines — rounds to halve the hull diameter "
            "(unlimited visibility)",
            ["algorithm", "scheduler", "n", "rounds to halve", "converged"],
        )
        for row in self.rows:
            table.add_row(
                row.algorithm,
                row.scheduler,
                row.n_robots,
                row.rounds_to_halve if row.rounds_to_halve is not None else "-",
                row.converged,
            )
        return table

    def halving_rounds(self, algorithm: str, scheduler: str = "ssync") -> List[float]:
        """The rounds-to-halve series of one algorithm, ordered by n."""
        rows = sorted(
            (r for r in self.rows if r.algorithm == algorithm and r.scheduler == scheduler),
            key=lambda r: r.n_robots,
        )
        return [r.rounds_to_halve for r in rows if r.rounds_to_halve is not None]

    @property
    def gcm_never_slower_than_cog(self) -> bool:
        """The qualitative shape: GCM halves at least as fast as CoG at every n."""
        cog = self.halving_rounds("cog")
        gcm = self.halving_rounds("gcm")
        return len(cog) == len(gcm) and all(g <= c + 1e-9 for g, c in zip(gcm, cog))


def run(
    *,
    n_values: tuple = (4, 8, 16, 32),
    seed: int = 0,
    max_rounds: int = 400,
    epsilon: float = 1e-3,
    include_fsync: bool = False,
) -> BaselinesResult:
    """Measure rounds-to-halve for CoG and GCM under SSync (and optionally FSync).

    Under FSync both algorithms are degenerate-fast (all robots jump to a
    common target in one round), so the informative comparison — the one
    the cited O(n^2) vs Theta(n) analyses are about — uses semi-synchronous
    subset activation.
    """
    result = BaselinesResult()
    disk_radius = 5.0
    schedulers = [("ssync", lambda: SSyncScheduler(activation_probability=0.5))]
    if include_fsync:
        schedulers.append(("fsync", lambda: FSyncScheduler()))
    for scheduler_label, scheduler_factory in schedulers:
        for algorithm_label, algorithm_factory in (
            ("cog", lambda: CenterOfGravityAlgorithm()),
            ("gcm", lambda: MinboxAlgorithm()),
        ):
            for n in n_values:
                configuration = random_disk_configuration(
                    n, disk_radius=disk_radius, visibility_range=2.0 * disk_radius + 1.0, seed=seed + n
                )
                sim = run_simulation(
                    configuration.positions,
                    algorithm_factory(),
                    scheduler_factory(),
                    SimulationConfig(
                        visibility_range=configuration.visibility_range,
                        max_activations=max_rounds * n,
                        convergence_epsilon=epsilon,
                        seed=seed + n,
                    ),
                )
                result.rows.append(
                    BaselineRow(
                        algorithm=algorithm_label,
                        scheduler=scheduler_label,
                        n_robots=n,
                        rounds_to_halve=rounds_to_halve(sim.metrics.samples),
                        converged=sim.converged,
                    )
                )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
