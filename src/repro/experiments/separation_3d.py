"""Experiment X2 — the separation's adversarial side, lifted to 3-space.

The separation matrix (experiment T1) pits the planar algorithm against
scripted and unbounded adversaries; experiment X1 shows the 3D rule
*converging* under fair stochastic schedulers.  This experiment closes
the remaining corner — ROADMAP's "one experiment file away" item — by
driving the 3D rule through the same two adversarial lenses:

* **Scripted k-Async overlap timelines.**  A hand-built schedule per
  workload in which one victim robot holds a long activity interval per
  epoch while every other robot activates exactly ``j`` times inside it
  — certified *j*-Async (and, for ``j > 1``, certified *not*
  ``(j-1)``-Async) by :func:`repro.schedulers.scripted.validate_k_async`.
  Matched rows run ``kknps3(k=j)`` under the ``j``-async script: the
  paper's safe-ball analysis promises cohesion, and the rows check it.
  Over-bound rows run ``kknps3(k=1)`` under the same ``j > 1`` scripts
  — the algorithm's asynchrony promise is violated, so cohesion is
  *measured*, not asserted.

* **The Section-7 spiral, embedded in the z = 0 plane.**  Unbounded
  asynchrony defeats every natural algorithm in the plane; the planar
  spiral construction lifts verbatim to 3-space because coplanar
  directions fit an open half-*space* iff they fit an open
  half-*plane*.  The row computes the move the 3D rule is forced to
  plan from the hub's initial (embedded) snapshot, replays the planar
  sliver-flattening adversary, and checks that the realised hub move
  breaks the ``(X_A, X_B)`` visibility edge — i.e. the 3D rule inherits
  the planar impossibility, so the k-Async bound is *necessary* in
  3-space too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..adversary.impossibility import hub_snapshot, required_zeta
from ..adversary.sliver import flatten_spiral
from ..adversary.spiral import build_spiral
from ..analysis.tables import TextTable
from ..model.types import Activation
from ..schedulers.scripted import ScriptedScheduler, validate_k_async
from ..spatial3d.kernel3 import AsyncSimulation3Config, run_simulation3_async
from ..spatial3d.kknps3 import KKNPS3Algorithm
from ..spatial3d.workloads3 import lattice_configuration3, line_configuration3


@dataclass(frozen=True)
class Scripted3DRow:
    """One scripted-schedule 3D run (matched or over-bound asynchrony)."""

    workload: str
    n_robots: int
    schedule_j: int
    algorithm_k: int
    certified_j_async: bool
    strictly_j_async: bool
    cohesion: bool
    activations: int
    final_diameter: float

    @property
    def matched(self) -> bool:
        """The algorithm's asynchrony promise covers the schedule."""
        return self.algorithm_k >= self.schedule_j


@dataclass(frozen=True)
class SpiralLift3DRow:
    """The Section-7 spiral driven through the 3D rule's forced hub move."""

    psi: float
    n_robots: int
    zeta: float
    required_zeta: float
    hub_move_z: float
    lens_violations: int
    separation: float
    visibility_broken: bool

    @property
    def construction_is_legal(self) -> bool:
        """Every adversarial tail move stayed inside the neighbour lens."""
        return self.lens_violations == 0

    @property
    def move_is_planar(self) -> bool:
        """The 3D rule's hub move stayed in the embedding plane exactly."""
        return self.hub_move_z == 0.0


@dataclass
class Separation3DResult:
    """All rows of the 3D separation experiment."""

    epoch_duration: float
    scripted_rows: List[Scripted3DRow] = field(default_factory=list)
    spiral_row: Optional[SpiralLift3DRow] = None

    def to_table(self) -> TextTable:
        table = TextTable(
            "X2 — 3D separation: scripted k-Async overlap vs the lifted spiral",
            ["part", "workload", "n", "sched j", "algo k", "matched",
             "certified", "cohesive / broken", "activations", "final diameter"],
        )
        for row in self.scripted_rows:
            table.add_row(
                "scripted", row.workload, row.n_robots, row.schedule_j,
                row.algorithm_k, row.matched,
                row.certified_j_async and (row.schedule_j == 1 or row.strictly_j_async),
                f"cohesive={row.cohesion}", row.activations, row.final_diameter,
            )
        if self.spiral_row is not None:
            row = self.spiral_row
            table.add_row(
                "spiral", f"spiral(psi={row.psi})", row.n_robots, "unbounded",
                1, False, row.construction_is_legal and row.move_is_planar,
                f"edge broken={row.visibility_broken}", "-",
                round(row.separation, 4),
            )
        return table

    @property
    def matched_rows_cohesive(self) -> bool:
        """Every certified matched-asynchrony row preserved cohesion."""
        return all(row.cohesion for row in self.scripted_rows if row.matched)

    @property
    def spiral_breaks_visibility(self) -> bool:
        """The lifted spiral forces the 3D rule to break the hub edge."""
        return self.spiral_row is not None and self.spiral_row.visibility_broken


def overlap_schedule(
    n_robots: int,
    j: int,
    *,
    victim: int = 0,
    epochs: int = 3,
    epoch_duration: float = 1.0,
) -> List[Activation]:
    """An explicit ``j``-Async overlap timeline.

    Each epoch the victim Looks at the epoch start and then moves for 90%
    of the epoch; every other robot activates exactly ``j`` times with
    look times staggered strictly inside the victim's activity interval
    (a small per-robot phase keeps simultaneous Looks apart).  The result
    is ``j``-Async — the victim's interval contains exactly ``j``
    activations of each other robot — and, for ``j > 1``, not
    ``(j-1)``-Async.
    """
    if n_robots < 2:
        raise ValueError("an overlap schedule needs at least two robots")
    if j < 1:
        raise ValueError("the asynchrony parameter j must be at least 1")
    script: List[Activation] = []
    span = 0.9 * epoch_duration
    for epoch in range(epochs):
        t0 = epoch * epoch_duration
        script.append(
            Activation(robot_id=victim, look_time=t0, move_duration=span)
        )
        for robot in range(n_robots):
            if robot == victim:
                continue
            phase = 0.4 * (robot + 1) / (n_robots + 1)
            for i in range(j):
                script.append(
                    Activation(
                        robot_id=robot,
                        look_time=t0 + span * (i + 0.3 + phase) / j,
                        move_duration=0.5 * span / j,
                    )
                )
    return sorted(script, key=lambda a: a.look_time)


def _run_scripted(
    workload: str,
    positions,
    schedule_j: int,
    algorithm_k: int,
    *,
    epochs: int,
    epoch_duration: float,
    seed: int,
) -> Scripted3DRow:
    script = overlap_schedule(
        len(positions), schedule_j, epochs=epochs, epoch_duration=epoch_duration
    )
    certified = validate_k_async(script, schedule_j)
    strictly = schedule_j > 1 and not validate_k_async(script, schedule_j - 1)
    result = run_simulation3_async(
        positions,
        KKNPS3Algorithm(k=algorithm_k),
        ScriptedScheduler(script),
        AsyncSimulation3Config(
            seed=seed,
            max_activations=len(script) + 1,
            stop_at_convergence=False,
            rotate_frames=False,
        ),
    )
    return Scripted3DRow(
        workload=workload,
        n_robots=len(positions),
        schedule_j=schedule_j,
        algorithm_k=algorithm_k,
        certified_j_async=certified,
        strictly_j_async=strictly,
        cohesion=result.cohesion_maintained,
        activations=result.activations_processed,
        final_diameter=result.final_diameter,
    )


def lifted_spiral_row(
    psi: float = 0.3,
    *,
    visibility_range: float = 1.0,
    max_passes_per_stage: int = 60,
) -> SpiralLift3DRow:
    """Run the Section-7 construction against the 3D rule's forced hub move.

    The spiral (and the whole flattening adversary) lives in the plane;
    the hub's snapshot embeds as ``z = 0`` rows and the 3D rule's
    half-space decision restricted to coplanar directions coincides with
    the planar half-plane decision, so the planned move is the planar
    forced move with a zero third component — verified exactly, not up
    to tolerance.
    """
    spiral = build_spiral(psi, visibility_range=visibility_range)
    snapshot = hub_snapshot(spiral, reveal_range=True)
    embedded = np.array(
        [(p.x, p.y, 0.0) for p in snapshot.neighbours], dtype=float
    )
    move = KKNPS3Algorithm(k=1).compute_array(embedded)
    zeta = math.hypot(float(move[0]), float(move[1]))

    flattening = flatten_spiral(spiral, max_passes_per_stage=max_passes_per_stage)
    hub_final_x = spiral.hub.x + float(move[0])
    hub_final_y = spiral.hub.y + float(move[1])
    b_final = flattening.b_final
    separation = math.hypot(hub_final_x - b_final.x, hub_final_y - b_final.y)
    return SpiralLift3DRow(
        psi=psi,
        n_robots=spiral.n_robots,
        zeta=zeta,
        required_zeta=required_zeta(spiral, flattening),
        hub_move_z=float(move[2]),
        lens_violations=flattening.lens_violations,
        separation=separation,
        visibility_broken=separation > visibility_range + 1e-9,
    )


def run(
    *,
    psi: float = 0.3,
    j_values: Tuple[int, ...] = (1, 2, 4),
    epochs: int = 3,
    epoch_duration: float = 1.0,
    seed: int = 0,
    max_passes_per_stage: int = 60,
) -> Separation3DResult:
    """Run both halves of the 3D separation experiment.

    For every workload and every ``j`` in ``j_values`` a matched row runs
    ``kknps3(k=j)`` under the certified ``j``-async script; for ``j > 1``
    an over-bound row re-runs the same script against ``kknps3(k=1)``.
    The spiral row then lifts the Section-7 construction.
    """
    workloads = [
        ("line3", list(line_configuration3(6, spacing=0.8).positions)),
        ("lattice3", list(lattice_configuration3(2, spacing=0.55).positions)),
    ]
    result = Separation3DResult(epoch_duration=epoch_duration)
    for workload, positions in workloads:
        for j in j_values:
            result.scripted_rows.append(
                _run_scripted(
                    workload, positions, j, j,
                    epochs=epochs, epoch_duration=epoch_duration, seed=seed,
                )
            )
            if j > 1:
                result.scripted_rows.append(
                    _run_scripted(
                        workload, positions, j, 1,
                        epochs=epochs, epoch_duration=epoch_duration, seed=seed,
                    )
                )
    result.spiral_row = lifted_spiral_row(
        psi, max_passes_per_stage=max_passes_per_stage
    )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
