"""Experiment F3 — Figure 3: safe-region comparison.

Figure 3 of the paper contrasts the shape of the safe region a robot uses
with respect to one neighbour under Ando et al., Katreniak, and the
paper's scheme.  This experiment quantifies the comparison on a sweep of
observer/neighbour separations: the area of each region, the largest move
toward the neighbour it allows, and the containment relations the paper's
discussion relies on (the paper's region is much smaller than both
predecessors and is defined for *distant* neighbours only, independent of
the actual distance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..algorithms.safe_regions import (
    ando_safe_region_local,
    katreniak_safe_region_local,
    kknps_safe_region_local,
)
from ..analysis.tables import TextTable
from ..geometry.point import Point


@dataclass(frozen=True)
class SafeRegionRow:
    """Safe-region measures for one observer/neighbour separation."""

    separation: float
    ando_radius: float
    ando_area: float
    katreniak_area: float
    kknps_radius: float
    kknps_area: float
    kknps_max_step: float
    kknps_inside_ando: bool


@dataclass
class Figure3Result:
    """All rows of the Figure-3 comparison plus the scaling sweep over k."""

    visibility_range: float
    rows: List[SafeRegionRow] = field(default_factory=list)
    k_sweep: List[tuple] = field(default_factory=list)

    def to_table(self) -> TextTable:
        """Figure-3 style comparison table."""
        table = TextTable(
            "Figure 3 — safe regions of Ando / Katreniak / KKNPS (V = "
            f"{self.visibility_range})",
            [
                "|X0 Y0| / V",
                "Ando radius",
                "Ando area",
                "Katreniak area",
                "KKNPS radius",
                "KKNPS area",
                "KKNPS max step",
                "KKNPS inside Ando",
            ],
        )
        for row in self.rows:
            table.add_row(
                row.separation / self.visibility_range,
                row.ando_radius,
                row.ando_area,
                row.katreniak_area,
                row.kknps_radius,
                row.kknps_area,
                row.kknps_max_step,
                row.kknps_inside_ando,
            )
        return table

    def k_table(self) -> TextTable:
        """How the 1/k scaling shrinks the paper's safe region."""
        table = TextTable(
            "Figure 3 (cont.) — 1/k scaling of the KKNPS safe region",
            ["k", "radius / V", "max planned move / V"],
        )
        for k, radius, max_move in self.k_sweep:
            table.add_row(k, radius, max_move)
        return table


def _katreniak_area(neighbour: Point, v_lower: float, *, samples: int = 40_000, seed: int = 0) -> float:
    """Monte-Carlo area of Katreniak's two-disk union region."""
    region = katreniak_safe_region_local(neighbour, v_lower)
    radius = max(d.center.norm() + d.radius for d in region.disks())
    rng = np.random.default_rng(seed)
    box = 2.0 * radius
    points = rng.uniform(-radius, radius, size=(samples, 2))
    # Batched union membership: one locator query instead of `samples`
    # scalar contains() calls, verdict-for-verdict identical.
    hits = int(np.count_nonzero(region.contains_array(points[:, 0], points[:, 1])))
    return hits / samples * box * box


def run(
    *,
    visibility_range: float = 1.0,
    separations: tuple = (0.55, 0.7, 0.85, 1.0),
    k_values: tuple = (1, 2, 4, 8),
    area_samples: int = 20_000,
) -> Figure3Result:
    """Run the Figure-3 comparison.

    ``separations`` are observer/neighbour distances as fractions of ``V``;
    only values above 1/2 are used because the paper's region is defined
    for distant neighbours.
    """
    v = visibility_range
    result = Figure3Result(visibility_range=v)
    for fraction in separations:
        gap = fraction * v
        neighbour = Point(gap, 0.0)
        # The observer's farthest neighbour is assumed to be this one, so V_Y = gap.
        ando = ando_safe_region_local(neighbour, v)
        kknps = kknps_safe_region_local(neighbour, gap)
        katreniak_area = _katreniak_area(neighbour, gap, samples=area_samples)
        result.rows.append(
            SafeRegionRow(
                separation=gap,
                ando_radius=ando.radius,
                ando_area=ando.area(),
                katreniak_area=katreniak_area,
                kknps_radius=kknps.radius,
                kknps_area=kknps.area(),
                kknps_max_step=kknps.center.norm() + kknps.radius,
                kknps_inside_ando=ando.contains_disk(kknps),
            )
        )
    for k in k_values:
        scaled = kknps_safe_region_local(Point(v, 0.0), v, alpha=1.0 / k)
        result.k_sweep.append((k, scaled.radius / v, (scaled.center.norm() + scaled.radius) / v))
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print(result.to_table().render())
    print()
    print(result.k_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
