"""Experiment L12 — Lemmas 1-2 (Figures 5-9): reachable-region containment.

Lemma 1: a robot making ``j <= k`` successive moves, each confined to its
current ``1/k``-scaled safe region with respect to a *stationary*
neighbour, stays inside ``R^{j V/(8k)}_{Y0}(X0, X0)``.

Lemma 2 (base-region extension): the same holds when the neighbour is in
the process of moving from ``X0`` to ``X1`` and each move of the observer
is confined to the scaled safe region with respect to the neighbour's
*current* position.

This experiment verifies both statements by Monte-Carlo simulation of
adversarial move sequences, and also runs a negative control showing the
containment is not an artefact of slack: when the per-move regions are
inflated well beyond the paper's radius, escapes from the same target
region do occur.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.tables import TextTable
from ..geometry.point import Point
from ..geometry.region import ReachableRegion, offset_disk


@dataclass
class RegionContainmentResult:
    """Counts of containment checks for one experimental arm."""

    label: str
    trials: int
    violations: int
    max_overshoot: float

    @property
    def violation_rate(self) -> float:
        """Fraction of trials that escaped the target region."""
        return self.violations / self.trials if self.trials else 0.0


@dataclass
class LemmaRegionsResult:
    """Outcome of the Lemma-1/Lemma-2 Monte-Carlo verification."""

    lemma1: RegionContainmentResult
    lemma2: RegionContainmentResult
    inflated_control: RegionContainmentResult

    def to_table(self) -> TextTable:
        table = TextTable(
            "Lemmas 1-2 (Figs. 5-9) — Monte-Carlo containment of scaled-safe-region moves",
            ["arm", "trials", "violations", "violation rate", "max overshoot"],
        )
        for arm in (self.lemma1, self.lemma2, self.inflated_control):
            table.add_row(arm.label, arm.trials, arm.violations, arm.violation_rate, arm.max_overshoot)
        return table

    @property
    def lemmas_hold(self) -> bool:
        """Both lemma arms produced zero violations."""
        return self.lemma1.violations == 0 and self.lemma2.violations == 0


def _simulate_moves(
    rng: np.random.Generator,
    *,
    k: int,
    j: int,
    v_y: float,
    x_start: Point,
    x_end: Point,
    radius_multiplier: float = 1.0,
) -> Tuple[Point, ReachableRegion]:
    """Make ``j`` adversarial scaled-safe-region moves and return the endpoint."""
    y0 = Point(0.0, 0.0)
    step_radius = radius_multiplier * v_y / (8.0 * k)
    # The neighbour progresses monotonically from x_start to x_end; the
    # fractions at which the observer sees it are adversarial.
    ts = np.sort(rng.random(j))
    position = y0
    for t in ts:
        observed = x_start.lerp(x_end, float(t))
        region = offset_disk(position, observed, step_radius)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        radius = region.radius * math.sqrt(rng.random())
        # Bias toward the boundary to make escapes as likely as possible.
        if rng.random() < 0.6:
            radius = region.radius
        position = region.center + Point.polar(radius, angle)
    target = ReachableRegion.of(y0, x_start, x_end, j * v_y / (8.0 * k))
    return position, target


def _run_arm(
    label: str,
    *,
    trials: int,
    seed: int,
    stationary: bool,
    radius_multiplier: float = 1.0,
    max_k: int = 6,
) -> RegionContainmentResult:
    rng = np.random.default_rng(seed)
    violations = 0
    max_overshoot = 0.0
    for _ in range(trials):
        k = int(rng.integers(1, max_k + 1))
        j = int(rng.integers(1, k + 1))
        v_y = float(rng.uniform(0.5, 1.0))
        # The neighbour is distant: farther than V_Y / 2.
        start_distance = float(rng.uniform(0.5 * v_y + 1e-6, v_y))
        x_start = Point.polar(start_distance, rng.uniform(0.0, 2.0 * math.pi))
        if stationary:
            x_end = x_start
        else:
            # The neighbour's own move is bounded by V/8 <= V_Y/8 in the paper.
            move = Point.polar(v_y / 8.0 * rng.random(), rng.uniform(0.0, 2.0 * math.pi))
            x_end = x_start + move
        endpoint, region = _simulate_moves(
            rng,
            k=k,
            j=j,
            v_y=v_y,
            x_start=x_start,
            x_end=x_end,
            radius_multiplier=radius_multiplier,
        )
        if not region.contains(endpoint, eps=1e-7):
            violations += 1
            overshoot = (
                region.distance_to_core_center(endpoint) - region.radius
            )
            max_overshoot = max(max_overshoot, overshoot)
    return RegionContainmentResult(
        label=label, trials=trials, violations=violations, max_overshoot=max_overshoot
    )


def run(*, trials: int = 400, seed: int = 0) -> LemmaRegionsResult:
    """Run the three arms: Lemma 1, Lemma 2 and the inflated negative control."""
    lemma1 = _run_arm("lemma 1 (stationary neighbour)", trials=trials, seed=seed, stationary=True)
    lemma2 = _run_arm("lemma 2 (moving neighbour)", trials=trials, seed=seed + 1, stationary=False)
    control = _run_arm(
        "control (per-move radius x4)",
        trials=trials,
        seed=seed + 2,
        stationary=False,
        radius_multiplier=4.0,
    )
    return LemmaRegionsResult(lemma1=lemma1, lemma2=lemma2, inflated_control=control)


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
