"""Experiment X1 — Section 6.3.2: the algorithm generalised to three dimensions.

The paper sketches the 3D generalisation (ball-shaped safe regions) and
leaves the details to future work; this experiment exercises the concrete
instantiation in ``repro.spatial3d``: cohesive convergence of the 3D rule
under semi-synchronous subset activation with non-rigid motion, across
several 3D workload shapes and swarm sizes.

The grid is expressed through the sweep engine (:mod:`repro.sweeps`) via
the 3D registries: the ``kknps3`` algorithm, the ``ssync3`` round
discipline (independent 60% activation subsets), the ``nonrigid-50``
error model (``xi = 0.5`` truncation) and the ``line3`` / ``lattice3`` /
``random3`` workloads.  Each measurement is a picklable
:class:`~repro.sweeps.RunSpec` executed by the array-native 3D round
engine, so the whole experiment fans out across worker processes
(``workers > 1``) with rows identical to the serial run.  The same
workloads and disciplines are reachable from the command line via
``python -m repro sweep --algorithms kknps3 ...``; the ``k > 1``
ablation rows, however, need explicit run specs (as built here) — like
``kknps`` under the planar ``ssync``, a grid-expanded ``kknps3`` runs
its base ``k = 1`` formulation under the round disciplines, since they
promise no asynchrony bound to match ``k`` against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.tables import TextTable
from ..sweeps import RunSpec, SweepRunner


@dataclass(frozen=True)
class Extension3DRow:
    """One 3D convergence run."""

    workload: str
    n_robots: int
    k: int
    converged: bool
    cohesion: bool
    rounds: int
    final_diameter: float


@dataclass
class Extension3DResult:
    """All rows of the 3D-extension experiment."""

    epsilon: float
    rows: List[Extension3DRow] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            f"Section 6.3.2 extension — cohesive convergence in 3D (epsilon {self.epsilon})",
            ["workload", "n", "k", "converged", "cohesive", "rounds", "final diameter"],
        )
        for row in self.rows:
            table.add_row(
                row.workload, row.n_robots, row.k, row.converged, row.cohesion,
                row.rounds, row.final_diameter,
            )
        return table

    @property
    def all_converged_cohesively(self) -> bool:
        """Every 3D run converged while preserving the initial edges."""
        return all(row.converged and row.cohesion for row in self.rows)


def run(
    *,
    epsilon: float = 0.05,
    max_rounds: int = 3000,
    seed: int = 0,
    k_values: tuple = (1, 2),
    random_sizes: tuple = (8, 16),
    workers: int = 1,
    backend: Optional[str] = None,
) -> Extension3DResult:
    """Run the 3D convergence grid through the sweep engine.

    ``workers > 1`` executes the measurements across a process pool;
    ``backend`` selects another execution backend by name.  The rows are
    identical to the serial run.
    """
    workloads: List[Tuple[str, int]] = [("line3", 6), ("lattice3", 8)]
    workloads.extend(("random3", n) for n in random_sizes)

    specs = [
        RunSpec(
            algorithm="kknps3",
            scheduler="ssync3",
            workload=workload,
            n_robots=n,
            # One seed per (workload, n), shared across k: the k-ablation
            # compares runs on identical initial configurations, with the
            # run key disambiguated by the algorithm/scheduler k fields.
            seed=seed + n,
            error_model="nonrigid-50",
            scheduler_k=k,
            algorithm_params=(("k", k),),
            epsilon=epsilon,
            max_activations=max_rounds,
        )
        for k in k_values
        for workload, n in workloads
    ]
    sweep = SweepRunner(specs, workers=workers, backend=backend).run()

    result = Extension3DResult(epsilon=epsilon)
    for row in sweep.rows:
        result.rows.append(
            Extension3DRow(
                workload=row["workload"],
                n_robots=row["n_robots"],
                k=row["scheduler_k"],
                converged=row["converged"],
                cohesion=row["cohesion"],
                rounds=row["rounds"],
                final_diameter=row["final_diameter"],
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
