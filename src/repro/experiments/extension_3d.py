"""Experiment X1 — Section 6.3.2: the algorithm generalised to three dimensions.

The paper sketches the 3D generalisation (ball-shaped safe regions) and
leaves the details to future work; this experiment exercises the concrete
instantiation in ``repro.spatial3d`` across *both* 3D engines of the
unified kernel:

* the **round grid** — the historical Section-6.3.2 setting: the
  ``ssync3`` round discipline (independent 60% activation subsets) with
  non-rigid motion (``nonrigid-50``, xi = 0.5 truncation);
* the **k-async grid** — the paper's headline scenario family opened in
  3-space by the continuous-time kernel: the ``kasync3`` scheduler
  (bounded asynchrony, overlapping activity intervals, interpolated
  mid-move Looks) on the same workloads, seeds and error model.

Both grids are expressed through the sweep engine (:mod:`repro.sweeps`)
as picklable :class:`~repro.sweeps.RunSpec` lists, so the whole
experiment fans out across worker processes (``workers > 1``) with rows
identical to the serial run.  The same grids are reachable from the
command line via ``python -m repro sweep --algorithms kknps3
--schedulers ssync3 kasync3 ...``; the ``k > 1`` round-grid ablation
rows, however, need explicit run specs (as built here) — a grid-expanded
``kknps3`` runs its base ``k = 1`` formulation under the round
disciplines, since they promise no asynchrony bound to match ``k``
against (``kasync3`` rows *are* grid-expressible: the bound is the
scheduler's ``k``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.tables import TextTable
from ..sweeps import RunSpec, SweepRunner


@dataclass(frozen=True)
class Extension3DRow:
    """One 3D convergence run (round or continuous-time)."""

    workload: str
    n_robots: int
    scheduler: str
    k: int
    converged: bool
    cohesion: bool
    rounds: Optional[int]
    activations: int
    final_diameter: float


@dataclass
class Extension3DResult:
    """All rows of the 3D-extension experiment."""

    epsilon: float
    rows: List[Extension3DRow] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            f"Section 6.3.2 extension — cohesive convergence in 3D (epsilon {self.epsilon})",
            ["workload", "n", "scheduler", "k", "converged", "cohesive",
             "rounds", "activations", "final diameter"],
        )
        for row in self.rows:
            table.add_row(
                row.workload, row.n_robots, row.scheduler, row.k, row.converged,
                row.cohesion, row.rounds if row.rounds is not None else "-",
                row.activations, row.final_diameter,
            )
        return table

    @property
    def all_converged_cohesively(self) -> bool:
        """Every 3D run converged while preserving the initial edges."""
        return all(row.converged and row.cohesion for row in self.rows)

    def rows_for(self, scheduler: str) -> List[Extension3DRow]:
        """The rows of one scheduler (``"ssync3"`` or ``"kasync3"``)."""
        return [row for row in self.rows if row.scheduler == scheduler]


def run(
    *,
    epsilon: float = 0.05,
    max_rounds: int = 3000,
    max_activations: Optional[int] = None,
    seed: int = 0,
    k_values: tuple = (1, 2),
    random_sizes: tuple = (8, 16),
    workers: int = 1,
    backend: Optional[str] = None,
) -> Extension3DResult:
    """Run the 3D convergence grids through the sweep engine.

    ``max_rounds`` bounds the round-grid runs; ``max_activations`` bounds
    the k-async runs (default: ``max_rounds``, which is generous — a
    round activates ~n robots).  ``workers > 1`` executes the
    measurements across a process pool; ``backend`` selects another
    execution backend by name.  The rows are identical to the serial run.
    """
    workloads: List[Tuple[str, int]] = [("line3", 6), ("lattice3", 8)]
    workloads.extend(("random3", n) for n in random_sizes)
    if max_activations is None:
        max_activations = max_rounds

    # One seed per (workload, n), shared across k and schedulers: the
    # ablations compare runs on identical initial configurations, with
    # the run key disambiguated by the scheduler and k fields.
    specs = [
        RunSpec(
            algorithm="kknps3",
            scheduler="ssync3",
            workload=workload,
            n_robots=n,
            seed=seed + n,
            error_model="nonrigid-50",
            scheduler_k=k,
            algorithm_params=(("k", k),),
            epsilon=epsilon,
            max_activations=max_rounds,
        )
        for k in k_values
        for workload, n in workloads
    ]
    specs.extend(
        RunSpec(
            algorithm="kknps3",
            scheduler="kasync3",
            workload=workload,
            n_robots=n,
            seed=seed + n,
            error_model="nonrigid-50",
            scheduler_k=k,
            algorithm_params=(("k", k),),
            k_bound=k,
            epsilon=epsilon,
            max_activations=max_activations,
        )
        for k in k_values
        for workload, n in workloads
    )
    sweep = SweepRunner(specs, workers=workers, backend=backend).run()

    result = Extension3DResult(epsilon=epsilon)
    for row in sweep.rows:
        result.rows.append(
            Extension3DRow(
                workload=row["workload"],
                n_robots=row["n_robots"],
                scheduler=row["scheduler"],
                k=row["scheduler_k"],
                converged=row["converged"],
                cohesion=row["cohesion"],
                rounds=row["rounds"],
                activations=row["activations"],
                final_diameter=row["final_diameter"],
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
