"""Experiment X1 — Section 6.3.2: the algorithm generalised to three dimensions.

The paper sketches the 3D generalisation (ball-shaped safe regions) and
leaves the details to future work; this experiment exercises the concrete
instantiation in ``repro.spatial3d``: cohesive convergence of the 3D rule
under semi-synchronous subset activation with non-rigid motion, across
several 3D workload shapes and swarm sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..analysis.tables import TextTable
from ..spatial3d import (
    KKNPS3Algorithm,
    Simulation3Config,
    lattice_configuration3,
    line_configuration3,
    random_connected_configuration3,
    run_simulation3,
)


@dataclass(frozen=True)
class Extension3DRow:
    """One 3D convergence run."""

    workload: str
    n_robots: int
    k: int
    converged: bool
    cohesion: bool
    rounds: int
    final_diameter: float


@dataclass
class Extension3DResult:
    """All rows of the 3D-extension experiment."""

    epsilon: float
    rows: List[Extension3DRow] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            f"Section 6.3.2 extension — cohesive convergence in 3D (epsilon {self.epsilon})",
            ["workload", "n", "k", "converged", "cohesive", "rounds", "final diameter"],
        )
        for row in self.rows:
            table.add_row(
                row.workload, row.n_robots, row.k, row.converged, row.cohesion,
                row.rounds, row.final_diameter,
            )
        return table

    @property
    def all_converged_cohesively(self) -> bool:
        """Every 3D run converged while preserving the initial edges."""
        return all(row.converged and row.cohesion for row in self.rows)


def run(
    *,
    epsilon: float = 0.05,
    max_rounds: int = 3000,
    activation_probability: float = 0.6,
    xi: float = 0.5,
    seed: int = 0,
    k_values: tuple = (1, 2),
    random_sizes: tuple = (8, 16),
) -> Extension3DResult:
    """Run the 3D convergence grid."""
    result = Extension3DResult(epsilon=epsilon)

    workloads = [
        ("line", line_configuration3(6, spacing=0.7)),
        ("lattice", lattice_configuration3(2, spacing=0.6)),
    ]
    for n in random_sizes:
        workloads.append((f"random({n})", random_connected_configuration3(n, seed=seed + n)))

    for k in k_values:
        for name, configuration in workloads:
            outcome = run_simulation3(
                configuration.positions,
                KKNPS3Algorithm(k=k),
                Simulation3Config(
                    visibility_range=configuration.visibility_range,
                    max_rounds=max_rounds,
                    convergence_epsilon=epsilon,
                    activation_probability=activation_probability,
                    xi=xi,
                    seed=seed + k,
                ),
            )
            result.rows.append(
                Extension3DRow(
                    workload=name,
                    n_robots=len(configuration),
                    k=k,
                    converged=outcome.converged,
                    cohesion=outcome.cohesion_maintained,
                    rounds=outcome.rounds_executed,
                    final_diameter=outcome.final_diameter,
                )
            )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
