"""Registry of every reproduced experiment, keyed by the DESIGN.md experiment id."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from . import (
    baselines_unlimited,
    congregation_lemmas,
    convergence,
    disconnected,
    error_tolerance,
    extension_3d,
    fig3_safe_regions,
    fig4_ando_failure,
    impossibility,
    lemma5_chain,
    lemma_regions,
    separation_3d,
    separation_matrix,
    unlimited_async,
)


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproducible artifact of the paper."""

    experiment_id: str
    paper_artifact: str
    description: str
    run: Callable[..., object]
    bench: str


REGISTRY: Dict[str, ExperimentEntry] = {
    entry.experiment_id: entry
    for entry in [
        ExperimentEntry(
            "F3",
            "Figure 3",
            "Safe-region comparison: Ando vs Katreniak vs KKNPS",
            fig3_safe_regions.run,
            "benchmarks/bench_fig3_safe_regions.py",
        ),
        ExperimentEntry(
            "F4",
            "Figure 4",
            "Ando separation under 1-Async / 2-NestA; KKNPS contrast",
            fig4_ando_failure.run,
            "benchmarks/bench_fig4_ando_failure.py",
        ),
        ExperimentEntry(
            "L12",
            "Lemmas 1-2, Figures 5-9",
            "Reachable-region containment (Monte Carlo)",
            lemma_regions.run,
            "benchmarks/bench_lemma_regions.py",
        ),
        ExperimentEntry(
            "L5",
            "Lemma 5, Figures 10-14",
            "Doomed-engagement adversarial search and chain invariant",
            lemma5_chain.run,
            "benchmarks/bench_lemma5_chain.py",
        ),
        ExperimentEntry(
            "T1",
            "Theorems 3-4 vs Figure 4 / Section 7",
            "Separation matrix: algorithm x scheduler success table",
            separation_matrix.run,
            "benchmarks/bench_separation_matrix.py",
        ),
        ExperimentEntry(
            "C1",
            "Section 5",
            "Congregation under k-Async: scaling in n and k, ablations",
            convergence.run,
            "benchmarks/bench_convergence.py",
        ),
        ExperimentEntry(
            "L68",
            "Lemmas 6-8, Figures 16-17",
            "Congregation bounds and hull nesting (Monte Carlo)",
            congregation_lemmas.run,
            "benchmarks/bench_congregation_lemmas.py",
        ),
        ExperimentEntry(
            "E1",
            "Section 6.1, Figure 18",
            "Error tolerance: distance, skew, quadratic vs linear motion error",
            error_tolerance.run,
            "benchmarks/bench_error_tolerance.py",
        ),
        ExperimentEntry(
            "I1",
            "Section 7, Figures 19-22",
            "Impossibility construction under unbounded Async",
            impossibility.run,
            "benchmarks/bench_impossibility.py",
        ),
        ExperimentEntry(
            "S2",
            "Section 1.2.2",
            "Unlimited-visibility baselines: CoG vs GCM halving rounds",
            baselines_unlimited.run,
            "benchmarks/bench_baselines_unlimited.py",
        ),
        ExperimentEntry(
            "U1",
            "Section 6.2",
            "KKNPS under unbounded Async with V above the initial diameter",
            unlimited_async.run,
            "benchmarks/bench_unlimited_async.py",
        ),
        ExperimentEntry(
            "D1",
            "Section 6.3.1",
            "Disconnected initial configurations: per-component convergence",
            disconnected.run,
            "benchmarks/bench_disconnected.py",
        ),
        ExperimentEntry(
            "X1",
            "Section 6.3.2",
            "Three-dimensional extension: cohesive convergence in 3D",
            extension_3d.run,
            "benchmarks/bench_extension_3d.py",
        ),
        ExperimentEntry(
            "X2",
            "Section 6.3.2 x Section 7",
            "3D separation: scripted k-Async overlap vs the lifted spiral",
            separation_3d.run,
            "benchmarks/bench_separation_3d.py",
        ),
    ]
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, in registration order."""
    return list(REGISTRY)


def get(experiment_id: str) -> ExperimentEntry:
    """Look up one experiment; raises ``KeyError`` with the known ids listed."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise KeyError(f"unknown experiment {experiment_id!r}; known ids: {known}") from None
