"""Command-line entry point: ``python -m repro.experiments [EXPERIMENT_ID ...]``.

With no arguments, lists the registered experiments; with one or more ids
(e.g. ``F4 I1``), runs each experiment with its default parameters and
prints its table(s).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .registry import REGISTRY, experiment_ids, get


def _print_listing() -> None:
    width = max(len(i) for i in experiment_ids())
    print("Registered experiments (run with: python -m repro.experiments <id> ...):\n")
    for entry in REGISTRY.values():
        print(f"  {entry.experiment_id.ljust(width)}  {entry.paper_artifact}: {entry.description}")


def _render(result: object) -> str:
    for attribute in ("headline_table",):
        if hasattr(result, attribute):
            pieces = [getattr(result, attribute)()]
            for extra in ("hub_move_table", "witness_table"):
                if hasattr(result, extra):
                    pieces.append(getattr(result, extra)().render())
            return "\n\n".join(pieces)
    pieces = []
    if hasattr(result, "to_table"):
        pieces.append(result.to_table().render())
    for extra in ("k_table", "figure18_table"):
        if hasattr(result, extra):
            pieces.append(getattr(result, extra)().render())
    return "\n\n".join(pieces) if pieces else repr(result)


def main(argv: List[str] | None = None) -> int:
    """Run the requested experiments and print their tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the reproduction experiments by id (see DESIGN.md).",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids, e.g. F4 I1 T1")
    parser.add_argument("--list", action="store_true", help="list the registered experiments")
    args = parser.parse_args(argv)

    if args.list or not args.ids:
        _print_listing()
        return 0

    for experiment_id in args.ids:
        entry = get(experiment_id)
        print(f"=== {entry.experiment_id} — {entry.paper_artifact}: {entry.description} ===\n")
        result = entry.run()
        print(_render(result))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
