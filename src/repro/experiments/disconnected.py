"""Experiment D1 — Section 6.3.1: disconnected initial configurations.

The paper notes that when the initial configuration is not connected, the
algorithm still makes every connected component converge to a single point
(components can only get closer to themselves, and the safe regions keep
each component's robots from wandering toward robots they cannot see).
This experiment places several mutually invisible clusters, runs the
algorithm under k-Async, and checks that (i) every component converges to
its own point, (ii) the component structure of the visibility graph never
loses an edge, and (iii) distinct components converge to distinct points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..algorithms.kknps import KKNPSAlgorithm
from ..analysis.tables import TextTable
from ..engine.simulator import SimulationConfig, run_simulation
from ..geometry.point import Point, max_pairwise_distance
from ..model.configuration import Configuration
from ..schedulers.kasync import KAsyncScheduler
from ..workloads.generators import random_connected_configuration


@dataclass(frozen=True)
class ComponentOutcome:
    """Per-component convergence outcome."""

    component_index: int
    size: int
    final_diameter: float
    converged: bool


@dataclass
class DisconnectedResult:
    """Outcome of the disconnected-start experiment."""

    epsilon: float
    n_components: int
    cohesion_maintained: bool = True
    components: List[ComponentOutcome] = field(default_factory=list)
    min_inter_component_distance: float = 0.0

    def to_table(self) -> TextTable:
        table = TextTable(
            f"Section 6.3.1 — disconnected initial configuration (epsilon {self.epsilon})",
            ["component", "robots", "final diameter", "converged"],
        )
        for outcome in self.components:
            table.add_row(
                outcome.component_index, outcome.size, outcome.final_diameter, outcome.converged
            )
        return table

    @property
    def every_component_converged(self) -> bool:
        """Each connected component contracted below the threshold."""
        return all(outcome.converged for outcome in self.components)

    @property
    def components_remain_separated(self) -> bool:
        """Distinct components converged to distinct points (never merged)."""
        return self.min_inter_component_distance > self.epsilon


def run(
    *,
    n_components: int = 3,
    robots_per_component: int = 6,
    component_gap: float = 5.0,
    epsilon: float = 0.05,
    k: int = 2,
    max_activations: int = 4000,
    seed: int = 0,
) -> DisconnectedResult:
    """Run the disconnected-start experiment."""
    if component_gap <= 2.0:
        raise ValueError("components must start well beyond the visibility range")

    positions: List[Point] = []
    membership: List[int] = []
    for component in range(n_components):
        cluster = random_connected_configuration(robots_per_component, seed=seed + component)
        offset = Point(component * component_gap, (component % 2) * component_gap)
        for p in cluster.positions:
            positions.append(p + offset)
            membership.append(component)

    result_run = run_simulation(
        positions,
        KKNPSAlgorithm(k=k),
        KAsyncScheduler(k=k),
        SimulationConfig(
            max_activations=max_activations,
            convergence_epsilon=epsilon / 10.0,  # global convergence never happens
            stop_at_convergence=False,
            seed=seed,
            k_bound=k,
            record_every=5,
        ),
    )

    final = result_run.final_configuration
    result = DisconnectedResult(
        epsilon=epsilon,
        n_components=n_components,
        cohesion_maintained=result_run.cohesion_maintained,
    )
    component_points: List[List[Point]] = [[] for _ in range(n_components)]
    for index, component in enumerate(membership):
        component_points[component].append(final[index])
    for component, points in enumerate(component_points):
        diameter = max_pairwise_distance(points)
        result.components.append(
            ComponentOutcome(
                component_index=component,
                size=len(points),
                final_diameter=diameter,
                converged=diameter <= epsilon,
            )
        )
    inter = float("inf")
    for a in range(n_components):
        for b in range(a + 1, n_components):
            for p in component_points[a]:
                for q in component_points[b]:
                    inter = min(inter, p.distance_to(q))
    result.min_inter_component_distance = inter if inter != float("inf") else 0.0
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print(result.to_table().render())
    print("cohesion maintained:", result.cohesion_maintained)
    print("components remain separated:", result.components_remain_separated)


if __name__ == "__main__":  # pragma: no cover
    main()
