"""Experiment F4 — Figure 4: Ando's algorithm separates under 1-Async / 2-NestA.

Replays the paper's five-robot counterexample under both adversarial
timelines with Ando et al.'s algorithm (visibility breaks) and, as the
contrast the separation result rests on, with the paper's algorithm run at
the matching asynchrony bound (visibility is preserved).  A randomised
search over the instance family shows the failure is robust, not a
knife-edge artefact of the canonical coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..adversary.ando_counterexample import (
    AndoFailureOutcome,
    canonical_instance,
    one_async_schedule,
    replay,
    run_figure4,
    search_failure_instances,
    two_nesta_schedule,
)
from ..algorithms.kknps import KKNPSAlgorithm
from ..analysis.tables import TextTable


@dataclass
class Figure4Result:
    """Outcomes of the Figure-4 replays, per algorithm and timeline."""

    outcomes: List[AndoFailureOutcome] = field(default_factory=list)
    search_best_separation: Optional[float] = None
    search_breaking_instances: int = 0
    search_candidates: int = 0

    def to_table(self) -> TextTable:
        """Figure-4 outcome table."""
        table = TextTable(
            "Figure 4 — final |X Y| separation under the adversarial timelines (V = 1)",
            ["algorithm", "timeline", "final separation", "separation / V", "visibility broken"],
        )
        for outcome in self.outcomes:
            table.add_row(
                outcome.algorithm_name,
                outcome.schedule_name,
                outcome.final_separation,
                outcome.separation_ratio,
                outcome.visibility_broken,
            )
        return table

    @property
    def ando_breaks_both_timelines(self) -> bool:
        """The headline claim of Figure 4."""
        ando = [o for o in self.outcomes if o.algorithm_name.startswith("ando")]
        return len(ando) >= 2 and all(o.visibility_broken for o in ando)

    @property
    def kknps_preserves_both_timelines(self) -> bool:
        """The contrast: the paper's algorithm survives the same timelines."""
        ours = [o for o in self.outcomes if o.algorithm_name.startswith("kknps")]
        return len(ours) >= 2 and all(not o.visibility_broken for o in ours)


def run(*, with_search: bool = False, search_candidates: int = 200, seed: int = 0) -> Figure4Result:
    """Replay Figure 4 with Ando's algorithm and with the paper's algorithm."""
    result = Figure4Result()
    instance = canonical_instance()

    for name, outcome in run_figure4(instance=instance).items():
        result.outcomes.append(outcome)

    # The paper's algorithm, run at the asynchrony bound matching each
    # timeline (k = 1 for the 1-Async timeline, k = 2 for the 2-NestA one),
    # keeps the pair within visibility range under the very same schedules.
    result.outcomes.append(
        replay(
            instance,
            one_async_schedule(),
            algorithm=KKNPSAlgorithm(k=1),
            schedule_name="1-async",
        )
    )
    result.outcomes.append(
        replay(
            instance,
            two_nesta_schedule(),
            algorithm=KKNPSAlgorithm(k=2),
            schedule_name="2-nesta",
        )
    )

    if with_search:
        best, breaking = search_failure_instances(
            n_candidates=search_candidates, seed=seed, schedule_name="1-async"
        )
        result.search_best_separation = best.final_separation if best else None
        result.search_breaking_instances = breaking
        result.search_candidates = search_candidates
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run(with_search=True)
    print(result.to_table().render())
    if result.search_best_separation is not None:
        print(
            f"\nrandomised family search: {result.search_breaking_instances} of "
            f"{result.search_candidates} sampled instances broke visibility; "
            f"best separation {result.search_best_separation:.4f}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
