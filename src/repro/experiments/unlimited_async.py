"""Experiment U1 — Section 6.2: unbounded visibility makes full Async easy.

The paper notes that when the visibility radius ``V`` exceeds the diameter
of the initial configuration, the hull-diminishing property keeps every
pair of robots mutually visible forever, and the congregation argument
alone then shows that the (1-Async-formulated) algorithm converges under a
*fully asynchronous* scheduler, without multiplicity detection.  This
experiment runs exactly that setting: KKNPS with ``k = 1`` under an
unbounded Async scheduler on configurations whose diameter is below ``V``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..algorithms.kknps import KKNPSAlgorithm
from ..analysis.tables import TextTable
from ..engine.simulator import SimulationConfig, run_simulation
from ..schedulers.kasync import AsyncScheduler
from ..workloads.generators import random_disk_configuration


@dataclass(frozen=True)
class UnlimitedAsyncRow:
    """One fully-asynchronous run with V above the initial diameter."""

    n_robots: int
    initial_diameter: float
    visibility_range: float
    converged: bool
    cohesion: bool
    all_pairs_always_visible: bool
    final_diameter: float


@dataclass
class UnlimitedAsyncResult:
    """All rows of the unlimited-visibility Async experiment."""

    rows: List[UnlimitedAsyncRow] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            "Section 6.2 — KKNPS (k=1) under unbounded Async when V exceeds the "
            "initial diameter",
            [
                "n",
                "initial diameter",
                "V",
                "converged",
                "cohesive",
                "all pairs stayed visible",
                "final diameter",
            ],
        )
        for row in self.rows:
            table.add_row(
                row.n_robots,
                row.initial_diameter,
                row.visibility_range,
                row.converged,
                row.cohesion,
                row.all_pairs_always_visible,
                row.final_diameter,
            )
        return table

    @property
    def all_converged_cohesively(self) -> bool:
        """Every run converged with every pair mutually visible throughout."""
        return all(r.converged and r.cohesion and r.all_pairs_always_visible for r in self.rows)


def run(
    *,
    n_values: tuple = (5, 10, 20),
    seed: int = 0,
    max_activations: int = 30000,
    epsilon: float = 0.05,
    diameter_margin: float = 1.25,
) -> UnlimitedAsyncResult:
    """Run KKNPS (k=1) under unbounded Async with V above the initial diameter."""
    result = UnlimitedAsyncResult()
    for n in n_values:
        disk_radius = 1.0
        configuration = random_disk_configuration(
            n, disk_radius=disk_radius, visibility_range=2.0 * disk_radius, seed=seed + n
        )
        initial_diameter = configuration.hull_diameter()
        visibility_range = diameter_margin * max(initial_diameter, 1e-6)
        sim = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=1),
            AsyncScheduler(),
            SimulationConfig(
                visibility_range=visibility_range,
                max_activations=max_activations,
                convergence_epsilon=epsilon,
                seed=seed + n,
            ),
        )
        # With V above the initial diameter and a hull-diminishing rule, every
        # pair must be a visibility edge in every sampled configuration; the
        # cohesion flag already tracks the initial (complete) edge set, so the
        # two predicates coincide, but we compute the pairwise check anyway.
        all_visible = all(
            sample.initial_edges_preserved for sample in sim.metrics.samples
        )
        result.rows.append(
            UnlimitedAsyncRow(
                n_robots=n,
                initial_diameter=initial_diameter,
                visibility_range=visibility_range,
                converged=sim.converged,
                cohesion=sim.cohesion_maintained,
                all_pairs_always_visible=all_visible,
                final_diameter=sim.final_hull_diameter,
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
