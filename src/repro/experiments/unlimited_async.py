"""Experiment U1 — Section 6.2: unbounded visibility makes full Async easy.

The paper notes that when the visibility radius ``V`` exceeds the diameter
of the initial configuration, the hull-diminishing property keeps every
pair of robots mutually visible forever, and the congregation argument
alone then shows that the (1-Async-formulated) algorithm converges under a
*fully asynchronous* scheduler, without multiplicity detection.  This
experiment runs exactly that setting: KKNPS with ``k = 1`` under an
unbounded Async scheduler on configurations whose diameter is below ``V``.

The n-sweep is expressed through the sweep engine (:mod:`repro.sweeps`):
each size is a picklable :class:`~repro.sweeps.RunSpec` over the
``disk-unbounded`` workload, whose visibility range is derived from the
realised configuration (``margin`` times its hull diameter — the sweep's
visibility-range axis carries the margin).  With ``workers > 1`` the
sizes fan out across worker processes with rows identical to the serial
run.  Because the initial visibility graph is complete and the cohesion
metric samples every processed activation, the row's cohesion flag *is*
the all-pairs-always-visible predicate this experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.tables import TextTable
from ..sweeps import RunSpec, SweepRunner


@dataclass(frozen=True)
class UnlimitedAsyncRow:
    """One fully-asynchronous run with V above the initial diameter."""

    n_robots: int
    initial_diameter: float
    visibility_range: float
    converged: bool
    cohesion: bool
    all_pairs_always_visible: bool
    final_diameter: float


@dataclass
class UnlimitedAsyncResult:
    """All rows of the unlimited-visibility Async experiment."""

    rows: List[UnlimitedAsyncRow] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            "Section 6.2 — KKNPS (k=1) under unbounded Async when V exceeds the "
            "initial diameter",
            [
                "n",
                "initial diameter",
                "V",
                "converged",
                "cohesive",
                "all pairs stayed visible",
                "final diameter",
            ],
        )
        for row in self.rows:
            table.add_row(
                row.n_robots,
                row.initial_diameter,
                row.visibility_range,
                row.converged,
                row.cohesion,
                row.all_pairs_always_visible,
                row.final_diameter,
            )
        return table

    @property
    def all_converged_cohesively(self) -> bool:
        """Every run converged with every pair mutually visible throughout."""
        return all(r.converged and r.cohesion and r.all_pairs_always_visible for r in self.rows)


def run(
    *,
    n_values: tuple = (5, 10, 20),
    seed: int = 0,
    max_activations: int = 30000,
    epsilon: float = 0.05,
    diameter_margin: float = 1.25,
    workers: int = 1,
    backend: Optional[str] = None,
) -> UnlimitedAsyncResult:
    """Run KKNPS (k=1) under unbounded Async with V above the initial diameter.

    ``workers > 1`` executes the sizes across a process pool via the sweep
    engine; ``backend`` selects another execution backend by name.  The
    rows are identical to the serial run.
    """
    specs = [
        RunSpec(
            algorithm="kknps",
            scheduler="async",
            workload="disk-unbounded",
            n_robots=n,
            seed=seed + n,
            scheduler_k=1,
            algorithm_params=(("k", 1),),
            epsilon=epsilon,
            max_activations=max_activations,
            visibility_range=diameter_margin,
        )
        for n in n_values
    ]
    sweep = SweepRunner(specs, workers=workers, backend=backend).run()

    result = UnlimitedAsyncResult()
    for row in sweep.rows:
        # The initial visibility graph is complete (V exceeds the initial
        # diameter) and the cohesion metric checks the initial edge set at
        # every sampled activation, so the cohesion flag is exactly the
        # all-pairs-always-visible predicate.
        result.rows.append(
            UnlimitedAsyncRow(
                n_robots=row["n_robots"],
                initial_diameter=row["initial_diameter"],
                visibility_range=row["visibility_range"],
                converged=row["converged"],
                cohesion=row["cohesion"],
                all_pairs_always_visible=row["cohesion"],
                final_diameter=row["final_diameter"],
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
