"""Experiments: one module per reproduced figure/claim of the paper.

See ``repro.experiments.registry`` for the index mapping experiment ids
(as used in DESIGN.md and EXPERIMENTS.md) to run functions and benches.
"""

from . import (
    baselines_unlimited,
    congregation_lemmas,
    convergence,
    disconnected,
    error_tolerance,
    extension_3d,
    fig3_safe_regions,
    fig4_ando_failure,
    impossibility,
    lemma5_chain,
    lemma_regions,
    separation_3d,
    separation_matrix,
    unlimited_async,
)
from .registry import REGISTRY, ExperimentEntry, experiment_ids, get

__all__ = [
    "REGISTRY",
    "ExperimentEntry",
    "baselines_unlimited",
    "congregation_lemmas",
    "convergence",
    "disconnected",
    "error_tolerance",
    "extension_3d",
    "experiment_ids",
    "fig3_safe_regions",
    "fig4_ando_failure",
    "get",
    "impossibility",
    "lemma5_chain",
    "lemma_regions",
    "separation_3d",
    "separation_matrix",
    "unlimited_async",
]
