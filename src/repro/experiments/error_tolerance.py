"""Experiment E1 — Section 6.1 / Figure 18: error tolerance of the algorithm.

The paper claims the algorithm tolerates

* bounded *relative* distance-measurement error (after scaling the
  perceived range by ``1/(1+delta)``),
* bounded-skew symmetric distortion of the local compass, and
* motion error that grows *quadratically* with the distance travelled,

while *linear* relative motion error defeats every convergence algorithm
(Figure 18: two robots at exactly visibility range can be pushed apart
when the lateral error exceeds ``tan`` of the commanded angle).

This experiment measures all four claims: full simulated runs under each
error model (cohesion + convergence), and the explicit Figure-18 two-robot
threshold sweep for linear motion error.

The error-model grid is expressed through the sweep engine
(:mod:`repro.sweeps`): each run is a picklable
:class:`~repro.sweeps.RunSpec` over the named registries — the
``k-async-half`` scheduler and the ``distance-5-nonrigid`` /
``skew-10-nonrigid`` / ``quad-motion`` / ``linear-60`` error models are
exactly the objects this experiment used to build inline — so the whole
grid can fan out across worker processes (``workers > 1``) with rows
identical to the serial run.  The Figure-18 construction stays a direct
simulation: its three-robot geometry depends on the commanded angle and
is not a named workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..algorithms.kknps import KKNPSAlgorithm
from ..analysis.tables import TextTable
from ..engine.simulator import SimulationConfig, run_simulation
from ..geometry.point import Point
from ..model.errors import MotionModel
from ..schedulers.synchronous import FSyncScheduler
from ..sweeps import RunSpec, SweepRunner


@dataclass(frozen=True)
class ErrorToleranceRow:
    """One error-model run."""

    label: str
    cohesion: bool
    converged: bool
    final_diameter: float


@dataclass(frozen=True)
class Figure18Row:
    """One point of the Figure-18 linear-motion-error threshold sweep."""

    error_coefficient: float
    commanded_angle: float
    final_separation: float
    separated: bool


@dataclass
class ErrorToleranceResult:
    """All rows of the error-tolerance experiment."""

    runs: List[ErrorToleranceRow] = field(default_factory=list)
    figure18: List[Figure18Row] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            "Section 6.1 — full runs under each error model (KKNPS, 4-Async)",
            ["error model", "cohesive", "converged", "final diameter"],
        )
        for row in self.runs:
            table.add_row(row.label, row.cohesion, row.converged, row.final_diameter)
        return table

    def figure18_table(self) -> TextTable:
        table = TextTable(
            "Figure 18 — linear relative motion error vs separation of a "
            "visibility-threshold pair",
            ["error coefficient", "tan(commanded angle)", "final separation / V", "separated"],
        )
        for row in self.figure18:
            table.add_row(
                row.error_coefficient,
                math.tan(row.commanded_angle),
                row.final_separation,
                row.separated,
            )
        return table

    @property
    def tolerated_models_all_cohesive(self) -> bool:
        """Distance error, skew and quadratic motion error never broke cohesion."""
        tolerated = [r for r in self.runs if not r.label.startswith("linear")]
        return all(r.cohesion for r in tolerated)

    @property
    def linear_error_separates_threshold_pair(self) -> bool:
        """Figure 18: some linear-error coefficient above tan(angle) separates the pair."""
        return any(row.separated for row in self.figure18)


def _spec(
    *,
    error_model: str,
    algorithm_params: Tuple[Tuple[str, float], ...],
    n_robots: int,
    seed: int,
    max_activations: int,
    epsilon: float,
    k: int,
) -> RunSpec:
    """One error-model measurement as a sweep run spec.

    ``k-async-half`` is the registered KAsyncScheduler with progress
    fraction (0.5, 1.0) — the scheduler this experiment always ran under.
    """
    return RunSpec(
        algorithm="kknps",
        scheduler="k-async-half",
        workload="random",
        n_robots=n_robots,
        seed=seed,
        error_model=error_model,
        scheduler_k=k,
        algorithm_params=algorithm_params,
        k_bound=k,
        epsilon=epsilon,
        max_activations=max_activations,
    )


def _figure18_sweep(
    error_coefficients: tuple, *, commanded_angle: float = math.pi / 3.0
) -> List[Figure18Row]:
    """The two-robot (plus one helper) linear-motion-error construction.

    Robots ``B`` and ``C`` sit at exactly visibility range; a helper robot
    above ``B`` makes ``B``'s commanded move point at ``commanded_angle``
    away from the ``B -> C`` direction.  With adversarial lateral motion
    error of relative size ``c``, the realised move acquires a component
    *away* from ``C`` once ``c`` exceeds ``tan(commanded_angle)``'s
    reciprocal geometry, and the pair separates.
    """
    rows: List[Figure18Row] = []
    v = 1.0
    b = Point(0.0, 0.0)
    c = Point(v, 0.0)
    helper = b + Point.polar(v, math.pi / 2.0 + (math.pi / 2.0 - commanded_angle))
    for coefficient in error_coefficients:
        positions = [b, c, helper]
        result = run_simulation(
            positions,
            KKNPSAlgorithm(k=1),
            FSyncScheduler(),
            SimulationConfig(
                max_activations=6,
                convergence_epsilon=1e-9,
                stop_at_convergence=False,
                motion=MotionModel(
                    xi=1.0, deviation="linear", coefficient=coefficient, bias="adversarial"
                ),
                seed=0,
            ),
        )
        final = result.final_configuration
        separation = final[0].distance_to(final[1])
        rows.append(
            Figure18Row(
                error_coefficient=coefficient,
                commanded_angle=commanded_angle,
                final_separation=separation,
                separated=separation > v + 1e-9,
            )
        )
    return rows


#: The error-model grid: display label, registry name, seed offset and the
#: extra KKNPS tolerance parameters each model is paired with (Section 6.1:
#: the algorithm is told the error bound it must tolerate).
ERROR_GRID: Tuple[Tuple[str, str, int, Tuple[Tuple[str, float], ...]], ...] = (
    ("exact perception, rigid motion", "exact", 0, ()),
    ("relative distance error 0.05", "distance-5-nonrigid", 1,
     (("distance_error_tolerance", 0.05),)),
    ("compass skew 0.1", "skew-10-nonrigid", 2, (("skew_tolerance", 0.1),)),
    ("quadratic motion error (c=0.2)", "quad-motion", 3, ()),
    ("linear motion error (c=0.6)", "linear-60", 4, ()),
)


def run(
    *,
    n_robots: int = 10,
    seed: int = 0,
    max_activations: int = 15000,
    epsilon: float = 0.05,
    k: int = 4,
    figure18_coefficients: tuple = (0.1, 0.5, 1.0, 2.0, 4.0),
    workers: int = 1,
    backend: Optional[str] = None,
) -> ErrorToleranceResult:
    """Run the error-model grid (through the sweep engine) and the Figure-18 sweep.

    ``workers > 1`` executes the grid across a process pool; ``backend``
    selects another execution backend by name.  The rows are identical to
    the serial run.
    """
    result = ErrorToleranceResult()

    specs = [
        _spec(
            error_model=error_model,
            algorithm_params=(("k", k),) + extra_params,
            n_robots=n_robots,
            seed=seed + seed_offset,
            max_activations=max_activations,
            epsilon=epsilon,
            k=k,
        )
        for _, error_model, seed_offset, extra_params in ERROR_GRID
    ]
    sweep = SweepRunner(specs, workers=workers, backend=backend).run()
    for (label, _, _, _), row in zip(ERROR_GRID, sweep.rows):
        result.runs.append(
            ErrorToleranceRow(
                label=label,
                cohesion=row["cohesion"],
                converged=row["converged"],
                final_diameter=row["final_diameter"],
            )
        )
    result.figure18 = _figure18_sweep(figure18_coefficients)
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print(result.to_table().render())
    print()
    print(result.figure18_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
