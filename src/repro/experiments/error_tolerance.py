"""Experiment E1 — Section 6.1 / Figure 18: error tolerance of the algorithm.

The paper claims the algorithm tolerates

* bounded *relative* distance-measurement error (after scaling the
  perceived range by ``1/(1+delta)``),
* bounded-skew symmetric distortion of the local compass, and
* motion error that grows *quadratically* with the distance travelled,

while *linear* relative motion error defeats every convergence algorithm
(Figure 18: two robots at exactly visibility range can be pushed apart
when the lateral error exceeds ``tan`` of the commanded angle).

This experiment measures all four claims: full simulated runs under each
error model (cohesion + convergence), and the explicit Figure-18 two-robot
threshold sweep for linear motion error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..algorithms.kknps import KKNPSAlgorithm
from ..analysis.tables import TextTable
from ..engine.simulator import SimulationConfig, run_simulation
from ..geometry.point import Point
from ..geometry.transforms import SymmetricDistortion
from ..model.errors import MotionModel, PerceptionModel
from ..schedulers.kasync import KAsyncScheduler
from ..schedulers.synchronous import FSyncScheduler
from ..workloads.generators import random_connected_configuration


@dataclass(frozen=True)
class ErrorToleranceRow:
    """One error-model run."""

    label: str
    cohesion: bool
    converged: bool
    final_diameter: float


@dataclass(frozen=True)
class Figure18Row:
    """One point of the Figure-18 linear-motion-error threshold sweep."""

    error_coefficient: float
    commanded_angle: float
    final_separation: float
    separated: bool


@dataclass
class ErrorToleranceResult:
    """All rows of the error-tolerance experiment."""

    runs: List[ErrorToleranceRow] = field(default_factory=list)
    figure18: List[Figure18Row] = field(default_factory=list)

    def to_table(self) -> TextTable:
        table = TextTable(
            "Section 6.1 — full runs under each error model (KKNPS, 4-Async)",
            ["error model", "cohesive", "converged", "final diameter"],
        )
        for row in self.runs:
            table.add_row(row.label, row.cohesion, row.converged, row.final_diameter)
        return table

    def figure18_table(self) -> TextTable:
        table = TextTable(
            "Figure 18 — linear relative motion error vs separation of a "
            "visibility-threshold pair",
            ["error coefficient", "tan(commanded angle)", "final separation / V", "separated"],
        )
        for row in self.figure18:
            table.add_row(
                row.error_coefficient,
                math.tan(row.commanded_angle),
                row.final_separation,
                row.separated,
            )
        return table

    @property
    def tolerated_models_all_cohesive(self) -> bool:
        """Distance error, skew and quadratic motion error never broke cohesion."""
        tolerated = [r for r in self.runs if not r.label.startswith("linear")]
        return all(r.cohesion for r in tolerated)

    @property
    def linear_error_separates_threshold_pair(self) -> bool:
        """Figure 18: some linear-error coefficient above tan(angle) separates the pair."""
        return any(row.separated for row in self.figure18)


def _run_with(
    label: str,
    *,
    perception: PerceptionModel,
    motion: MotionModel,
    algorithm: KKNPSAlgorithm,
    n_robots: int,
    seed: int,
    max_activations: int,
    epsilon: float,
    k: int,
) -> ErrorToleranceRow:
    configuration = random_connected_configuration(n_robots, seed=seed)
    result = run_simulation(
        configuration.positions,
        algorithm,
        KAsyncScheduler(k=k, progress_fraction=(0.5, 1.0)),
        SimulationConfig(
            max_activations=max_activations,
            convergence_epsilon=epsilon,
            seed=seed,
            perception=perception,
            motion=motion,
            k_bound=k,
        ),
    )
    return ErrorToleranceRow(
        label=label,
        cohesion=result.cohesion_maintained,
        converged=result.converged,
        final_diameter=result.final_hull_diameter,
    )


def _figure18_sweep(
    error_coefficients: tuple, *, commanded_angle: float = math.pi / 3.0
) -> List[Figure18Row]:
    """The two-robot (plus one helper) linear-motion-error construction.

    Robots ``B`` and ``C`` sit at exactly visibility range; a helper robot
    above ``B`` makes ``B``'s commanded move point at ``commanded_angle``
    away from the ``B -> C`` direction.  With adversarial lateral motion
    error of relative size ``c``, the realised move acquires a component
    *away* from ``C`` once ``c`` exceeds ``tan(commanded_angle)``'s
    reciprocal geometry, and the pair separates.
    """
    rows: List[Figure18Row] = []
    v = 1.0
    b = Point(0.0, 0.0)
    c = Point(v, 0.0)
    helper = b + Point.polar(v, math.pi / 2.0 + (math.pi / 2.0 - commanded_angle))
    for coefficient in error_coefficients:
        positions = [b, c, helper]
        result = run_simulation(
            positions,
            KKNPSAlgorithm(k=1),
            FSyncScheduler(),
            SimulationConfig(
                max_activations=6,
                convergence_epsilon=1e-9,
                stop_at_convergence=False,
                motion=MotionModel(
                    xi=1.0, deviation="linear", coefficient=coefficient, bias="adversarial"
                ),
                seed=0,
            ),
        )
        final = result.final_configuration
        separation = final[0].distance_to(final[1])
        rows.append(
            Figure18Row(
                error_coefficient=coefficient,
                commanded_angle=commanded_angle,
                final_separation=separation,
                separated=separation > v + 1e-9,
            )
        )
    return rows


def run(
    *,
    n_robots: int = 10,
    seed: int = 0,
    max_activations: int = 15000,
    epsilon: float = 0.05,
    k: int = 4,
    distance_error: float = 0.05,
    skew: float = 0.1,
    quadratic_coefficient: float = 0.2,
    linear_coefficient: float = 0.6,
    figure18_coefficients: tuple = (0.1, 0.5, 1.0, 2.0, 4.0),
) -> ErrorToleranceResult:
    """Run the error-model grid and the Figure-18 sweep."""
    result = ErrorToleranceResult()

    result.runs.append(
        _run_with(
            "exact perception, rigid motion",
            perception=PerceptionModel.exact(),
            motion=MotionModel.rigid(),
            algorithm=KKNPSAlgorithm(k=k),
            n_robots=n_robots,
            seed=seed,
            max_activations=max_activations,
            epsilon=epsilon,
            k=k,
        )
    )
    result.runs.append(
        _run_with(
            f"relative distance error {distance_error}",
            perception=PerceptionModel(distance_error=distance_error, bias="random"),
            motion=MotionModel(xi=0.5),
            algorithm=KKNPSAlgorithm(k=k, distance_error_tolerance=distance_error),
            n_robots=n_robots,
            seed=seed + 1,
            max_activations=max_activations,
            epsilon=epsilon,
            k=k,
        )
    )
    result.runs.append(
        _run_with(
            f"compass skew {skew}",
            perception=PerceptionModel(
                distortion=SymmetricDistortion(amplitude=skew, frequency=2)
            ),
            motion=MotionModel(xi=0.5),
            algorithm=KKNPSAlgorithm(k=k, skew_tolerance=skew),
            n_robots=n_robots,
            seed=seed + 2,
            max_activations=max_activations,
            epsilon=epsilon,
            k=k,
        )
    )
    result.runs.append(
        _run_with(
            f"quadratic motion error (c={quadratic_coefficient})",
            perception=PerceptionModel.exact(),
            motion=MotionModel(
                xi=0.5, deviation="quadratic", coefficient=quadratic_coefficient, bias="random"
            ),
            algorithm=KKNPSAlgorithm(k=k),
            n_robots=n_robots,
            seed=seed + 3,
            max_activations=max_activations,
            epsilon=epsilon,
            k=k,
        )
    )
    result.runs.append(
        _run_with(
            f"linear motion error (c={linear_coefficient})",
            perception=PerceptionModel.exact(),
            motion=MotionModel(
                xi=0.5, deviation="linear", coefficient=linear_coefficient, bias="adversarial"
            ),
            algorithm=KKNPSAlgorithm(k=k),
            n_robots=n_robots,
            seed=seed + 4,
            max_activations=max_activations,
            epsilon=epsilon,
            k=k,
        )
    )
    result.figure18 = _figure18_sweep(figure18_coefficients)
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print(result.to_table().render())
    print()
    print(result.figure18_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
