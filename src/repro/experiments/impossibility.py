"""Experiment I1 — Section 7 (Figures 19-22): impossibility under unbounded Async.

Wraps :func:`repro.adversary.impossibility.run_impossibility` and renders
the verification of every ingredient of the impossibility argument as a
table: the spiral construction, the legality of every adversarial
activation (lens confinement), the accumulated hub-distance drift versus
the paper's ``4 psi^2`` bound, the distance-indistinguishability band, the
forced-motion witnesses, and — the punchline — the broken
``(X_A, X_B)`` visibility edge and the resulting linearly-separable split
of the visibility graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..adversary.impossibility import ImpossibilityReport, run_impossibility
from ..analysis.tables import TextTable, render_key_values


@dataclass
class ImpossibilityResult:
    """The Section-7 report plus table renderings."""

    report: ImpossibilityReport

    def headline_table(self) -> str:
        report = self.report
        pairs = [
            ("psi (turn angle)", report.spiral.psi),
            ("tail robots", report.spiral.n_tail),
            ("total robots", report.spiral.n_robots),
            ("paper robot-count bound", report.spiral.predicted_robot_count()),
            ("total chord rotation (rad)", report.spiral.total_rotation()),
            ("adversarial activations", report.flattening.total_moves),
            ("lens violations", report.flattening.lens_violations),
            ("max |hub-distance drift|", report.flattening.max_abs_drift),
            ("paper drift bound 4*psi^2", report.flattening.paper_total_drift_bound()),
            ("min chain edge length", report.flattening.min_edge_length_seen),
            ("required zeta", report.required_zeta),
            ("final components", report.final_components),
            ("components linearly separable", report.components_linearly_separable),
        ]
        return render_key_values("Section 7 — impossibility construction, headline numbers", pairs)

    def hub_move_table(self) -> TextTable:
        table = TextTable(
            "Section 7 — forced hub moves of representative algorithms and the resulting "
            "X_A / X_B separation",
            ["algorithm", "zeta", "direction (deg)", "in C-side half sector",
             "final |A' X_B|", "visibility broken"],
        )
        for move in self.report.hub_moves:
            table.add_row(
                move.algorithm_name,
                move.zeta,
                math.degrees(move.direction_angle),
                move.in_c_side_half_sector,
                self.report.separations.get(move.algorithm_name, float("nan")),
                self.report.visibility_broken.get(move.algorithm_name, False),
            )
        return table

    def witness_table(self) -> TextTable:
        table = TextTable(
            "Section 7.2.1 — forced-motion witnesses (confusable special angles)",
            ["turn angle", "skew", "modulus M", "2*pi*i/M", "2*pi*(i+1)/M", "valid"],
        )
        for witness in self.report.witnesses:
            table.add_row(
                witness.turn_angle,
                witness.skew,
                witness.modulus,
                witness.lower_special_angle,
                witness.upper_special_angle,
                witness.is_valid(),
            )
        return table

    @property
    def impossibility_demonstrated(self) -> bool:
        """Every check of the construction passed and visibility was broken."""
        report = self.report
        return (
            report.construction_is_legal
            and report.drift_within_paper_bound
            and report.edges_indistinguishable_from_threshold
            and report.any_representative_breaks_visibility
            and report.final_components >= 2
        )


def run(
    *,
    psi: float = 0.3,
    delta: float = 0.05,
    skew: float = 0.1,
    target_rotation: float = 3.0 * math.pi / 8.0,
) -> ImpossibilityResult:
    """Run the Section-7 construction and wrap its report."""
    report = run_impossibility(
        psi, delta=delta, skew=skew, target_rotation=target_rotation
    )
    return ImpossibilityResult(report=report)


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print(result.headline_table())
    print()
    print(result.hub_move_table().render())
    print()
    print(result.witness_table().render())
    print()
    print("impossibility demonstrated:", result.impossibility_demonstrated)


if __name__ == "__main__":  # pragma: no cover
    main()
