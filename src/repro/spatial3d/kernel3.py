"""The continuous-time 3D engine: the shared kernel with 3D hooks.

Until this module existed, the 3D extension could only run a round-based
(semi-)synchronous loop — the k-Async / k-NestA / unbounded-Async
schedulers that embody the paper's separation between bounded and
unbounded asynchrony lived exclusively in the planar engine.  The
dimension-generic :class:`~repro.engine.kernel.ContinuousKernel` closes
that gap: this module supplies the 3D hooks (uniformly random rotation
frames, the batched ``(m, 3)`` Look filter, the
:meth:`~repro.spatial3d.kknps3.KKNPS3Algorithm.compute_array` destination
rule, dimension-generic perception/motion error models) and with them the
*full* scheduler family drives 3D runs: interpolated mid-move Looks,
overlapping activity intervals, xi-rigid truncation — the exact
continuous-time semantics of the planar engine, in 3-space.

The Look filter uses the 3D extension's historical visibility tolerance
(:data:`~repro.spatial3d.engine3.VIS_EPS`) so the continuous engine is
consistent with the round engine's notion of who sees whom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..engine.kernel import ContinuousKernel, MoveDecision
from ..engine.metrics import METRICS_DENSE_MAX, min_pairwise_distance_grid
from ..engine.spatial_index import ShardedGridIndex
from ..engine.state import EngineState
from ..geometry.tolerances import EPS
from ..model.errors import MotionModel, PerceptionModel
from ..model.types import Activation
from ..schedulers.base import Scheduler
from ..schedulers.kasync import KAsyncScheduler
from .engine3 import (
    random_rotation3,
    rotate_back3,
    rotate_rows3,
    visible_relative3,
)
from .kknps3 import KKNPS3Algorithm
from .model3 import (
    Configuration3,
    edge_index_array,
    edge_lengths3_array,
    max_pairwise_distance3_array,
    min_pairwise_distance3_array,
    positions_as_array3,
    visibility_edges3,
)
from .vector3 import Vector3Like


@dataclass(frozen=True)
class Metrics3Sample:
    """One observation of the 3D configuration at a given time.

    ``hull_diameter`` is the diameter of the point set — which equals the
    diameter of its convex hull, so the field name matches the planar
    :class:`~repro.engine.metrics.MetricsSample` and the kernel's
    convergence check reads both uniformly.
    """

    time: float
    hull_diameter: float
    min_pairwise_distance: float
    initial_edges_preserved: bool
    broken_edge_count: int
    activations_processed: int

    def converged(self, epsilon: float) -> bool:
        """Point-Convergence check at this sample."""
        return self.hull_diameter <= epsilon


def _diameter3_large(arr: np.ndarray) -> float:
    """Diameter of a large ``(n, 3)`` point set without the full matrix.

    The diameter is attained between two convex-hull vertices, so the
    quadratic reduction only runs over the hull (a few hundred points at
    mega-swarm scale) — the per-pair arithmetic is the dense path's, so
    the result matches it bit for bit.  Degenerate inputs the hull
    construction rejects (coplanar mega-swarms) fall back to a
    row-chunked exact scan that never materialises an ``(n, n)`` block.
    """
    try:
        from scipy.spatial import ConvexHull as _SpatialHull
        from scipy.spatial import QhullError

        try:
            vertices = arr[_SpatialHull(arr).vertices]
        except QhullError:
            vertices = None
    except ImportError:  # pragma: no cover - scipy is available in CI
        vertices = None
    if vertices is not None:
        return max_pairwise_distance3_array(vertices)
    best = 0.0
    for start in range(0, len(arr), 512):
        block = arr[start:start + 512]
        diff = block[:, None, :] - arr[None, :, :]
        squared = (
            diff[..., 0] * diff[..., 0]
            + diff[..., 1] * diff[..., 1]
            + diff[..., 2] * diff[..., 2]
        )
        best = max(best, float(squared.max()))
    return float(math.sqrt(best))


@dataclass
class Metrics3Collector:
    """Diameter / cohesion samples over ``(n, 3)`` position arrays."""

    visibility_range: float
    samples: List[Metrics3Sample] = field(default_factory=list)
    cohesion_ever_violated: bool = False

    #: Record boundaries inside one synchronous round see identical
    #: geometry, so the kernel's batched round path may replicate one
    #: sample per round (see the planar collector for the contract).
    supports_replicated_samples = True

    def bind_initial(self, positions) -> None:
        """Record the initial visibility edges the cohesion predicate refers to.

        Past ``METRICS_DENSE_MAX`` robots the edges come from grid-local
        pair enumeration (same ``<= V + EPS`` predicate) and only the
        ``(E, 2)`` index array is materialised; ``initial_edges`` stays
        empty at that scale.
        """
        arr = np.asarray(positions, dtype=float)
        if len(arr) > METRICS_DENSE_MAX:
            shard = ShardedGridIndex(arr, self.visibility_range + 2.0 * EPS)
            i, j = shard.neighbour_pairs()
            index = np.stack((i, j), axis=1)
            lengths = edge_lengths3_array(index, arr)
            index = index[lengths <= self.visibility_range + EPS]
            order = np.lexsort((index[:, 1], index[:, 0]))
            self.initial_edges = set()
            self._edge_index = np.ascontiguousarray(index[order])
            return
        self.initial_edges = visibility_edges3(arr, self.visibility_range)
        self._edge_index = edge_index_array(self.initial_edges)

    def observe(self, time: float, positions, activations_processed: int) -> Metrics3Sample:
        """Sample the configuration at ``time`` and append it to the history."""
        arr = np.asarray(positions, dtype=float)
        edge_index = getattr(self, "_edge_index", None)
        if edge_index is not None and len(edge_index):
            lengths = edge_lengths3_array(edge_index, arr)
            broken = int(np.count_nonzero(lengths > self.visibility_range + EPS))
        else:
            broken = 0
        if broken:
            self.cohesion_ever_violated = True
        if len(arr) > METRICS_DENSE_MAX:
            diameter = _diameter3_large(arr)
            min_pairwise = min_pairwise_distance_grid(arr, self.visibility_range)
        else:
            diameter = max_pairwise_distance3_array(arr)
            min_pairwise = min_pairwise_distance3_array(arr)
        sample = Metrics3Sample(
            time=time,
            hull_diameter=diameter,
            min_pairwise_distance=min_pairwise,
            initial_edges_preserved=not broken,
            broken_edge_count=broken,
            activations_processed=activations_processed,
        )
        self.samples.append(sample)
        return sample

    def diameters(self) -> List[float]:
        """Diameters over time."""
        return [s.hull_diameter for s in self.samples]

    def first_time_below(self, epsilon: float) -> Optional[float]:
        """Earliest sampled time the diameter was at most ``epsilon``."""
        for sample in self.samples:
            if sample.hull_diameter <= epsilon:
                return sample.time
        return None


@dataclass
class AsyncSimulation3Config:
    """Parameters of a continuous-time 3D run.

    Mirrors the planar :class:`~repro.engine.simulator.SimulationConfig`
    where the notion transfers; ``rotate_frames`` replaces the planar
    frame knobs (3D disorientation is a uniformly random rotation), and
    the engine is array-native only — the 3D extension's retained object
    loop belongs to the round engine.
    """

    visibility_range: float = 1.0
    perception: PerceptionModel = field(default_factory=PerceptionModel.exact)
    motion: MotionModel = field(default_factory=MotionModel.rigid)
    seed: int = 0
    max_activations: int = 5000
    max_time: float = math.inf
    convergence_epsilon: float = 0.05
    stop_at_convergence: bool = True
    rotate_frames: bool = True
    record_every: int = 1
    crashed_robots: tuple = ()
    engine_mode: str = "array"
    spatial_index: Optional[bool] = None
    #: Batched round fast path: None auto-enables it for round-structured
    #: schedulers, True forces the attempt (still validated per batch),
    #: False always uses the per-activation path.
    round_batching: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.visibility_range <= 0.0:
            raise ValueError("visibility range must be positive")
        if self.max_activations < 1:
            raise ValueError("max_activations must be at least 1")
        if self.convergence_epsilon <= 0.0:
            raise ValueError("convergence_epsilon must be positive")
        if self.record_every < 1:
            raise ValueError("record_every must be at least 1")
        if self.engine_mode != "array":
            raise ValueError("the continuous-time 3D engine is array-native only")
        if self.perception.distortion is not None and self.perception.distortion.amplitude != 0.0:
            raise ValueError(
                "angular distortion is a planar error model; 3D runs support "
                "distance error and motion error only"
            )


@dataclass
class Simulation3AsyncResult:
    """Outcome of one continuous-time 3D run."""

    initial_configuration: Configuration3
    final_configuration: Configuration3
    metrics: Metrics3Collector
    activations_processed: int
    activation_counts: Dict[int, int]
    activation_end_times: Dict[int, List[float]]
    converged: bool
    convergence_time: Optional[float]
    cohesion_maintained: bool
    final_time: float
    wall_time_seconds: float

    @property
    def final_diameter(self) -> float:
        """Diameter of the final configuration."""
        return self.final_configuration.diameter()

    @property
    def initial_diameter(self) -> float:
        """Diameter of the initial configuration."""
        return self.initial_configuration.diameter()


class Kernel3(ContinuousKernel):
    """The 3D instantiation of the continuous-time kernel."""

    def _make_metrics(self) -> Metrics3Collector:
        return Metrics3Collector(visibility_range=self.config.visibility_range)

    def _frame_for_look(self) -> Optional[np.ndarray]:
        if not self.config.rotate_frames:
            return None
        return random_rotation3(self.rng)

    def _decide_move(
        self,
        robot_id: int,
        look_time: float,
        other_positions,
        activation: Activation,
    ) -> MoveDecision:
        cfg = self.config
        observer = self._state.committed_positions()[robot_id]
        rotation = self._frame_for_look()
        relative = visible_relative3(
            observer, other_positions, self._effective_range()
        )
        neighbours_seen = len(relative)
        if rotation is not None and neighbours_seen:
            relative = rotate_rows3(rotation, relative)
        perceived = cfg.perception.perceive_array(relative, self.rng)
        destination_local = self.algorithm.compute_array(perceived)
        if rotation is not None:
            displacement = rotate_back3(rotation, destination_local)
        else:
            displacement = destination_local
        target = observer + displacement
        realized = cfg.motion.realize_array(
            observer, target, activation.progress_fraction, self.rng
        )
        return MoveDecision(
            target=target, realized=realized, neighbours_seen=neighbours_seen
        )


def run_simulation3_async(
    initial_positions: Sequence[Vector3Like],
    algorithm: Optional[KKNPS3Algorithm] = None,
    scheduler: Optional[Scheduler] = None,
    config: Optional[AsyncSimulation3Config] = None,
) -> Simulation3AsyncResult:
    """Run the 3D algorithm under any continuous-time scheduler.

    This is the 3D sibling of :func:`repro.engine.simulator.run_simulation`:
    the same scheduler objects (FSync, SSync, k-NestA, k-Async, Async,
    scripted) drive the run, activations are consumed in global look-time
    order, and Looks interpolate mid-move robots — the paper's
    continuous-time semantics, with the ball-safe-region destination rule.
    """
    config = config or AsyncSimulation3Config()
    algorithm = algorithm or KKNPS3Algorithm(k=1)
    scheduler = scheduler or KAsyncScheduler(k=1)

    positions = positions_as_array3(initial_positions)
    initial = Configuration3.of(positions, config.visibility_range)
    state = EngineState.from_array(positions)
    kernel = Kernel3(state, algorithm, scheduler, config)
    outcome = kernel.run_kernel()

    final = Configuration3.of(outcome.final_positions, config.visibility_range)
    return Simulation3AsyncResult(
        initial_configuration=initial,
        final_configuration=final,
        metrics=outcome.metrics,
        activations_processed=outcome.processed,
        activation_counts=kernel.activation_counts(),
        activation_end_times=outcome.activation_end_times,
        converged=outcome.converged_time is not None,
        convergence_time=outcome.converged_time,
        cohesion_maintained=not outcome.metrics.cohesion_ever_violated,
        final_time=outcome.final_time,
        wall_time_seconds=outcome.wall_time_seconds,
    )
