"""A round-based simulator for the 3D extension.

The planar engine carries the full continuous-time machinery; for the 3D
extension (whose purpose is to demonstrate that the generalised safe
regions and destination rule still congregate cohesively) a semi-
synchronous round simulator with optional activation subsets and
``xi``-rigid truncation is sufficient and keeps the extension compact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .kknps3 import KKNPS3Algorithm
from .model3 import Configuration3, Snapshot3, build_snapshot3, edges_preserved3
from .vector3 import Vector3, Vector3Like, max_pairwise_distance3


@dataclass
class Simulation3Config:
    """Parameters of a 3D round-based run."""

    visibility_range: float = 1.0
    max_rounds: int = 2000
    convergence_epsilon: float = 0.05
    activation_probability: float = 1.0
    xi: float = 1.0
    seed: int = 0
    rotate_frames: bool = True

    def __post_init__(self) -> None:
        if self.visibility_range <= 0.0:
            raise ValueError("visibility range must be positive")
        if not 0.0 < self.activation_probability <= 1.0:
            raise ValueError("activation_probability must lie in (0, 1]")
        if not 0.0 < self.xi <= 1.0:
            raise ValueError("xi must lie in (0, 1]")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")


@dataclass
class Simulation3Result:
    """Outcome of a 3D run."""

    initial_configuration: Configuration3
    final_configuration: Configuration3
    rounds_executed: int
    converged: bool
    cohesion_maintained: bool
    diameter_history: List[float] = field(default_factory=list)

    @property
    def final_diameter(self) -> float:
        """Diameter of the final configuration."""
        return self.final_configuration.diameter()


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    matrix, _ = np.linalg.qr(rng.normal(size=(3, 3)))
    if np.linalg.det(matrix) < 0:
        matrix[:, 0] = -matrix[:, 0]
    return matrix


def run_simulation3(
    initial_positions: Sequence[Vector3Like],
    algorithm: Optional[KKNPS3Algorithm] = None,
    config: Optional[Simulation3Config] = None,
) -> Simulation3Result:
    """Run the 3D algorithm under a (semi-)synchronous round scheduler."""
    config = config or Simulation3Config()
    algorithm = algorithm or KKNPS3Algorithm(k=1)
    rng = np.random.default_rng(config.seed)

    positions = [Vector3.of(p) for p in initial_positions]
    initial = Configuration3.of(positions, config.visibility_range)
    initial_edges = initial.edges()

    diameter_history = [max_pairwise_distance3(positions)]
    cohesion = True
    converged_round: Optional[int] = None

    for round_index in range(config.max_rounds):
        activated = [
            i for i in range(len(positions))
            if rng.random() < config.activation_probability
        ]
        if not activated:
            activated = [int(rng.integers(0, len(positions)))]

        # Semi-synchronous semantics: every activated robot Looks at the
        # start of the round, so all snapshots use the same positions.
        new_positions = list(positions)
        for index in activated:
            observer = positions[index]
            others = [p for j, p in enumerate(positions) if j != index]
            rotation = _random_rotation(rng) if config.rotate_frames else np.eye(3)
            relative = [
                Vector3.of(rotation @ (Vector3.of(p) - observer).as_array())
                for p in others
                if observer.distance_to(p) <= config.visibility_range + 1e-12
                and observer.distance_to(p) > 1e-12
            ]
            snapshot = Snapshot3(neighbours=tuple(relative))
            destination_local = algorithm.compute(snapshot)
            displacement = Vector3.of(rotation.T @ destination_local.as_array())
            fraction = float(rng.uniform(config.xi, 1.0))
            new_positions[index] = observer + displacement * fraction
        positions = new_positions

        diameter = max_pairwise_distance3(positions)
        diameter_history.append(diameter)
        if not edges_preserved3(initial_edges, positions, config.visibility_range):
            cohesion = False
        if diameter <= config.convergence_epsilon and converged_round is None:
            converged_round = round_index + 1
            break

    final = Configuration3.of(positions, config.visibility_range)
    return Simulation3Result(
        initial_configuration=initial,
        final_configuration=final,
        rounds_executed=len(diameter_history) - 1,
        converged=converged_round is not None,
        cohesion_maintained=cohesion,
        diameter_history=diameter_history,
    )
