"""A round-based simulator for the 3D extension.

The planar engine carries the full continuous-time machinery; for the 3D
extension (whose purpose is to demonstrate that the generalised safe
regions and destination rule still congregate cohesively) a semi-
synchronous round simulator with optional activation subsets and
``xi``-rigid truncation is sufficient and keeps the extension compact.

As of the array-native 3D engine, the round loop itself lives in
:mod:`repro.spatial3d.engine3` in two modes: the vectorized ``"array"``
default and the retained per-robot ``"object"`` reference path, pinned
bit-identical to each other.  This module owns the public entry point,
the configuration and the result type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .engine3 import run_rounds_array, run_rounds_object
from .kknps3 import KKNPS3Algorithm
from .model3 import Configuration3, positions_as_array3
from .vector3 import Vector3Like


@dataclass
class Simulation3Config:
    """Parameters of a 3D round-based run."""

    visibility_range: float = 1.0
    max_rounds: int = 2000
    convergence_epsilon: float = 0.05
    activation_probability: float = 1.0
    xi: float = 1.0
    seed: int = 0
    rotate_frames: bool = True
    engine_mode: str = "array"
    spatial_index: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.visibility_range <= 0.0:
            raise ValueError("visibility range must be positive")
        if not 0.0 < self.activation_probability <= 1.0:
            raise ValueError("activation_probability must lie in (0, 1]")
        if not 0.0 < self.xi <= 1.0:
            raise ValueError("xi must lie in (0, 1]")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        if self.engine_mode not in ("array", "object"):
            raise ValueError(f"unknown engine mode {self.engine_mode!r}")


@dataclass
class Simulation3Result:
    """Outcome of a 3D run."""

    initial_configuration: Configuration3
    final_configuration: Configuration3
    rounds_executed: int
    converged: bool
    cohesion_maintained: bool
    diameter_history: List[float] = field(default_factory=list)
    activations_executed: int = 0

    @property
    def final_diameter(self) -> float:
        """Diameter of the final configuration."""
        return self.final_configuration.diameter()


def run_simulation3(
    initial_positions: Sequence[Vector3Like],
    algorithm: Optional[KKNPS3Algorithm] = None,
    config: Optional[Simulation3Config] = None,
) -> Simulation3Result:
    """Run the 3D algorithm under a (semi-)synchronous round scheduler."""
    config = config or Simulation3Config()
    algorithm = algorithm or KKNPS3Algorithm(k=1)
    rng = np.random.default_rng(config.seed)

    positions = positions_as_array3(initial_positions)
    initial = Configuration3.of(positions, config.visibility_range)
    initial_edges = initial.edges()

    run_rounds = run_rounds_array if config.engine_mode == "array" else run_rounds_object
    outcome = run_rounds(
        positions,
        algorithm,
        initial_edges,
        visibility_range=config.visibility_range,
        max_rounds=config.max_rounds,
        convergence_epsilon=config.convergence_epsilon,
        activation_probability=config.activation_probability,
        xi=config.xi,
        rng=rng,
        rotate_frames=config.rotate_frames,
        spatial_index=config.spatial_index,
    )

    final = Configuration3.of(outcome.final_positions, config.visibility_range)
    return Simulation3Result(
        initial_configuration=initial,
        final_configuration=final,
        rounds_executed=len(outcome.diameter_history) - 1,
        converged=outcome.converged_round is not None,
        cohesion_maintained=outcome.cohesion_maintained,
        diameter_history=outcome.diameter_history,
        activations_executed=outcome.activations_executed,
    )
