"""Three-dimensional vectors for the Section-6.3.2 extension.

The paper sketches a natural generalisation of its algorithm to three (and
higher) dimensions: safe regions become balls with the same centre and
radius, and the visibility/congregation arguments carry over with more
intricate geometry.  This subpackage provides a concrete, tested
instantiation of that sketch; :class:`Vector3` is its small numeric
foundation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Union

import numpy as np

from ..geometry.tolerances import EPS


@dataclass(frozen=True)
class Vector3:
    """An immutable point (or displacement vector) in 3-space."""

    x: float
    y: float
    z: float

    @staticmethod
    def of(obj: "Vector3Like") -> "Vector3":
        """Coerce a 3-sequence, numpy row or Vector3 into a :class:`Vector3`."""
        if isinstance(obj, Vector3):
            return obj
        x, y, z = obj
        return Vector3(float(x), float(y), float(z))

    @staticmethod
    def zero() -> "Vector3":
        """The origin (0, 0, 0)."""
        return Vector3(0.0, 0.0, 0.0)

    @staticmethod
    def spherical(radius: float, azimuth: float, polar: float) -> "Vector3":
        """Point at ``radius`` in the direction given by spherical angles."""
        sin_polar = math.sin(polar)
        return Vector3(
            radius * sin_polar * math.cos(azimuth),
            radius * sin_polar * math.sin(azimuth),
            radius * math.cos(polar),
        )

    # -- algebra ---------------------------------------------------------------
    def __add__(self, other: "Vector3Like") -> "Vector3":
        other = Vector3.of(other)
        return Vector3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vector3Like") -> "Vector3":
        other = Vector3.of(other)
        return Vector3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vector3":
        return Vector3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vector3":
        return Vector3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __neg__(self) -> "Vector3":
        return Vector3(-self.x, -self.y, -self.z)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def __len__(self) -> int:
        return 3

    # -- metrics ------------------------------------------------------------------
    def dot(self, other: "Vector3Like") -> float:
        """Euclidean inner product."""
        other = Vector3.of(other)
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vector3Like") -> "Vector3":
        """Cross product."""
        other = Vector3.of(other)
        return Vector3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.x * self.x + self.y * self.y + self.z * self.z)

    def norm_squared(self) -> float:
        """Squared Euclidean length."""
        return self.x * self.x + self.y * self.y + self.z * self.z

    def distance_to(self, other: "Vector3Like") -> float:
        """Euclidean distance."""
        return (self - Vector3.of(other)).norm()

    def unit(self) -> "Vector3":
        """Unit vector in this direction (raises for the zero vector)."""
        n = self.norm()
        if n <= EPS:
            raise ValueError("cannot normalise a (near-)zero vector")
        return self / n

    def direction_to(self, other: "Vector3Like") -> "Vector3":
        """Unit vector from this point toward ``other``."""
        return (Vector3.of(other) - self).unit()

    def toward(self, other: "Vector3Like", distance: float) -> "Vector3":
        """Point at ``distance`` from here in the direction of ``other``."""
        other = Vector3.of(other)
        gap = self.distance_to(other)
        if gap <= EPS:
            return self
        return self + (other - self) * (distance / gap)

    def lerp(self, other: "Vector3Like", t: float) -> "Vector3":
        """Linear interpolation between this point and ``other``."""
        other = Vector3.of(other)
        return self + (other - self) * t

    def midpoint(self, other: "Vector3Like") -> "Vector3":
        """Midpoint of the segment to ``other``."""
        return self.lerp(other, 0.5)

    def is_close(self, other: "Vector3Like", *, eps: float = EPS) -> bool:
        """True when the points coincide up to ``eps``."""
        return self.distance_to(other) <= eps

    def as_array(self) -> np.ndarray:
        """This vector as a numpy array of shape ``(3,)``."""
        return np.array([self.x, self.y, self.z], dtype=float)


Vector3Like = Union[Vector3, Sequence[float], np.ndarray]


def centroid3(points: Iterable[Vector3Like]) -> Vector3:
    """Arithmetic mean of a non-empty collection of 3D points."""
    pts = [Vector3.of(p) for p in points]
    if not pts:
        raise ValueError("centroid of an empty point set is undefined")
    total = Vector3.zero()
    for p in pts:
        total = total + p
    return total / len(pts)


def max_pairwise_distance3(points: Sequence[Vector3Like]) -> float:
    """Diameter of a 3D point set (0 for fewer than two points)."""
    pts = [Vector3.of(p) for p in points]
    best = 0.0
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            best = max(best, pts[i].distance_to(pts[j]))
    return best


def fits_in_open_halfspace(directions: Sequence[Vector3Like], *, eps: float = 1e-9) -> bool:
    """True when all direction vectors fit strictly inside some open half-space.

    Equivalently the origin is not in the convex hull of the directions.
    Solved exactly as a small linear program: find a unit-box vector ``u``
    and the largest margin ``t`` with ``u . d_i >= t`` for every direction;
    the directions fit in an open half-space iff the optimal margin is
    strictly positive.
    """
    from scipy.optimize import linprog

    dirs = [Vector3.of(d).unit() for d in directions if Vector3.of(d).norm() > eps]
    if not dirs:
        return False
    arr = np.array([[d.x, d.y, d.z] for d in dirs])
    n = len(dirs)
    # Variables: u (3 components) and the margin t.  Maximise t subject to
    # d_i . u - t >= 0, u in [-1, 1]^3, t in [0, 1].
    c = np.array([0.0, 0.0, 0.0, -1.0])
    a_ub = np.hstack([-arr, np.ones((n, 1))])
    b_ub = np.zeros(n)
    bounds = [(-1.0, 1.0)] * 3 + [(0.0, 1.0)]
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        return False
    return float(result.x[3]) > 1e-7
