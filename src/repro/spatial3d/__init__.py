"""Section 6.3.2 extension: the paper's algorithm in three dimensions."""

from .halfspace import fits_in_open_halfspace_array
from .kernel3 import (
    AsyncSimulation3Config,
    Kernel3,
    Metrics3Collector,
    Metrics3Sample,
    Simulation3AsyncResult,
    run_simulation3_async,
)
from .kknps3 import KKNPS3Algorithm
from .model3 import (
    Configuration3,
    Snapshot3,
    build_snapshot3,
    edge_index_array,
    edges_preserved3,
    edges_preserved3_array,
    is_connected3,
    max_edge_stretch3,
    max_pairwise_distance3_array,
    min_pairwise_distance3_array,
    positions_as_array3,
    visibility_edges3,
)
from .simulator3 import Simulation3Config, Simulation3Result, run_simulation3
from .vector3 import Vector3, centroid3, fits_in_open_halfspace, max_pairwise_distance3
from .workloads3 import (
    lattice_configuration3,
    line_configuration3,
    random_connected_configuration3,
)

__all__ = [
    "AsyncSimulation3Config",
    "Configuration3",
    "KKNPS3Algorithm",
    "Kernel3",
    "Metrics3Collector",
    "Metrics3Sample",
    "Simulation3AsyncResult",
    "Simulation3Config",
    "Simulation3Result",
    "Snapshot3",
    "Vector3",
    "build_snapshot3",
    "centroid3",
    "edge_index_array",
    "edges_preserved3",
    "edges_preserved3_array",
    "fits_in_open_halfspace",
    "fits_in_open_halfspace_array",
    "is_connected3",
    "lattice_configuration3",
    "line_configuration3",
    "max_edge_stretch3",
    "max_pairwise_distance3",
    "max_pairwise_distance3_array",
    "min_pairwise_distance3_array",
    "positions_as_array3",
    "random_connected_configuration3",
    "run_simulation3",
    "run_simulation3_async",
    "visibility_edges3",
]
