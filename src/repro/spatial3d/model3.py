"""Configurations, visibility and snapshots in three dimensions.

The 3D extension reuses the OBLOT semantics of the planar model: limited
visibility radius ``V``, visibility graph connectivity, and snapshots of
relative positions.  Only the geometry changes (balls instead of disks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple, Union

import numpy as np

from ..geometry.tolerances import EPS
from ..model.visibility import connected_components
from .vector3 import Vector3, Vector3Like, centroid3, max_pairwise_distance3

Edge = Tuple[int, int]


def positions_as_array3(positions: Sequence[Vector3Like]) -> np.ndarray:
    """A sequence of 3D points as a contiguous ``(n, 3)`` float array."""
    pts = [Vector3.of(p) for p in positions]
    out = np.empty((len(pts), 3), dtype=float)
    for i, p in enumerate(pts):
        out[i, 0] = p.x
        out[i, 1] = p.y
        out[i, 2] = p.z
    return out


def _pairwise_squared3(arr: np.ndarray) -> np.ndarray:
    """The ``(n, n)`` squared-distance matrix of an ``(n, 3)`` array.

    Component arithmetic mirrors :meth:`Vector3.distance_to` (squares
    summed left to right), so with one correctly-rounded square root per
    consumer the derived distances are bit-identical to the scalar path.
    """
    diff = arr[:, None, :] - arr[None, :, :]
    return (
        diff[..., 0] * diff[..., 0]
        + diff[..., 1] * diff[..., 1]
        + diff[..., 2] * diff[..., 2]
    )


def pairwise_distances3_array(positions: np.ndarray) -> np.ndarray:
    """The full ``(n, n)`` distance matrix of an ``(n, 3)`` position array."""
    return np.sqrt(_pairwise_squared3(np.asarray(positions, dtype=float)))


def max_pairwise_distance3_array(positions: np.ndarray) -> float:
    """Diameter of an ``(n, 3)`` point array (0 for fewer than two points).

    Bit-identical to :func:`~repro.spatial3d.vector3.max_pairwise_distance3`
    on the same points: ``sqrt`` is monotone and correctly rounded, so
    reducing the squared matrix first and rooting once preserves the
    scalar path's floats while keeping the per-round hot loop to a
    single square root.
    """
    arr = np.asarray(positions, dtype=float)
    if len(arr) < 2:
        return 0.0
    return float(math.sqrt(_pairwise_squared3(arr).max()))


def min_pairwise_distance3_array(positions: np.ndarray) -> float:
    """Smallest separation between two distinct robots (0 below two points)."""
    arr = np.asarray(positions, dtype=float)
    n = len(arr)
    if n < 2:
        return 0.0
    squared = _pairwise_squared3(arr)
    return float(math.sqrt(squared[~np.eye(n, dtype=bool)].min()))


def edge_index_array(edges: Set[Edge]) -> np.ndarray:
    """A visibility edge set as a sorted ``(E, 2)`` integer index array."""
    if not edges:
        return np.empty((0, 2), dtype=np.intp)
    return np.array(sorted(edges), dtype=np.intp)


def edge_lengths3_array(edge_index: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Current lengths of the given edges — an O(E) gather, no full matrix."""
    index = np.asarray(edge_index, dtype=np.intp).reshape(-1, 2)
    if index.size == 0:
        return np.empty(0, dtype=float)
    arr = np.asarray(positions, dtype=float)
    diff = arr[index[:, 0]] - arr[index[:, 1]]
    squared = (
        diff[:, 0] * diff[:, 0] + diff[:, 1] * diff[:, 1] + diff[:, 2] * diff[:, 2]
    )
    return np.sqrt(squared)


def edges_preserved3_array(
    edge_index: np.ndarray,
    positions: np.ndarray,
    visibility_range: float,
    *,
    eps: float = EPS,
) -> bool:
    """The cohesion predicate on arrays: every given edge still within ``V``.

    Decides exactly what :func:`edges_preserved3` decides (an edge is
    preserved iff its endpoints are within ``V + eps``), without
    rebuilding the full current edge set.
    """
    lengths = edge_lengths3_array(edge_index, positions)
    if lengths.size == 0:
        return True
    return bool((lengths <= visibility_range + eps).all())


def max_edge_stretch3(edge_index: np.ndarray, positions: np.ndarray) -> float:
    """Largest current separation among the given pairs (0 with no edges)."""
    lengths = edge_lengths3_array(edge_index, positions)
    if lengths.size == 0:
        return 0.0
    return float(lengths.max())


def visibility_edges3(
    positions: Sequence[Vector3Like], visibility_range: float, *, eps: float = EPS
) -> Set[Edge]:
    """All pairs of robots within ``V`` of each other."""
    pts = [Vector3.of(p) for p in positions]
    edges: Set[Edge] = set()
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            if pts[i].distance_to(pts[j]) <= visibility_range + eps:
                edges.add((i, j))
    return edges


def is_connected3(
    positions: Sequence[Vector3Like], visibility_range: float, *, eps: float = EPS
) -> bool:
    """Connectivity of the 3D visibility graph."""
    n = len(positions)
    if n <= 1:
        return True
    edges = visibility_edges3(positions, visibility_range, eps=eps)
    return len(connected_components(n, edges)) == 1


def edges_preserved3(
    initial_edges: Set[Edge],
    positions: Sequence[Vector3Like],
    visibility_range: float,
    *,
    eps: float = EPS,
) -> bool:
    """The 3D cohesion predicate ``E(0) ⊆ E(t)``."""
    current = visibility_edges3(positions, visibility_range, eps=eps)
    return all(edge in current for edge in initial_edges)


@dataclass(frozen=True)
class Configuration3:
    """Positions of all robots in 3-space plus the visibility range."""

    positions: tuple
    visibility_range: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "positions", tuple(Vector3.of(p) for p in self.positions))
        if self.visibility_range <= 0.0:
            raise ValueError("visibility range must be positive")

    @staticmethod
    def of(positions: Sequence[Vector3Like], visibility_range: float) -> "Configuration3":
        """Build a configuration from any vector-like sequence."""
        return Configuration3(tuple(Vector3.of(p) for p in positions), float(visibility_range))

    def __len__(self) -> int:
        return len(self.positions)

    def __getitem__(self, index: int) -> Vector3:
        return self.positions[index]

    def edges(self) -> Set[Edge]:
        """Edges of the 3D visibility graph."""
        return visibility_edges3(self.positions, self.visibility_range)

    def is_connected(self) -> bool:
        """Connectivity of the 3D visibility graph."""
        return is_connected3(self.positions, self.visibility_range)

    def diameter(self) -> float:
        """Largest pairwise separation."""
        return max_pairwise_distance3(list(self.positions))

    def centroid(self) -> Vector3:
        """Centre of gravity of the configuration."""
        return centroid3(self.positions)

    def within_epsilon(self, epsilon: float) -> bool:
        """Point-Convergence predicate."""
        return self.diameter() <= epsilon

    def preserves_edges_of(self, other: "Configuration3") -> bool:
        """3D cohesion check against an earlier configuration."""
        return edges_preserved3(other.edges(), self.positions, self.visibility_range)


@dataclass(frozen=True)
class Snapshot3:
    """Perceived relative positions of visible robots in 3-space."""

    neighbours: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "neighbours", tuple(Vector3.of(p) for p in self.neighbours))

    def has_neighbours(self) -> bool:
        """True when at least one other robot is visible."""
        return len(self.neighbours) > 0

    def farthest_distance(self) -> float:
        """The lower bound ``V_Y`` on the unknown visibility range."""
        if not self.neighbours:
            return 0.0
        return max(p.norm() for p in self.neighbours)

    def distant_neighbours(self, close_fraction: float = 0.5) -> List[Vector3]:
        """Neighbours farther than ``close_fraction * V_Y``."""
        v_y = self.farthest_distance()
        if v_y <= EPS:
            return []
        threshold = close_fraction * v_y
        distant = [p for p in self.neighbours if p.norm() > threshold + EPS]
        if not distant:
            distant = [max(self.neighbours, key=lambda p: p.norm())]
        return distant


def build_snapshot3(
    observer: Vector3Like,
    others: Sequence[Vector3Like],
    visibility_range: float,
    *,
    rng: Union[np.random.Generator, None] = None,
    rotate_frame: bool = True,
) -> Snapshot3:
    """Snapshot of ``others`` as seen from ``observer``.

    When ``rotate_frame`` is set (the default), the relative positions are
    expressed in a uniformly random orthonormal frame, modelling the
    disorientation of the robots; the algorithm below is equivariant so the
    rotation has no effect on the executed motion, but exercising it keeps
    the extension honest.
    """
    observer = Vector3.of(observer)
    relative = [
        Vector3.of(p) - observer
        for p in others
        if EPS < observer.distance_to(p) <= visibility_range + EPS
    ]
    if rotate_frame and rng is not None and relative:
        # Random rotation via QR decomposition of a Gaussian matrix.
        matrix, _ = np.linalg.qr(rng.normal(size=(3, 3)))
        if np.linalg.det(matrix) < 0:
            matrix[:, 0] = -matrix[:, 0]
        relative = [Vector3.of(matrix @ v.as_array()) for v in relative]
    return Snapshot3(neighbours=tuple(relative))
