"""The array-native round engine behind :func:`repro.spatial3d.run_simulation3`.

This module holds both execution modes of the 3D round simulator:

* ``engine_mode="array"`` (the default) keeps the swarm as one
  contiguous ``(n, 3)`` float64 position array.  Each activated robot's
  Look is a batched distance filter (optionally restricted to the
  observer's 3x3x3 block of a :class:`~repro.engine.spatial_index.UniformGridIndex`),
  the random-frame rotation is applied to the whole neighbour batch in
  three fused column expressions, the destination rule runs through
  :meth:`~repro.spatial3d.kknps3.KKNPS3Algorithm.compute_array`, and the
  per-round diameter / cohesion measurements are single vectorized
  reductions.
* ``engine_mode="object"`` is the retained reference loop: per-robot
  :class:`~repro.spatial3d.vector3.Vector3` arithmetic and per-neighbour
  Python filtering, exactly the shape of the pre-array implementation.

The two modes are **bit-identical** (pinned by
``tests/spatial3d/test_engine3.py``).  Three things make that hold by
construction rather than by luck:

* both modes consume the RNG in the same order (one ``random()`` per
  robot for the activation draw, then per activated robot a rotation and
  a progress fraction) — numpy's ``Generator`` fills vectorized draws
  from the same bitstream as repeated scalar draws;
* rotations are applied through explicit component expressions (no BLAS
  matmul, whose summation order is build-dependent), evaluated in the
  same order scalar Python would;
* the destination rule itself is one shared numeric core
  (``compute_array``), which the object mode reaches through
  ``compute``'s delegation.

Semantics of a round are unchanged from the original 3D simulator:
semi-synchronous subset activation (every activated robot Looks at the
round-start positions), uniformly random orthonormal frames, and
``xi``-rigid truncation of every commanded move.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set

import numpy as np

from ..engine.spatial_index import GRID_MIN_ROBOTS, UniformGridIndex
from .kknps3 import KKNPS3Algorithm
from .model3 import (
    Edge,
    Snapshot3,
    edge_index_array,
    edges_preserved3,
    edges_preserved3_array,
    max_pairwise_distance3_array,
)
from .vector3 import Vector3, max_pairwise_distance3

#: The visibility filter tolerance of the round engine (the historical
#: constant of the 3D simulator; distinct from the geometric EPS used by
#: the cohesion predicate).
VIS_EPS = 1e-12


def random_rotation3(rng: np.random.Generator) -> np.ndarray:
    """A uniformly random (Haar) rotation via QR of a Gaussian matrix."""
    matrix, _ = np.linalg.qr(rng.normal(size=(3, 3)))
    if np.linalg.det(matrix) < 0:
        matrix[:, 0] = -matrix[:, 0]
    return matrix


def rotate_rows3(matrix: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Apply a 3x3 rotation to every row of an ``(m, 3)`` array.

    Written as explicit fused column expressions so the result is
    bit-identical to rotating each row with scalar arithmetic (BLAS
    matmul kernels do not guarantee a summation order).
    """
    x, y, z = rows[:, 0], rows[:, 1], rows[:, 2]
    out = np.empty_like(rows)
    out[:, 0] = matrix[0, 0] * x + matrix[0, 1] * y + matrix[0, 2] * z
    out[:, 1] = matrix[1, 0] * x + matrix[1, 1] * y + matrix[1, 2] * z
    out[:, 2] = matrix[2, 0] * x + matrix[2, 1] * y + matrix[2, 2] * z
    return out


def rotate_back3(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Apply the inverse (transpose) of a rotation to one 3-vector."""
    x, y, z = float(vector[0]), float(vector[1]), float(vector[2])
    return np.array(
        [
            matrix[0, 0] * x + matrix[1, 0] * y + matrix[2, 0] * z,
            matrix[0, 1] * x + matrix[1, 1] * y + matrix[2, 1] * z,
            matrix[0, 2] * x + matrix[1, 2] * y + matrix[2, 2] * z,
        ],
        dtype=float,
    )


class RoundOutcome:
    """What one engine-mode run of the round loop produced."""

    __slots__ = (
        "final_positions",
        "diameter_history",
        "converged_round",
        "cohesion_maintained",
        "activations_executed",
    )

    def __init__(
        self,
        final_positions: np.ndarray,
        diameter_history: List[float],
        converged_round: Optional[int],
        cohesion_maintained: bool,
        activations_executed: int,
    ) -> None:
        self.final_positions = final_positions
        self.diameter_history = diameter_history
        self.converged_round = converged_round
        self.cohesion_maintained = cohesion_maintained
        self.activations_executed = activations_executed


def _activated_indices(
    rng: np.random.Generator, n: int, probability: float, mode: str
) -> List[int]:
    """The robots activated this round (both modes: same RNG consumption)."""
    if mode == "array":
        activated = np.flatnonzero(rng.random(n) < probability).tolist()
    else:
        activated = [i for i in range(n) if rng.random() < probability]
    if not activated:
        activated = [int(rng.integers(0, n))]
    return activated


def _build_grid(
    positions: np.ndarray, visibility_range: float, override: Optional[bool]
) -> Optional[UniformGridIndex]:
    """The 3D neighbour grid, or None for the dense path.

    Mirrors the planar engine's policy: auto-on (``override is None``)
    once the swarm reaches ``GRID_MIN_ROBOTS``, forced on/off otherwise;
    an infinite range can never be bucketed.
    """
    feasible = math.isfinite(visibility_range) and visibility_range > 0.0
    if override is not None:
        enabled = override and feasible
    else:
        enabled = feasible and len(positions) >= GRID_MIN_ROBOTS
    if not enabled:
        return None
    grid = UniformGridIndex(visibility_range, dim=3)
    for i in range(len(positions)):
        grid.settle(i, positions[i, 0], positions[i, 1], positions[i, 2])
    return grid


def run_rounds_array(
    positions: np.ndarray,
    algorithm: KKNPS3Algorithm,
    initial_edges: Set[Edge],
    *,
    visibility_range: float,
    max_rounds: int,
    convergence_epsilon: float,
    activation_probability: float,
    xi: float,
    rng: np.random.Generator,
    rotate_frames: bool,
    spatial_index: Optional[bool] = None,
) -> RoundOutcome:
    """The vectorized round loop over an ``(n, 3)`` position array."""
    positions = np.array(positions, dtype=float)
    n = len(positions)
    v = visibility_range
    edge_index = edge_index_array(initial_edges)
    grid = _build_grid(positions, v, spatial_index)

    diameter_history = [max_pairwise_distance3_array(positions)]
    cohesion = True
    converged_round: Optional[int] = None
    activations = 0

    for round_index in range(max_rounds):
        activated = _activated_indices(rng, n, activation_probability, "array")
        activations += len(activated)

        # Semi-synchronous semantics: every activated robot Looks at the
        # start-of-round positions; moves land in a fresh buffer.
        new_positions = positions.copy()
        for index in activated:
            observer = positions[index]
            rotation = random_rotation3(rng) if rotate_frames else None
            if grid is not None:
                candidates = grid.candidates(
                    observer[0], observer[1], observer[2], exclude=index
                )
                pool = positions[candidates]
            else:
                pool = positions
            delta = pool - observer
            distances = np.sqrt(
                delta[:, 0] * delta[:, 0]
                + delta[:, 1] * delta[:, 1]
                + delta[:, 2] * delta[:, 2]
            )
            # The lower bound drops the observer itself (distance 0) on the
            # dense path and any coincident robot on both paths.
            relative = delta[(distances <= v + VIS_EPS) & (distances > VIS_EPS)]
            if rotation is not None:
                relative = rotate_rows3(rotation, relative)
            destination_local = algorithm.compute_array(relative)
            if rotation is not None:
                displacement = rotate_back3(rotation, destination_local)
            else:
                displacement = destination_local
            fraction = float(rng.uniform(xi, 1.0))
            new_positions[index] = observer + displacement * fraction
        positions = new_positions
        if grid is not None:
            for index in activated:
                grid.settle(
                    index, positions[index, 0], positions[index, 1], positions[index, 2]
                )

        diameter = max_pairwise_distance3_array(positions)
        diameter_history.append(diameter)
        if not edges_preserved3_array(edge_index, positions, v):
            cohesion = False
        if diameter <= convergence_epsilon and converged_round is None:
            converged_round = round_index + 1
            break

    return RoundOutcome(positions, diameter_history, converged_round, cohesion, activations)


def run_rounds_object(
    positions: np.ndarray,
    algorithm: KKNPS3Algorithm,
    initial_edges: Set[Edge],
    *,
    visibility_range: float,
    max_rounds: int,
    convergence_epsilon: float,
    activation_probability: float,
    xi: float,
    rng: np.random.Generator,
    rotate_frames: bool,
    spatial_index: Optional[bool] = None,
) -> RoundOutcome:
    """The retained per-robot reference loop (``engine_mode="object"``).

    ``spatial_index`` is accepted for signature parity but never used:
    the reference path always scans densely.
    """
    points: List[Vector3] = [
        Vector3(float(x), float(y), float(z)) for x, y, z in np.asarray(positions, float)
    ]
    n = len(points)
    v = visibility_range

    diameter_history = [max_pairwise_distance3(points)]
    cohesion = True
    converged_round: Optional[int] = None
    activations = 0

    for round_index in range(max_rounds):
        activated = _activated_indices(rng, n, activation_probability, "object")
        activations += len(activated)

        new_points = list(points)
        for index in activated:
            observer = points[index]
            rotation = random_rotation3(rng) if rotate_frames else None
            relative: List[Vector3] = []
            for j, p in enumerate(points):
                if j == index:
                    continue
                distance = observer.distance_to(p)
                if distance <= v + VIS_EPS and distance > VIS_EPS:
                    rel = p - observer
                    if rotation is not None:
                        rel = Vector3(
                            rotation[0, 0] * rel.x + rotation[0, 1] * rel.y + rotation[0, 2] * rel.z,
                            rotation[1, 0] * rel.x + rotation[1, 1] * rel.y + rotation[1, 2] * rel.z,
                            rotation[2, 0] * rel.x + rotation[2, 1] * rel.y + rotation[2, 2] * rel.z,
                        )
                    relative.append(rel)
            snapshot = Snapshot3(neighbours=tuple(relative))
            local = algorithm.compute(snapshot)
            if rotation is not None:
                displacement = Vector3(
                    rotation[0, 0] * local.x + rotation[1, 0] * local.y + rotation[2, 0] * local.z,
                    rotation[0, 1] * local.x + rotation[1, 1] * local.y + rotation[2, 1] * local.z,
                    rotation[0, 2] * local.x + rotation[1, 2] * local.y + rotation[2, 2] * local.z,
                )
            else:
                displacement = local
            fraction = float(rng.uniform(xi, 1.0))
            new_points[index] = observer + displacement * fraction
        points = new_points

        diameter = max_pairwise_distance3(points)
        diameter_history.append(diameter)
        if not edges_preserved3(initial_edges, points, v):
            cohesion = False
        if diameter <= convergence_epsilon and converged_round is None:
            converged_round = round_index + 1
            break

    final = np.array([(p.x, p.y, p.z) for p in points], dtype=float)
    return RoundOutcome(final, diameter_history, converged_round, cohesion, activations)
