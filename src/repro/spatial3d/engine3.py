"""The round engine behind :func:`repro.spatial3d.run_simulation3`.

This module holds both execution modes of the 3D round simulator:

* ``engine_mode="array"`` (the default) is a **thin adapter over the
  dimension-generic continuous-time kernel**
  (:class:`~repro.engine.kernel.ContinuousKernel`): the round semantics
  live in :class:`Round3Scheduler` (one simultaneous batch per round,
  per-round measurement and stopping at round boundaries) and
  :class:`_RoundKernel3` (the historical Look filter, frame rotation and
  ``uniform(xi, 1)`` fraction draws, in the historical RNG order), while
  the activation pipeline itself — heap consumption, ``(n, 3)``
  interpolation, phase transitions, grid maintenance — is the same
  kernel that runs planar and continuous-time 3D simulations.
* ``engine_mode="object"`` is the retained reference loop: per-robot
  :class:`~repro.spatial3d.vector3.Vector3` arithmetic and per-neighbour
  Python filtering, exactly the shape of the pre-array implementation.

The two modes are **bit-identical** (pinned by
``tests/spatial3d/test_engine3.py``).  Three things make that hold by
construction rather than by luck:

* both modes consume the RNG in the same order (one ``random(n)`` draw
  per round for the activation subset, then per activated robot a
  rotation and a progress fraction) — numpy's ``Generator`` fills
  vectorized draws from the same bitstream as repeated scalar draws;
* rotations are applied through explicit component expressions (no BLAS
  matmul, whose summation order is build-dependent), evaluated in the
  same order scalar Python would;
* the destination rule itself is one shared numeric core
  (``compute_array``), which the object mode reaches through
  ``compute``'s delegation.

Round semantics through the kernel, spelled out: every activated robot
of round ``r`` Looks at ``t = r`` — robots activated earlier in the same
round have begun moves whose span starts at ``r``, so interpolating them
at ``r`` yields their move *origins*, i.e. exactly the round-start
positions — and every move ends at ``r + 0.5``, inside the round.  The
:class:`Round3Scheduler` measures diameter and cohesion from the
interpolated end-of-round state before drawing the next subset, so a
converged run stops without consuming further RNG, exactly like the
historical loop.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set

import numpy as np

from ..engine.kernel import ContinuousKernel, MoveDecision
from ..engine.state import EngineState
from ..model.types import Activation, SchedulerClass
from ..schedulers.base import Scheduler
from .kknps3 import KKNPS3Algorithm
from .model3 import (
    Edge,
    Snapshot3,
    edge_index_array,
    edges_preserved3,
    edges_preserved3_array,
    max_pairwise_distance3_array,
)
from .vector3 import Vector3, max_pairwise_distance3

#: The visibility filter tolerance of the round engine (the historical
#: constant of the 3D simulator; distinct from the geometric EPS used by
#: the cohesion predicate).
VIS_EPS = 1e-12


def random_rotation3(rng: np.random.Generator) -> np.ndarray:
    """A uniformly random (Haar) rotation via QR of a Gaussian matrix."""
    matrix, _ = np.linalg.qr(rng.normal(size=(3, 3)))
    if np.linalg.det(matrix) < 0:
        matrix[:, 0] = -matrix[:, 0]
    return matrix


def rotate_rows3(matrix: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Apply a 3x3 rotation to every row of an ``(m, 3)`` array.

    Written as explicit fused column expressions so the result is
    bit-identical to rotating each row with scalar arithmetic (BLAS
    matmul kernels do not guarantee a summation order).
    """
    x, y, z = rows[:, 0], rows[:, 1], rows[:, 2]
    out = np.empty_like(rows)
    out[:, 0] = matrix[0, 0] * x + matrix[0, 1] * y + matrix[0, 2] * z
    out[:, 1] = matrix[1, 0] * x + matrix[1, 1] * y + matrix[1, 2] * z
    out[:, 2] = matrix[2, 0] * x + matrix[2, 1] * y + matrix[2, 2] * z
    return out


def visible_relative3(
    observer: np.ndarray, pool, visibility_range: float
) -> np.ndarray:
    """Relative positions of the robots in ``pool`` visible from ``observer``.

    The 3D extension's one visibility filter, shared by the round adapter
    and the continuous-time 3D kernel so the two engines cannot diverge
    on who sees whom: distances within ``(VIS_EPS, V + VIS_EPS]`` (the
    lower bound drops the observer itself on a dense pool and any
    coincident robot on every pool), computed with the explicit component
    expressions the historical loop used.
    """
    pool = np.asarray(pool, dtype=float).reshape(-1, 3)
    delta = pool - observer
    distances = np.sqrt(
        delta[:, 0] * delta[:, 0]
        + delta[:, 1] * delta[:, 1]
        + delta[:, 2] * delta[:, 2]
    )
    return delta[(distances <= visibility_range + VIS_EPS) & (distances > VIS_EPS)]


def rotate_back3(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Apply the inverse (transpose) of a rotation to one 3-vector."""
    x, y, z = float(vector[0]), float(vector[1]), float(vector[2])
    return np.array(
        [
            matrix[0, 0] * x + matrix[1, 0] * y + matrix[2, 0] * z,
            matrix[0, 1] * x + matrix[1, 1] * y + matrix[2, 1] * z,
            matrix[0, 2] * x + matrix[1, 2] * y + matrix[2, 2] * z,
        ],
        dtype=float,
    )


class RoundOutcome:
    """What one engine-mode run of the round loop produced."""

    __slots__ = (
        "final_positions",
        "diameter_history",
        "converged_round",
        "cohesion_maintained",
        "activations_executed",
    )

    def __init__(
        self,
        final_positions: np.ndarray,
        diameter_history: List[float],
        converged_round: Optional[int],
        cohesion_maintained: bool,
        activations_executed: int,
    ) -> None:
        self.final_positions = final_positions
        self.diameter_history = diameter_history
        self.converged_round = converged_round
        self.cohesion_maintained = cohesion_maintained
        self.activations_executed = activations_executed


def _activated_indices(
    rng: np.random.Generator, n: int, probability: float, mode: str
) -> List[int]:
    """The robots activated this round (both modes: same RNG consumption)."""
    if mode == "array":
        activated = np.flatnonzero(rng.random(n) < probability).tolist()
    else:
        activated = [i for i in range(n) if rng.random() < probability]
    if not activated:
        activated = [int(rng.integers(0, n))]
    return activated


class _NullSample:
    """The sample a round-adapter observation returns (never converges)."""

    __slots__ = ()
    hull_diameter = math.inf


class _NullMetrics:
    """A do-nothing metrics collector for the round adapter.

    The round loop's own measurements (per-round diameter and cohesion)
    live in :class:`Round3Scheduler`, which evaluates them at round
    boundaries exactly as the historical loop did; the kernel's
    per-activation sampling is therefore switched off.
    """

    __slots__ = ()
    cohesion_ever_violated = False
    _SAMPLE = _NullSample()

    def observe(self, time, positions, processed) -> _NullSample:
        return self._SAMPLE


class _RoundKernelConfig:
    """The duck-typed kernel configuration of one round-adapter run."""

    __slots__ = (
        "visibility_range", "xi", "rotate_frames", "spatial_index", "seed",
        "max_activations", "max_time", "convergence_epsilon",
        "stop_at_convergence", "record_every", "crashed_robots", "engine_mode",
    )

    def __init__(self, *, visibility_range, xi, rotate_frames, spatial_index, max_rounds, n):
        self.visibility_range = visibility_range
        self.xi = xi
        self.rotate_frames = rotate_frames
        self.spatial_index = spatial_index
        self.seed = 0  # unused: the adapter injects the caller's generator
        # Bound generously: the scheduler exhausts after max_rounds rounds.
        self.max_activations = max_rounds * max(n, 1) + 1
        self.max_time = math.inf
        # Unsatisfiable on purpose: _NullSample.hull_diameter is +inf, so any
        # non-negative epsilon (and in particular +inf <= +inf) would flag a
        # spurious converged_time on the kernel outcome.  The scheduler owns
        # the round engine's real convergence decision.
        self.convergence_epsilon = -1.0
        self.stop_at_convergence = False
        self.record_every = self.max_activations + 1  # skip per-activation sampling
        self.crashed_robots = ()
        self.engine_mode = "array"


class Round3Scheduler(Scheduler):
    """The round discipline as a continuous-time scheduler (the adapter's clock).

    Each :meth:`next_batch` call is one round boundary: it first measures
    the configuration the *previous* round produced (diameter history,
    cohesion, convergence — in that order, exactly like the historical
    loop, and crucially *before* any further RNG draw), then draws the
    activated subset for the next round from the engine's own generator —
    ``rng.random(n) < p`` with the single-robot fallback — and issues one
    simultaneous batch at ``look_time = round``.  All activated robots
    therefore Look at the start-of-round positions (simultaneous
    activations see each other's move origins), and every move completes
    inside its round.
    """

    scheduler_class = SchedulerClass.SSYNC
    #: Every batch is one simultaneous round: the kernel may advance it
    #: through the batched fast path.
    round_structured = True

    def __init__(
        self,
        *,
        activation_probability: float,
        max_rounds: int,
        convergence_epsilon: float,
        visibility_range: float,
        edge_index: np.ndarray,
        move_duration: float = 0.5,
    ) -> None:
        super().__init__()
        self.activation_probability = activation_probability
        self.max_rounds = max_rounds
        self.convergence_epsilon = convergence_epsilon
        self.visibility_range = visibility_range
        self.edge_index = edge_index
        self.move_duration = move_duration
        self.rounds_issued = 0
        self.diameter_history: List[float] = []
        self.cohesion = True
        self.converged_round: Optional[int] = None

    def _after_reset(self) -> None:
        self.rounds_issued = 0
        self.diameter_history = []
        self.cohesion = True
        self.converged_round = None

    def next_batch(self, view=None) -> List[Activation]:
        n = self.n_robots
        if self.rounds_issued > 0:
            # End-of-round measurement: every move of the previous round has
            # completed by its round boundary, so the interpolation returns
            # exactly the committed end-of-round positions.
            positions = view.positions_array(float(self.rounds_issued))
            diameter = max_pairwise_distance3_array(positions)
            self.diameter_history.append(diameter)
            if not edges_preserved3_array(self.edge_index, positions, self.visibility_range):
                self.cohesion = False
            if diameter <= self.convergence_epsilon and self.converged_round is None:
                self.converged_round = self.rounds_issued
                return []
        if self.rounds_issued >= self.max_rounds:
            return []
        activated = np.flatnonzero(
            self._rng.random(n) < self.activation_probability
        ).tolist()
        if not activated:
            activated = [int(self._rng.integers(0, n))]
        look_time = float(self.rounds_issued)
        self.rounds_issued += 1
        return [
            Activation(
                robot_id=index,
                look_time=look_time,
                compute_duration=0.0,
                move_duration=self.move_duration,
            )
            for index in activated
        ]

    def describe(self) -> str:
        return f"round3(p={self.activation_probability})"


class _RoundKernel3(ContinuousKernel):
    """The round-mode Look/Compute hooks: historical RNG order, xi-draws.

    Per activated robot the historical loop drew a rotation (when frames
    are on) and then, after computing the destination, the realised
    fraction ``uniform(xi, 1)``; the hook below reproduces both draws in
    that order and applies the fraction directly (``observer +
    displacement * fraction``), bypassing the motion model — the round
    engine's xi-truncation *is* its motion model.
    """

    def _make_metrics(self) -> _NullMetrics:
        return _NullMetrics()

    def _bind_metrics(self, metrics) -> None:
        pass

    def _decide_move(
        self,
        robot_id: int,
        look_time: float,
        other_positions,
        activation: Activation,
    ) -> MoveDecision:
        cfg = self.config
        observer = self._state.committed_positions()[robot_id]
        rotation = random_rotation3(self.rng) if cfg.rotate_frames else None
        relative = visible_relative3(observer, other_positions, cfg.visibility_range)
        if rotation is not None:
            relative = rotate_rows3(rotation, relative)
        destination_local = self.algorithm.compute_array(relative)
        if rotation is not None:
            displacement = rotate_back3(rotation, destination_local)
        else:
            displacement = destination_local
        fraction = float(self.rng.uniform(cfg.xi, 1.0))
        realized = observer + displacement * fraction
        return MoveDecision(
            target=realized, realized=realized, neighbours_seen=len(relative)
        )


def run_rounds_array(
    positions: np.ndarray,
    algorithm: KKNPS3Algorithm,
    initial_edges: Set[Edge],
    *,
    visibility_range: float,
    max_rounds: int,
    convergence_epsilon: float,
    activation_probability: float,
    xi: float,
    rng: np.random.Generator,
    rotate_frames: bool,
    spatial_index: Optional[bool] = None,
) -> RoundOutcome:
    """The round loop as a thin adapter over the continuous-time kernel.

    The round semantics live in :class:`Round3Scheduler` (simultaneous
    round batches, per-round measurement and stopping) and
    :class:`_RoundKernel3` (the historical Look filter and RNG draws);
    the activation pipeline itself — heap consumption, interpolation,
    phase transitions, grid maintenance — is the shared
    :class:`~repro.engine.kernel.ContinuousKernel`.  The outcome is
    bit-identical to the historical vectorized loop (pinned against the
    retained object path by ``tests/spatial3d/test_engine3.py``).
    """
    positions = np.array(positions, dtype=float)
    n = len(positions)
    edge_index = edge_index_array(initial_edges)
    initial_diameter = max_pairwise_distance3_array(positions)

    scheduler = Round3Scheduler(
        activation_probability=activation_probability,
        max_rounds=max_rounds,
        convergence_epsilon=convergence_epsilon,
        visibility_range=visibility_range,
        edge_index=edge_index,
    )
    config = _RoundKernelConfig(
        visibility_range=visibility_range,
        xi=xi,
        rotate_frames=rotate_frames,
        spatial_index=spatial_index,
        max_rounds=max_rounds,
        n=n,
    )
    kernel = _RoundKernel3(
        EngineState.from_array(positions), algorithm, scheduler, config, rng=rng
    )
    outcome = kernel.run_kernel()

    return RoundOutcome(
        outcome.final_positions,
        [initial_diameter] + scheduler.diameter_history,
        scheduler.converged_round,
        scheduler.cohesion,
        outcome.processed,
    )


def run_rounds_object(
    positions: np.ndarray,
    algorithm: KKNPS3Algorithm,
    initial_edges: Set[Edge],
    *,
    visibility_range: float,
    max_rounds: int,
    convergence_epsilon: float,
    activation_probability: float,
    xi: float,
    rng: np.random.Generator,
    rotate_frames: bool,
    spatial_index: Optional[bool] = None,
) -> RoundOutcome:
    """The retained per-robot reference loop (``engine_mode="object"``).

    ``spatial_index`` is accepted for signature parity but never used:
    the reference path always scans densely.
    """
    points: List[Vector3] = [
        Vector3(float(x), float(y), float(z)) for x, y, z in np.asarray(positions, float)
    ]
    n = len(points)
    v = visibility_range

    diameter_history = [max_pairwise_distance3(points)]
    cohesion = True
    converged_round: Optional[int] = None
    activations = 0

    for round_index in range(max_rounds):
        activated = _activated_indices(rng, n, activation_probability, "object")
        activations += len(activated)

        new_points = list(points)
        for index in activated:
            observer = points[index]
            rotation = random_rotation3(rng) if rotate_frames else None
            relative: List[Vector3] = []
            for j, p in enumerate(points):
                if j == index:
                    continue
                distance = observer.distance_to(p)
                if distance <= v + VIS_EPS and distance > VIS_EPS:
                    rel = p - observer
                    if rotation is not None:
                        rel = Vector3(
                            rotation[0, 0] * rel.x + rotation[0, 1] * rel.y + rotation[0, 2] * rel.z,
                            rotation[1, 0] * rel.x + rotation[1, 1] * rel.y + rotation[1, 2] * rel.z,
                            rotation[2, 0] * rel.x + rotation[2, 1] * rel.y + rotation[2, 2] * rel.z,
                        )
                    relative.append(rel)
            snapshot = Snapshot3(neighbours=tuple(relative))
            local = algorithm.compute(snapshot)
            if rotation is not None:
                displacement = Vector3(
                    rotation[0, 0] * local.x + rotation[1, 0] * local.y + rotation[2, 0] * local.z,
                    rotation[0, 1] * local.x + rotation[1, 1] * local.y + rotation[2, 1] * local.z,
                    rotation[0, 2] * local.x + rotation[1, 2] * local.y + rotation[2, 2] * local.z,
                )
            else:
                displacement = local
            fraction = float(rng.uniform(xi, 1.0))
            new_points[index] = observer + displacement * fraction
        points = new_points

        diameter = max_pairwise_distance3(points)
        diameter_history.append(diameter)
        if not edges_preserved3(initial_edges, points, v):
            cohesion = False
        if diameter <= convergence_epsilon and converged_round is None:
            converged_round = round_index + 1
            break

    final = np.array([(p.x, p.y, p.z) for p in points], dtype=float)
    return RoundOutcome(final, diameter_history, converged_round, cohesion, activations)
