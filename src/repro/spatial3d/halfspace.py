"""Fast exact open-half-space decisions for the 3D destination rule.

The 3D rule stays put unless the distant neighbours' directions all fit
strictly inside some open half-space (equivalently: the origin lies
outside the convex hull of the unit directions).  The original
implementation decided this with a ``scipy.optimize.linprog`` call per
activation — hundreds of microseconds of solver setup for a
three-variable LP, which dominates the whole Look-Compute step once the
rest of the engine is vectorized.

:func:`fits_in_open_halfspace_array` decides the same question with
Wolfe's minimum-norm-point algorithm over the hull of the directions:
maintain an affinely independent corral ``S`` (at most four unit
directions in 3-space) and its convex minimum-norm combination ``x``,
and repeatedly pull in the direction ``x`` separates worst until no
direction improves.  The iteration terminates finitely; at the optimum
``x*``, the margin of the best separating normal is exactly ``|x*|``, so

* ``|x*|`` above the decision margin certifies the half-space (the
  normal is ``x* / |x*|``, checked explicitly against every direction
  before answering True), and
* everything else — origin inside the hull, boundary cases, numerical
  degeneracy, iteration-cap exhaustion — answers False, which makes the
  robot stay put: always safe under the paper's safe-ball analysis.

The computation is deterministic pure numpy, so the array and object
engine modes (which share this function) stay bit-identical.  The
LP-based :func:`repro.spatial3d.vector3.fits_in_open_halfspace` is kept
as the reference oracle; ``tests/spatial3d/test_halfspace.py``
cross-checks the two.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..geometry.tolerances import EPS

#: Margin below which a point counts as lying on the hull boundary
#: (mirrors the strict-positivity threshold the LP formulation used).
DECISION_MARGIN = 1e-7

#: Major-cycle cap.  Wolfe's algorithm terminates finitely (each cycle
#: strictly decreases ``|x|``); the cap only guards against numerical
#: stalls, where answering False (stay put) is the safe default.
MAX_ITERATIONS = 64

#: Barycentric coordinates below this are treated as zero when deciding
#: whether the affine minimizer lies inside the current corral.
_COORD_TOL = 1e-12


def _affine_minimizer(points: np.ndarray) -> Optional[np.ndarray]:
    """Barycentric coordinates of the min-norm point of an affine hull.

    Solves the KKT system of ``min |sum_i lambda_i p_i|`` subject to
    ``sum_i lambda_i = 1``; returns None when the system is singular
    (affinely dependent corral — numerically degenerate input).
    """
    k = len(points)
    system = np.empty((k + 1, k + 1), dtype=float)
    system[:k, :k] = points @ points.T
    system[:k, k] = 1.0
    system[k, :k] = 1.0
    system[k, k] = 0.0
    rhs = np.zeros(k + 1, dtype=float)
    rhs[k] = 1.0
    try:
        solution = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError:
        return None
    return solution[:k]


def _decide_normalized(
    d: np.ndarray,
    decision_margin: float = DECISION_MARGIN,
    max_iterations: int = MAX_ITERATIONS,
) -> bool:
    """Wolfe decision over already-normalised direction rows (``m >= 1``)."""
    # Wolfe's minimum-norm-point iteration.  Start from the direction the
    # centroid separates worst (a likely member of the optimal corral).
    centroid = d.mean(axis=0)
    corral: List[int] = [int((d @ centroid).argmin())]
    weights = np.array([1.0])
    x = d[corral[0]].copy()

    for _ in range(max_iterations):
        dots = d @ x
        worst = int(dots.argmin())
        if dots[worst] > float(x @ x) - 1e-12 or worst in corral:
            break  # no direction improves: x is the minimum-norm point
        corral.append(worst)
        weights = np.append(weights, 0.0)
        # Minor cycles: pull x to the affine minimizer of the corral,
        # dropping points whose barycentric coordinate would go negative.
        while True:
            candidate = _affine_minimizer(d[corral])
            if candidate is None:
                # Degenerate corral: abandon refinement, decide on current x.
                break
            if (candidate > _COORD_TOL).all():
                weights = candidate
                x = candidate @ d[corral]
                break
            # Largest feasible step from `weights` toward `candidate`.
            shrinking = candidate < weights
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = weights[shrinking] / (weights[shrinking] - candidate[shrinking])
            theta = float(min(1.0, ratios.min()))
            weights = weights + theta * (candidate - weights)
            alive = weights > _COORD_TOL
            if alive.all():
                # Numerical edge: nothing actually hit zero; accept.
                x = weights @ d[corral]
                break
            corral = [index for index, keep_it in zip(corral, alive) if keep_it]
            weights = weights[alive]
            weights = weights / weights.sum()
            x = weights @ d[corral]

    # Certify explicitly: only answer True when x separates every
    # direction with margin above the threshold.
    nx = float(np.sqrt(x[0] * x[0] + x[1] * x[1] + x[2] * x[2]))
    if nx <= decision_margin:
        return False
    return bool(float((d @ x).min()) > decision_margin * nx)


def fits_in_open_halfspace_array(
    directions: np.ndarray,
    *,
    eps: float = EPS,
    decision_margin: float = DECISION_MARGIN,
    max_iterations: int = MAX_ITERATIONS,
) -> bool:
    """True when all rows of ``directions`` fit in some open half-space.

    ``directions`` is an ``(m, 3)`` array; near-zero rows are ignored,
    everything else is normalised.  Returns False for an empty input
    (matching the LP-based predicate this replaces).
    """
    d = np.asarray(directions, dtype=float).reshape(-1, 3)
    if d.size == 0:
        return False
    norms = np.sqrt(d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1] + d[:, 2] * d[:, 2])
    keep = norms > eps
    if not keep.any():
        return False
    d = d[keep] / norms[keep, None]
    return _decide_normalized(d, decision_margin, max_iterations)


def fits_in_open_halfspace_segments(
    directions: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    *,
    eps: float = EPS,
    decision_margin: float = DECISION_MARGIN,
    max_iterations: int = MAX_ITERATIONS,
) -> np.ndarray:
    """Batched :func:`fits_in_open_halfspace_array` over stacked segments.

    ``directions`` holds many activations' direction rows end to end;
    segment ``a`` owns the rows ``starts[a]:ends[a]``.  The normalisation
    runs once over the whole flat axis — componentwise, so each kept row
    is bit-identical to the per-call division — and each segment's Wolfe
    decision then runs on the same contiguous unit rows the per-call form
    builds.  Entry ``a`` of the returned boolean array therefore equals
    ``fits_in_open_halfspace_array(directions[starts[a]:ends[a]])``.
    """
    d = np.asarray(directions, dtype=float).reshape(-1, 3)
    out = np.zeros(len(starts), dtype=bool)
    if not len(d):
        return out
    norms = np.sqrt(d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1] + d[:, 2] * d[:, 2])
    keep = norms > eps
    unit = d / np.where(keep, norms, 1.0)[:, None]
    for a in range(len(starts)):
        s = int(starts[a])
        e = int(ends[a])
        if e <= s:
            continue
        kept = keep[s:e]
        if not kept.any():
            continue
        out[a] = _decide_normalized(unit[s:e][kept], decision_margin, max_iterations)
    return out
