"""The 3D instantiation of the paper's algorithm (Section 6.3.2).

Safe regions generalise verbatim: with respect to a distant neighbour the
safe region of a robot is the closed *ball* of radius ``V_Y/(8k)`` centred
at that distance from the robot in the neighbour's direction.  The paper
leaves the destination rule's 3D details to future work; the concrete rule
implemented here is:

* if the distant neighbours' directions do not fit in an open half-space,
  stay put (the intersection of the safe balls is the robot's location);
* otherwise move along the *mean direction* of the distant neighbours, as
  far as allowed by every distant safe ball (and never farther than the
  ball radius ``V_Y/(8k)``).

The chosen destination provably lies in every distant safe ball — the
step length along a unit direction ``u`` inside the ball toward ``d_j`` is
at most ``2 r (u . d_j)`` — so a single activation can never break
visibility with a stationary neighbour, mirroring the planar analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..geometry.tolerances import EPS
from .halfspace import fits_in_open_halfspace_array, fits_in_open_halfspace_segments
from .model3 import Snapshot3
from .vector3 import Vector3


@dataclass
class KKNPS3Algorithm:
    """The 3D motion rule: snapshot in, destination (relative) out."""

    k: int = 1
    close_fraction: float = 0.5
    radius_divisor: float = 8.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("the asynchrony bound k must be at least 1")
        if not 0.0 < self.close_fraction < 1.0:
            raise ValueError("close_fraction must lie in (0, 1)")
        if self.radius_divisor < 4.0:
            raise ValueError("radius divisor below 4 violates the safe-region analysis")
        self.name = f"kknps3(k={self.k})"

    @property
    def alpha(self) -> float:
        """The 1/k scaling applied to the safe balls."""
        return 1.0 / float(self.k)

    def safe_radius(self, v_lower_bound: float) -> float:
        """Radius of the scaled safe ball for the given range lower bound."""
        return self.alpha * v_lower_bound / self.radius_divisor

    def compute(self, snapshot: Snapshot3) -> Vector3:
        """Destination in snapshot-local coordinates (observer at the origin)."""
        if not snapshot.has_neighbours():
            return Vector3.zero()
        relative = np.array([(p.x, p.y, p.z) for p in snapshot.neighbours], dtype=float)
        destination = self.compute_array(relative)
        return Vector3(float(destination[0]), float(destination[1]), float(destination[2]))

    def compute_array(self, relative: np.ndarray) -> np.ndarray:
        """:meth:`compute` on an ``(m, 3)`` array of relative positions.

        This is the rule's single numeric core — the scalar
        :meth:`compute` delegates here, and the array engine mode calls
        it directly on whole neighbour batches, so the two stay
        bit-identical by construction.
        """
        pts = np.asarray(relative, dtype=float).reshape(-1, 3)
        zero = np.zeros(3, dtype=float)
        if len(pts) == 0:
            return zero
        norms = np.sqrt(
            pts[:, 0] * pts[:, 0] + pts[:, 1] * pts[:, 1] + pts[:, 2] * pts[:, 2]
        )
        v_y = float(norms.max())
        if v_y <= EPS:
            return zero

        # Distant neighbours: beyond close_fraction * V_Y, falling back to
        # the single farthest neighbour when none qualify (mirroring
        # Snapshot3.distant_neighbours).
        distant = np.flatnonzero(norms > self.close_fraction * v_y + EPS)
        if distant.size == 0:
            distant = np.array([int(norms.argmax())])
        lengths = norms[distant]
        nonzero = lengths > EPS
        if not nonzero.any():
            return zero
        directions = pts[distant[nonzero]] / lengths[nonzero, None]
        if not fits_in_open_halfspace_array(directions):
            return zero

        mean = directions.sum(axis=0)
        mean_norm = float(
            np.sqrt(mean[0] * mean[0] + mean[1] * mean[1] + mean[2] * mean[2])
        )
        if mean_norm <= EPS:
            return zero
        direction = mean / mean_norm

        radius = self.safe_radius(v_y)
        # Largest step along `direction` that stays inside every distant safe
        # ball: the chord of the ball toward d_j along u has length 2 r (u.d_j).
        # max(0, .) commutes with the min over neighbours, so one reduction
        # suffices.
        step = min(radius, max(0.0, 2.0 * radius * float((directions @ direction).min())))
        if step <= EPS:
            return zero
        return direction * step

    def compute_array_rounds(
        self,
        flat: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        out: np.ndarray = None,
    ) -> np.ndarray:
        """Whole-round batch form of :meth:`compute_array`.

        ``flat`` stacks many activations' relative neighbour rows end to
        end; activation ``a`` owns ``flat[starts[a]:ends[a]]``.  The norms
        run once over the flat axis and every half-space decision runs
        through one :func:`fits_in_open_halfspace_segments` call over the
        concatenated distant directions, so row ``a`` of the result is
        bit-identical to ``compute_array(flat[starts[a]:ends[a]])`` —
        each per-activation direction batch is the same fresh contiguous
        array the per-call form builds (keeping ``sum``'s pairwise
        reduction order intact).
        """
        pts_all = np.asarray(flat, dtype=float).reshape(-1, 3)
        acts = len(starts)
        if out is None:
            out = np.zeros((acts, 3), dtype=float)
        if not acts:
            return out
        x, y, z = pts_all[:, 0], pts_all[:, 1], pts_all[:, 2]
        norms_all = np.sqrt(x * x + y * y + z * z)

        # Pass 1: gather each activation's distant unit directions exactly
        # as compute_array does, deferring only the half-space decision.
        chunks = []
        seg_starts = []
        seg_ends = []
        pending = []  # (activation, directions, v_y)
        pos = 0
        for a in range(acts):
            s = int(starts[a])
            e = int(ends[a])
            if e <= s:
                continue
            norms = norms_all[s:e]
            v_y = float(norms.max())
            if v_y <= EPS:
                continue
            distant = np.flatnonzero(norms > self.close_fraction * v_y + EPS)
            if distant.size == 0:
                distant = np.array([int(norms.argmax())])
            lengths = norms[distant]
            nonzero = lengths > EPS
            if not nonzero.any():
                continue
            directions = pts_all[s:e][distant[nonzero]] / lengths[nonzero, None]
            chunks.append(directions)
            seg_starts.append(pos)
            pos += len(directions)
            seg_ends.append(pos)
            pending.append((a, directions, v_y))

        if not pending:
            return out
        verdicts = fits_in_open_halfspace_segments(
            np.concatenate(chunks), np.array(seg_starts), np.array(seg_ends)
        )

        # Pass 2: finish the accepted activations with compute_array's tail.
        for (a, directions, v_y), fits in zip(pending, verdicts):
            if not fits:
                continue
            mean = directions.sum(axis=0)
            mean_norm = float(
                np.sqrt(mean[0] * mean[0] + mean[1] * mean[1] + mean[2] * mean[2])
            )
            if mean_norm <= EPS:
                continue
            direction = mean / mean_norm
            radius = self.safe_radius(v_y)
            step = min(
                radius, max(0.0, 2.0 * radius * float((directions @ direction).min()))
            )
            if step <= EPS:
                continue
            out[a] = direction * step
        return out

    def destination_respects_safe_balls(self, snapshot: Snapshot3, *, eps: float = 1e-9) -> bool:
        """Verification helper: the destination lies in every distant safe ball."""
        destination = self.compute(snapshot)
        v_y = snapshot.farthest_distance()
        radius = self.safe_radius(v_y)
        for neighbour in snapshot.distant_neighbours(self.close_fraction):
            if neighbour.norm() <= EPS:
                continue
            center = neighbour.unit() * radius
            if destination.distance_to(center) > radius + eps:
                return False
        return True
