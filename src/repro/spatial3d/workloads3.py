"""Connected 3D initial configurations for the Section-6.3.2 extension."""

from __future__ import annotations

import math
from typing import List, Union

import numpy as np

from .model3 import Configuration3, is_connected3
from .vector3 import Vector3

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def line_configuration3(
    n: int, *, spacing: float = 0.8, visibility_range: float = 1.0
) -> Configuration3:
    """``n`` robots spaced along the x axis."""
    if n < 1:
        raise ValueError("need at least one robot")
    if spacing > visibility_range:
        raise ValueError("spacing beyond the visibility range would disconnect the line")
    return Configuration3.of([Vector3(i * spacing, 0.0, 0.0) for i in range(n)], visibility_range)


def lattice_configuration3(
    side: int, *, spacing: float = 0.55, visibility_range: float = 1.0
) -> Configuration3:
    """A ``side^3`` cubic lattice of robots."""
    if side < 1:
        raise ValueError("lattice side must be at least 1")
    if spacing > visibility_range:
        raise ValueError("spacing beyond the visibility range would disconnect the lattice")
    points = [
        Vector3(x * spacing, y * spacing, z * spacing)
        for x in range(side)
        for y in range(side)
        for z in range(side)
    ]
    return Configuration3.of(points, visibility_range)


def random_connected_configuration3(
    n: int,
    *,
    visibility_range: float = 1.0,
    attach_radius_fraction: float = 0.9,
    seed: RngLike = 0,
) -> Configuration3:
    """A random connected 3D configuration built by incremental attachment."""
    if n < 1:
        raise ValueError("need at least one robot")
    if not 0.0 < attach_radius_fraction <= 1.0:
        raise ValueError("attach_radius_fraction must lie in (0, 1]")
    rng = _rng(seed)
    points: List[Vector3] = [Vector3.zero()]
    max_radius = attach_radius_fraction * visibility_range
    while len(points) < n:
        anchor = points[int(rng.integers(0, len(points)))]
        radius = max_radius * (0.6 + 0.4 * rng.random())
        azimuth = rng.uniform(0.0, 2.0 * math.pi)
        polar = math.acos(rng.uniform(-1.0, 1.0))
        points.append(anchor + Vector3.spherical(radius, azimuth, polar))
    configuration = Configuration3.of(points, visibility_range)
    assert is_connected3(configuration.positions, visibility_range)
    return configuration
