"""Katreniak's 1-Async convergence algorithm (SIROCCO 2011), as reviewed in the paper.

Katreniak's algorithm does not assume knowledge of the visibility range:
each robot works with the lower bound ``V_Z`` given by its farthest
visible neighbour.  Its safe region with respect to a neighbour at
relative position ``p`` is the union of

* a disk of radius ``|p|/4`` centred a quarter of the way toward the
  neighbour, and
* a disk of radius ``(V_Z - |p|)/4`` centred at the robot itself,

and the robot moves as far as possible toward a congregation goal while
remaining inside the composite safe region (the intersection of the
per-neighbour unions).

The paper only needs the *shape* of these safe regions (Figure 3 and the
observation that the algorithm fails for sufficiently large ``k`` in
k-Async); the congregation goal used here is the centre of the smallest
enclosing circle of the visible robots, the same goal as Ando et al.,
which is a documented substitution (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.point import Point
from ..geometry.sec import sec_center
from ..geometry.tolerances import EPS
from ..model.snapshot import Snapshot
from .base import ConvergenceAlgorithm
from .safe_regions import katreniak_safe_region_local, max_step_within_regions


@dataclass
class KatreniakAlgorithm(ConvergenceAlgorithm):
    """Katreniak's safe regions with a SEC-centre congregation goal."""

    #: Number of samples used to find the farthest feasible prefix of the
    #: move inside the (non-convex) composite safe region.
    ray_samples: int = 512

    requires_visibility_range = False

    def __post_init__(self) -> None:
        self.name = "katreniak"
        if self.ray_samples < 8:
            raise ValueError("ray_samples must be at least 8")

    def compute(self, snapshot: Snapshot) -> Point:
        """Move toward the SEC centre as far as the composite safe region allows."""
        if not snapshot.has_neighbours():
            return Point.origin()
        v_z = snapshot.farthest_distance()
        if v_z <= EPS:
            return Point.origin()

        goal = sec_center(snapshot.with_self())
        if goal.norm() <= EPS:
            return Point.origin()

        regions = [katreniak_safe_region_local(p, v_z) for p in snapshot.neighbours]
        return max_step_within_regions(Point.origin(), goal, regions, samples=self.ray_samples)

    def safe_regions(self, snapshot: Snapshot):
        """The per-neighbour composite safe regions of this activation."""
        v_z = snapshot.farthest_distance()
        return [katreniak_safe_region_local(p, v_z) for p in snapshot.neighbours]

    def destination_respects_safe_regions(self, snapshot: Snapshot, *, eps: float = 1e-9) -> bool:
        """Check that the destination lies in every neighbour's composite region.

        Each composite region is a two-disk union, so the verdict is a
        batched union-locator query per region — bit-identical to the
        scalar ``contains`` conjunction it replaces.
        """
        destination = self.compute(snapshot)
        px = np.array([destination.x])
        py = np.array([destination.y])
        return all(
            bool(r.contains_array(px, py, eps=eps)[0]) for r in self.safe_regions(snapshot)
        )
