"""Convergence algorithms: the paper's contribution and every baseline it discusses."""

from .ando import AndoAlgorithm
from .base import ConvergenceAlgorithm, StationaryAlgorithm
from .cog import CenterOfGravityAlgorithm
from .gcm import MinboxAlgorithm
from .katreniak import KatreniakAlgorithm
from .kknps import KKNPSAlgorithm
from .safe_regions import (
    KatreniakSafeRegion,
    ando_safe_region,
    ando_safe_region_local,
    katreniak_safe_region,
    katreniak_safe_region_local,
    kknps_max_planned_move,
    kknps_safe_region,
    kknps_safe_region_local,
    max_step_within_disks,
    max_step_within_regions,
    point_respects_disks,
)

__all__ = [
    "AndoAlgorithm",
    "CenterOfGravityAlgorithm",
    "ConvergenceAlgorithm",
    "KKNPSAlgorithm",
    "KatreniakAlgorithm",
    "KatreniakSafeRegion",
    "MinboxAlgorithm",
    "StationaryAlgorithm",
    "ando_safe_region",
    "ando_safe_region_local",
    "katreniak_safe_region",
    "katreniak_safe_region_local",
    "kknps_max_planned_move",
    "kknps_safe_region",
    "kknps_safe_region_local",
    "max_step_within_disks",
    "max_step_within_regions",
    "point_respects_disks",
]
