"""The Go-To-The-Centre-Of-Minbox (GCM) algorithm of Cord-Landwehr et al.

The asymptotically optimal unlimited-visibility convergence baseline
reviewed in Section 1.2.2 of the paper: every activated robot moves toward
the centre of the minimal axis-aligned box containing all robot positions
(assuming agreement on the coordinate axes).  With full synchrony the
diameter of the convex hull halves in a constant number of rounds, versus
the ``Theta(n)``-to-``O(n^2)`` behaviour of the centre-of-gravity
algorithm; ``bench_baselines_unlimited`` reproduces that contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry.minbox import minbox_center
from ..geometry.point import Point
from ..model.snapshot import Snapshot
from .base import ConvergenceAlgorithm


@dataclass
class MinboxAlgorithm(ConvergenceAlgorithm):
    """Move to (a fraction of the way toward) the centre of the minbox."""

    #: Fraction of the distance toward the minbox centre to plan.
    step_fraction: float = 1.0

    assumes_unlimited_visibility = True
    requires_visibility_range = False

    def __post_init__(self) -> None:
        self.name = "gcm"
        if not 0.0 < self.step_fraction <= 1.0:
            raise ValueError("step_fraction must lie in (0, 1]")

    def compute(self, snapshot: Snapshot) -> Point:
        """Destination: the centre of the minimal axis-aligned bounding box."""
        if not snapshot.has_neighbours():
            return Point.origin()
        goal = minbox_center(snapshot.with_self())
        return goal * self.step_fraction
