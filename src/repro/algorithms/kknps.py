"""The paper's convergence algorithm (Kirkpatrick-Kostitsyna-Navarra-Prencipe-Santoro).

Upon activation a robot ``Y``:

1. observes its visible neighbours and sets ``V_Y`` to the distance of the
   farthest one (a tentative lower bound on the unknown range ``V``);
2. classifies neighbours farther than ``V_Y / 2`` as *distant*;
3. builds, for every distant neighbour ``X``, the ``1/k``-scaled safe
   region ``S^{V_Y/(8k)}_{Y}(X)``: a disk of radius ``V_Y/(8k)`` centred at
   that same distance from ``Y`` toward ``X``;
4. chooses its destination (Section 5 of the paper):

   * if the distant neighbours do not fit in an open half-plane through
     ``Y`` (``Y`` is in the convex hull of their directions) the
     intersection of the safe regions is ``Y`` itself, so ``Y`` stays put;
   * with exactly one distant neighbour, the destination is the centre of
     its safe region;
   * with two or more, the destination is the midpoint of the segment
     joining the centres of the safe regions of the two distant
     neighbours that bound the smallest sector containing all distant
     neighbours (the extreme directions).

Every planned move has length at most ``V_Y / 8`` (at most ``V/8``).

Error tolerance (Section 6.1): a bounded relative distance error
``delta`` is handled by scaling the perceived ``V_Y`` by ``1/(1+delta)``;
a bounded-skew compass distortion is handled by shrinking the safe-region
radius so that it is contained in the intersection of the safe regions of
all possible true neighbour directions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..geometry.angles import extreme_directions, fits_in_open_halfplane
from ..geometry.point import Point
from ..geometry.tolerances import EPS
from ..model.snapshot import Snapshot
from .base import ConvergenceAlgorithm
from .safe_regions import kknps_safe_region_local


@dataclass
class KKNPSAlgorithm(ConvergenceAlgorithm):
    """The paper's k-Async cohesive-convergence algorithm.

    Parameters
    ----------
    k:
        The asynchrony bound the system is promised to respect; the safe
        regions (and hence every move) are scaled by ``1/k``.  ``k = 1``
        is the base formulation (sufficient for SSync, 1-NestA and
        1-Async).
    distance_error_tolerance:
        The relative distance-measurement error bound ``delta`` the
        algorithm is designed to tolerate; the perceived ``V_Y`` is scaled
        by ``1/(1 + delta)`` so that it never overestimates ``V``.
    skew_tolerance:
        The compass-skew bound ``lambda`` tolerated; safe regions are
        shrunk by the factor ``max(0, 1 - 2*lambda)``, a conservative
        inner approximation of the intersection over all consistent true
        directions.
    close_fraction:
        The distant/close threshold as a fraction of ``V_Y`` (the paper
        uses 1/2 and notes the choice is somewhat arbitrary).
    radius_divisor:
        The safe-region radius is ``V_Y / radius_divisor`` before scaling
        (the paper uses 8; exposed for the ablation bench).
    """

    k: int = 1
    distance_error_tolerance: float = 0.0
    skew_tolerance: float = 0.0
    close_fraction: float = 0.5
    radius_divisor: float = 8.0

    requires_visibility_range = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("the asynchrony bound k must be at least 1")
        if self.distance_error_tolerance < 0.0 or self.distance_error_tolerance >= 1.0:
            raise ValueError("distance error tolerance must lie in [0, 1)")
        if self.skew_tolerance < 0.0 or self.skew_tolerance >= 0.5:
            raise ValueError("skew tolerance must lie in [0, 0.5)")
        if not 0.0 < self.close_fraction < 1.0:
            raise ValueError("close_fraction must lie in (0, 1)")
        if self.radius_divisor < 4.0:
            raise ValueError("radius divisor below 4 violates the safe-region analysis")
        self.name = f"kknps(k={self.k})"

    # -- derived quantities -------------------------------------------------------
    @property
    def alpha(self) -> float:
        """The scaling factor ``1/k`` applied to the basic safe regions."""
        return 1.0 / float(self.k)

    def effective_radius(self, v_lower_bound: float) -> float:
        """Radius of the (scaled, error-shrunk) safe region for bound ``v_lower_bound``."""
        shrink = max(0.0, 1.0 - 2.0 * self.skew_tolerance)
        return self.alpha * v_lower_bound / self.radius_divisor * shrink

    def perceived_range_bound(self, snapshot: Snapshot) -> float:
        """The (error-corrected) lower bound ``V_Y`` used for this activation."""
        v_y = snapshot.farthest_distance()
        if self.distance_error_tolerance > 0.0:
            v_y /= 1.0 + self.distance_error_tolerance
        return v_y

    def distant_neighbours(self, snapshot: Snapshot) -> List[Point]:
        """The perceived positions classified as distant for this activation."""
        v_y = snapshot.farthest_distance()
        if v_y <= EPS:
            return []
        threshold = self.close_fraction * v_y
        norms = snapshot.norms
        distant = [
            p for p, r in zip(snapshot.neighbours, norms) if r > threshold + EPS
        ]
        if not distant:
            # The farthest neighbour is distant by definition.
            distant = [snapshot.farthest_neighbour()]
        return distant

    def max_move_length(self, snapshot: Snapshot) -> float:
        """Upper bound on the move this activation may plan (``V_Y/(8k)``)."""
        return self.effective_radius(self.perceived_range_bound(snapshot))

    # -- the motion rule -------------------------------------------------------------
    def compute(self, snapshot: Snapshot) -> Point:
        """Destination of the observing robot, in snapshot-local coordinates."""
        if not snapshot.has_neighbours():
            return Point.origin()

        v_y = self.perceived_range_bound(snapshot)
        if v_y <= EPS:
            return Point.origin()

        distant = self.distant_neighbours(snapshot)
        directions = [p.unit() for p in distant if p.norm() > EPS]
        if not directions:
            return Point.origin()

        # If the robot lies in the convex hull of its distant neighbours'
        # directions, the intersection of the safe regions is its own
        # location: stay put.
        if not fits_in_open_halfplane(directions):
            return Point.origin()

        radius = self.effective_radius(v_y)
        if radius <= EPS:
            return Point.origin()

        if len(directions) == 1:
            return directions[0] * radius

        i, j = extreme_directions(directions)
        center_i = directions[i] * radius
        center_j = directions[j] * radius
        return center_i.midpoint(center_j)

    def compute_relative(
        self, perceived: np.ndarray, visibility_range: float | None = None
    ) -> Point:
        """The float-core form of :meth:`compute` for the round fast path.

        ``perceived`` holds the perceived neighbour rows in snapshot
        order.  The norms are the scalar ``math.hypot`` values a
        :class:`Snapshot` would cache, the distant threshold uses the raw
        ``V_Y`` exactly as :meth:`distant_neighbours` does, and
        :class:`Point` objects are built only for the (typically tiny)
        distant subset so the direction helpers run verbatim —
        bit-identical destination, a fraction of the allocation.
        """
        rows = perceived.tolist()
        if not rows:
            return Point.origin()
        norms = [math.hypot(px, py) for px, py in rows]
        v_raw = max(norms)
        v_y = v_raw
        if self.distance_error_tolerance > 0.0:
            v_y = v_raw / (1.0 + self.distance_error_tolerance)
        if v_y <= EPS:
            return Point.origin()
        threshold = self.close_fraction * v_raw
        distant = [
            Point(px, py) for (px, py), r in zip(rows, norms) if r > threshold + EPS
        ]
        if not distant:
            farthest = max(range(len(norms)), key=norms.__getitem__)
            distant = [Point(rows[farthest][0], rows[farthest][1])]
        directions = [p.unit() for p in distant if p.norm() > EPS]
        if not directions:
            return Point.origin()
        if not fits_in_open_halfplane(directions):
            return Point.origin()
        radius = self.effective_radius(v_y)
        if radius <= EPS:
            return Point.origin()
        if len(directions) == 1:
            return directions[0] * radius
        i, j = extreme_directions(directions)
        center_i = directions[i] * radius
        center_j = directions[j] * radius
        return center_i.midpoint(center_j)

    def decide_consts(self):
        """The scalar constants the batched decide cores consume.

        The tuple order matches :data:`repro.engine.fanout.LaneConsts`:
        ``(close_fraction, distance_error_tolerance, alpha,
        radius_divisor, shrink)``.
        """
        return (
            self.close_fraction,
            self.distance_error_tolerance,
            self.alpha,
            self.radius_divisor,
            max(0.0, 1.0 - 2.0 * self.skew_tolerance),
        )

    def compute_array_rounds(
        self,
        px: np.ndarray,
        py: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Whole-round batch form of :meth:`compute_relative`.

        ``px``/``py`` are the flat perceived neighbour coordinates of many
        activations stacked end to end; activation ``a`` owns the rows
        ``starts[a]:ends[a]``.  Returns an ``(acts, 2)`` array whose row
        ``a`` is bit-identical to
        ``compute_relative(rows[starts[a]:ends[a]])`` — the batch core
        keeps the per-row ``math.hypot`` norms and evaluates everything
        built on them in the scalar core's operation order (see
        :func:`repro.engine.fanout.kknps_destinations_all`).
        """
        # Imported lazily: ``repro.engine`` imports the algorithms package
        # at its own import time, so a module-level import here would cycle.
        from ..engine.fanout import kknps_destinations_all

        acts = len(starts)
        if out is None:
            out = np.zeros((acts, 2), dtype=np.float64)
        if acts:
            kknps_destinations_all(
                px, py, starts, ends,
                np.zeros(acts, dtype=np.int64), [self.decide_consts()], out,
            )
        return out

    def describe(self) -> str:
        """One-line description including the error tolerances."""
        parts = [self.name]
        if self.distance_error_tolerance > 0.0:
            parts.append(f"delta={self.distance_error_tolerance}")
        if self.skew_tolerance > 0.0:
            parts.append(f"lambda={self.skew_tolerance}")
        if self.radius_divisor != 8.0:
            parts.append(f"divisor={self.radius_divisor}")
        return ", ".join(parts)

    # -- introspection used by tests and the verification benches ---------------------
    def safe_regions(self, snapshot: Snapshot):
        """The (scaled) safe regions of this activation's distant neighbours."""
        v_y = self.perceived_range_bound(snapshot)
        shrink = max(0.0, 1.0 - 2.0 * self.skew_tolerance)
        return [
            kknps_safe_region_local(
                p, v_y * shrink, alpha=self.alpha, radius_divisor=self.radius_divisor
            )
            for p in self.distant_neighbours(snapshot)
        ]

    def destination_respects_safe_regions(self, snapshot: Snapshot, *, eps: float = 1e-9) -> bool:
        """Check that the computed destination lies in every distant safe region."""
        from ..geometry.pointloc import points_in_all_disks

        destination = self.compute(snapshot)
        verdict = points_in_all_disks(
            self.safe_regions(snapshot),
            np.array([destination.x]),
            np.array([destination.y]),
            eps=eps,
        )
        return bool(verdict[0])
