"""The Go-To-The-Centre-Of-Gravity (CoG) algorithm of Cohen and Peleg.

The unlimited-visibility baseline reviewed in Section 1.2.2 of the paper:
every activated robot moves to the centre of gravity (arithmetic mean) of
all robot positions.  Cohen and Peleg proved convergence in Async with a
convergence rate of ``O(n^2)`` rounds to halve the diameter of the convex
hull; the ``bench_baselines_unlimited`` bench measures that growth against
the asymptotically optimal GCM baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry.point import Point, centroid
from ..model.snapshot import Snapshot
from .base import ConvergenceAlgorithm


@dataclass
class CenterOfGravityAlgorithm(ConvergenceAlgorithm):
    """Move to (a fraction of the way toward) the centre of gravity."""

    #: Fraction of the distance toward the centre of gravity to plan; 1.0
    #: is the classical algorithm.
    step_fraction: float = 1.0

    assumes_unlimited_visibility = True
    requires_visibility_range = False

    def __post_init__(self) -> None:
        self.name = "cog"
        if not 0.0 < self.step_fraction <= 1.0:
            raise ValueError("step_fraction must lie in (0, 1]")

    def compute(self, snapshot: Snapshot) -> Point:
        """Destination: the centre of gravity of all visible robots and itself."""
        if not snapshot.has_neighbours():
            return Point.origin()
        goal = centroid(snapshot.with_self())
        return goal * self.step_fraction
