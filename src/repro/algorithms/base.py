"""The abstract interface every convergence algorithm implements.

An algorithm in the OBLOT model is a pure function from a snapshot (the
perceived relative positions of visible robots, in the robot's private
coordinate system) to a destination point in that same coordinate system.
It has no memory across activations, no identity, and no access to global
information beyond what the snapshot carries.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..geometry.point import Point
from ..model.snapshot import Snapshot


class ConvergenceAlgorithm(abc.ABC):
    """A memoryless motion rule: snapshot in, destination out.

    Destinations are relative to the observing robot (which sits at the
    origin of its snapshot); returning the origin means a nil movement.
    """

    #: Human-readable name used in experiment tables.
    name: str = "abstract"

    #: Whether the algorithm needs the common visibility range ``V`` to be
    #: revealed in its snapshots (Ando et al.'s algorithm does; the paper's
    #: algorithm and Katreniak's do not).
    requires_visibility_range: bool = False

    #: Whether the algorithm assumes unlimited visibility (the CoG and GCM
    #: baselines from Section 1.2.2 do).
    assumes_unlimited_visibility: bool = False

    @abc.abstractmethod
    def compute(self, snapshot: Snapshot) -> Point:
        """Destination for this activation, in snapshot-local coordinates."""

    # -- conveniences shared by implementations ---------------------------------
    def _known_range(self, snapshot: Snapshot) -> float:
        """The visibility range the algorithm is entitled to use.

        Raises when the algorithm declared it needs ``V`` but the engine
        did not reveal it.
        """
        if snapshot.visibility_range is None:
            raise ValueError(
                f"{self.name} requires the visibility range but the snapshot does not carry it"
            )
        return snapshot.visibility_range

    def describe(self) -> str:
        """One-line description used in reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class StationaryAlgorithm(ConvergenceAlgorithm):
    """An algorithm that never moves (useful as a control in tests)."""

    name = "stationary"

    def compute(self, snapshot: Snapshot) -> Point:
        """Always perform the nil movement."""
        return Point.origin()
