"""Ando, Oasa, Suzuki and Yamashita's Go-To-The-Centre-Of-The-SEC algorithm.

The classical limited-visibility convergence algorithm (reviewed in
Section 3.1 of the paper).  Upon activation a robot:

* observes every robot within the known visibility range ``V``;
* computes the centre of the smallest enclosing circle (SEC) of the
  observed robots (including itself);
* moves as far as possible toward that centre while staying inside the
  safe region of every neighbour — the disk of radius ``V/2`` centred at
  the midpoint between the robot and that neighbour.

The algorithm is correct under SSync but, as Figure 4 of the paper shows,
fails to preserve visibility under 1-Async and 2-NestA scheduling; the
``repro.adversary.ando_counterexample`` module reproduces that failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry.point import Point
from ..geometry.sec import sec_center
from ..geometry.tolerances import EPS
from ..model.snapshot import Snapshot
from .base import ConvergenceAlgorithm
from .safe_regions import ando_safe_region_local, max_step_within_disks


@dataclass
class AndoAlgorithm(ConvergenceAlgorithm):
    """Go-To-The-Centre-Of-The-SEC with cautious (safe-region-limited) moves."""

    #: Optional cap on the length of a single move (the original algorithm
    #: also limits moves to sigma = V/2-ish constants in some presentations;
    #: ``None`` means the only limit is the safe regions themselves).
    max_move: float | None = None

    requires_visibility_range = True

    def __post_init__(self) -> None:
        self.name = "ando"
        if self.max_move is not None and self.max_move <= 0.0:
            raise ValueError("max_move must be positive when given")

    def compute(self, snapshot: Snapshot) -> Point:
        """Move toward the SEC centre of the visible robots, limited by safe regions."""
        if not snapshot.has_neighbours():
            return Point.origin()
        visibility_range = self._known_range(snapshot)

        points = snapshot.with_self()
        goal = sec_center(points)
        if goal.norm() <= EPS:
            return Point.origin()
        if self.max_move is not None and goal.norm() > self.max_move:
            goal = goal.unit() * self.max_move

        safe_disks = [
            ando_safe_region_local(p, visibility_range) for p in snapshot.neighbours
        ]
        return max_step_within_disks(Point.origin(), goal, safe_disks)

    def safe_regions(self, snapshot: Snapshot):
        """The per-neighbour safe disks of this activation (for tests/benches)."""
        visibility_range = self._known_range(snapshot)
        return [ando_safe_region_local(p, visibility_range) for p in snapshot.neighbours]

    def destination_respects_safe_regions(self, snapshot: Snapshot, *, eps: float = 1e-9) -> bool:
        """Check that the computed destination lies in every neighbour's safe disk."""
        destination = self.compute(snapshot)
        return all(d.contains(destination, eps=eps) for d in self.safe_regions(snapshot))
