"""Ando, Oasa, Suzuki and Yamashita's Go-To-The-Centre-Of-The-SEC algorithm.

The classical limited-visibility convergence algorithm (reviewed in
Section 3.1 of the paper).  Upon activation a robot:

* observes every robot within the known visibility range ``V``;
* computes the centre of the smallest enclosing circle (SEC) of the
  observed robots (including itself);
* moves as far as possible toward that centre while staying inside the
  safe region of every neighbour — the disk of radius ``V/2`` centred at
  the midpoint between the robot and that neighbour.

The algorithm is correct under SSync but, as Figure 4 of the paper shows,
fails to preserve visibility under 1-Async and 2-NestA scheduling; the
``repro.adversary.ando_counterexample`` module reproduces that failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geometry.point import Point
from ..geometry.sec import sec_center, sec_center_array
from ..geometry.tolerances import EPS
from ..model.snapshot import Snapshot
from .base import ConvergenceAlgorithm
from .safe_regions import ando_safe_region_local, max_step_within_disks


@dataclass
class AndoAlgorithm(ConvergenceAlgorithm):
    """Go-To-The-Centre-Of-The-SEC with cautious (safe-region-limited) moves."""

    #: Optional cap on the length of a single move (the original algorithm
    #: also limits moves to sigma = V/2-ish constants in some presentations;
    #: ``None`` means the only limit is the safe regions themselves).
    max_move: float | None = None

    requires_visibility_range = True

    def __post_init__(self) -> None:
        self.name = "ando"
        if self.max_move is not None and self.max_move <= 0.0:
            raise ValueError("max_move must be positive when given")

    def compute(self, snapshot: Snapshot) -> Point:
        """Move toward the SEC centre of the visible robots, limited by safe regions."""
        if not snapshot.has_neighbours():
            return Point.origin()
        visibility_range = self._known_range(snapshot)

        points = snapshot.with_self()
        goal = sec_center(points)
        if goal.norm() <= EPS:
            return Point.origin()
        if self.max_move is not None and goal.norm() > self.max_move:
            goal = goal.unit() * self.max_move

        safe_disks = [
            ando_safe_region_local(p, visibility_range) for p in snapshot.neighbours
        ]
        return max_step_within_disks(Point.origin(), goal, safe_disks)

    def compute_relative(
        self, perceived: np.ndarray, visibility_range: float | None = None
    ) -> Point:
        """The float-core form of :meth:`compute` for the round fast path.

        ``perceived`` holds the perceived neighbour rows in snapshot
        order; the SEC goes through the memoised
        :func:`~repro.geometry.sec.sec_center_array` and the safe-disk
        clamp replicates :func:`max_step_within_disks` on plain floats —
        same formulas, same tolerances, bit-identical destination.
        """
        m = perceived.shape[0]
        if m == 0:
            return Point.origin()
        if visibility_range is None:
            raise ValueError(
                f"{self.name} requires the visibility range but the snapshot does not carry it"
            )
        with_self = np.empty((m + 1, 2), dtype=float)
        with_self[0] = 0.0
        with_self[1:] = perceived
        gx, gy = sec_center_array(with_self)
        gnorm = math.hypot(gx, gy)
        if gnorm <= EPS:
            return Point.origin()
        if self.max_move is not None and gnorm > self.max_move:
            gx = (gx / gnorm) * self.max_move
            gy = (gy / gnorm) * self.max_move
        dirx, diry = gx - 0.0, gy - 0.0
        if math.hypot(dirx, diry) <= 1e-12:
            return Point.origin()
        t_max = 1.0
        a = dirx * dirx + diry * diry
        half = visibility_range / 2.0
        for px, py in perceived.tolist():
            cx = (0.0 + px) / 2.0
            cy = (0.0 + py) / 2.0
            fx, fy = 0.0 - cx, 0.0 - cy
            b = 2.0 * (fx * dirx + fy * diry)
            c = (fx * fx + fy * fy) - half * half
            if c > 1e-12:
                return Point.origin()
            discriminant = b * b - 4.0 * a * c
            if discriminant < 0.0:
                discriminant = 0.0
            t_exit = (-b + discriminant ** 0.5) / (2.0 * a)
            t_max = min(t_max, max(0.0, t_exit))
        return Point(0.0 + dirx * t_max, 0.0 + diry * t_max)

    def safe_regions(self, snapshot: Snapshot):
        """The per-neighbour safe disks of this activation (for tests/benches)."""
        visibility_range = self._known_range(snapshot)
        return [ando_safe_region_local(p, visibility_range) for p in snapshot.neighbours]

    def destination_respects_safe_regions(self, snapshot: Snapshot, *, eps: float = 1e-9) -> bool:
        """Check that the computed destination lies in every neighbour's safe disk."""
        from ..geometry.pointloc import points_in_all_disks

        destination = self.compute(snapshot)
        verdict = points_in_all_disks(
            self.safe_regions(snapshot),
            np.array([destination.x]),
            np.array([destination.y]),
            eps=eps,
        )
        return bool(verdict[0])
