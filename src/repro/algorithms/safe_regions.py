"""Safe regions for motion, for all three limited-visibility algorithms.

Figure 3 of the paper contrasts the safe region a robot ``Y`` (at ``Y0``)
uses with respect to a visible robot ``X`` (at ``X0``) in three schemes:

* **Ando et al.**: the disk of radius ``V/2`` centred at the midpoint of
  ``X0 Y0`` (requires knowing ``V``);
* **Katreniak**: the union of a disk of radius ``|X0 Y0|/4`` centred at
  ``(X0 + 3 Y0)/4`` and a disk of radius ``(V_Y - |X0 Y0|)/4`` centred at
  ``Y0`` (``V_Y`` = distance to the farthest visible neighbour);
* **this paper (KKNPS)**: for *distant* neighbours only, the disk of
  radius ``V_Y/8`` centred at distance ``V_Y/8`` from ``Y0`` in the
  direction of ``X0`` — scaled by ``1/k`` in the k-Async/k-NestA models.

Everything here is expressed in the observing robot's coordinates with the
observer at the origin, which is how algorithms consume the regions; the
module also exposes absolute-coordinate variants for the analysis code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..geometry.disk import Disk
from ..geometry.point import Point, PointLike
from ..geometry.region import offset_disk
from ..geometry.tolerances import EPS


# -- paper's (KKNPS) safe regions -------------------------------------------------

def kknps_safe_region(
    observer: PointLike, neighbour: PointLike, v_lower_bound: float, *, alpha: float = 1.0,
    radius_divisor: float = 8.0,
) -> Disk:
    """The paper's (possibly ``alpha``-scaled) basic safe region.

    ``S^{alpha * V_Y / 8}_{Y0}(X0)``: a disk of radius ``alpha * V_Y / 8``
    centred at that same distance from the observer in the direction of
    the neighbour.  ``radius_divisor`` exposes the constant 8 for the
    ablation bench (anything at least some positive constant works for the
    proofs, per the paper's footnote 11).
    """
    radius = alpha * v_lower_bound / radius_divisor
    return offset_disk(observer, neighbour, radius)


def kknps_safe_region_local(
    neighbour: PointLike, v_lower_bound: float, *, alpha: float = 1.0, radius_divisor: float = 8.0
) -> Disk:
    """Observer-at-origin version of :func:`kknps_safe_region`."""
    return kknps_safe_region(Point.origin(), neighbour, v_lower_bound, alpha=alpha,
                             radius_divisor=radius_divisor)


def kknps_max_planned_move(v_lower_bound: float, *, alpha: float = 1.0) -> float:
    """Largest move the paper's destination rule can plan: ``alpha * V_Y / 8``."""
    return alpha * v_lower_bound / 8.0


# -- Ando et al. safe regions -------------------------------------------------------

def ando_safe_region(observer: PointLike, neighbour: PointLike, visibility_range: float) -> Disk:
    """Ando et al.'s safe region: disk of radius ``V/2`` at the midpoint."""
    observer, neighbour = Point.of(observer), Point.of(neighbour)
    return Disk(observer.midpoint(neighbour), visibility_range / 2.0)


def ando_safe_region_local(neighbour: PointLike, visibility_range: float) -> Disk:
    """Observer-at-origin version of :func:`ando_safe_region`."""
    return ando_safe_region(Point.origin(), neighbour, visibility_range)


# -- Katreniak's safe regions --------------------------------------------------------

@dataclass(frozen=True)
class KatreniakSafeRegion:
    """Katreniak's two-disk union safe region for one neighbour."""

    near_disk: Disk
    slack_disk: Disk

    def contains(self, point: PointLike, *, eps: float = EPS) -> bool:
        """Union membership."""
        return self.near_disk.contains(point, eps=eps) or self.slack_disk.contains(point, eps=eps)

    def contains_array(self, px: np.ndarray, py: np.ndarray, *, eps: float = EPS) -> np.ndarray:
        """Vectorized union membership, bit-identical to :meth:`contains`.

        Disjunction is order-independent, so OR-ing the two disks'
        :meth:`repro.geometry.disk.Disk.contains_array` verdicts matches
        the scalar short-circuit exactly.
        """
        return self.near_disk.contains_array(px, py, eps=eps) | self.slack_disk.contains_array(
            px, py, eps=eps
        )

    def disks(self) -> List[Disk]:
        """Both disks of the union."""
        return [self.near_disk, self.slack_disk]


def katreniak_safe_region(
    observer: PointLike, neighbour: PointLike, v_lower_bound: float
) -> KatreniakSafeRegion:
    """Katreniak's safe region of ``observer`` with respect to ``neighbour``.

    One disk of radius ``|X0 Y0| / 4`` centred at ``(X0 + 3 Y0) / 4`` (a
    quarter of the way toward the neighbour), united with a disk of radius
    ``(V_Y - |X0 Y0|) / 4`` centred at the observer itself.
    """
    observer, neighbour = Point.of(observer), Point.of(neighbour)
    gap = observer.distance_to(neighbour)
    near_center = observer + (neighbour - observer) * 0.25
    near = Disk(near_center, gap / 4.0)
    slack_radius = max(0.0, (v_lower_bound - gap) / 4.0)
    slack = Disk(observer, slack_radius)
    return KatreniakSafeRegion(near_disk=near, slack_disk=slack)


def katreniak_safe_region_local(
    neighbour: PointLike, v_lower_bound: float
) -> KatreniakSafeRegion:
    """Observer-at-origin version of :func:`katreniak_safe_region`."""
    return katreniak_safe_region(Point.origin(), neighbour, v_lower_bound)


# -- shared helpers -------------------------------------------------------------------

def point_respects_disks(point: PointLike, disks: Sequence[Disk], *, eps: float = EPS) -> bool:
    """True when ``point`` lies inside every disk of ``disks``."""
    return all(d.contains(point, eps=eps) for d in disks)


def points_respect_disks(
    px: np.ndarray, py: np.ndarray, disks: Sequence[Disk], *, eps: float = EPS
) -> np.ndarray:
    """Batched :func:`point_respects_disks` via the build-once locator."""
    from ..geometry.pointloc import points_in_all_disks

    return points_in_all_disks(disks, px, py, eps=eps)


def max_step_within_disks(
    origin: PointLike, goal: PointLike, disks: Sequence[Disk], *, eps: float = 1e-12
) -> Point:
    """Farthest point toward ``goal`` along the ray from ``origin`` inside all disks.

    Every disk is convex and assumed to contain ``origin``, so the feasible
    parameter set along the segment is an interval ``[0, t_max]``; the
    per-disk exit parameter is computed in closed form from the quadratic
    for the ray-circle intersection.
    """
    origin, goal = Point.of(origin), Point.of(goal)
    direction = goal - origin
    length = direction.norm()
    if length <= eps:
        return origin
    t_max = 1.0
    for disk in disks:
        f = origin - disk.center
        a = direction.norm_squared()
        b = 2.0 * f.dot(direction)
        c = f.norm_squared() - disk.radius * disk.radius
        if c > eps:
            # The origin is (numerically) outside this disk: no movement allowed.
            return origin
        discriminant = b * b - 4.0 * a * c
        if discriminant < 0.0:
            discriminant = 0.0
        t_exit = (-b + discriminant ** 0.5) / (2.0 * a)
        t_max = min(t_max, max(0.0, t_exit))
    return origin + direction * t_max


def _max_step_within_regions_loop(
    origin: Point, goal: Point, regions: Sequence[KatreniakSafeRegion], samples: int
) -> Point:
    """Reference sampling loop (also the fallback for unknown region types)."""
    best = origin
    for i in range(1, samples + 1):
        t = i / samples
        candidate = origin.lerp(goal, t)
        if all(region.contains(candidate) for region in regions):
            best = candidate
        else:
            break
    return best


def max_step_within_regions(
    origin: PointLike,
    goal: PointLike,
    regions: Sequence[KatreniakSafeRegion],
    *,
    samples: int = 512,
) -> Point:
    """Farthest prefix of the segment ``origin -> goal`` inside all union regions.

    Katreniak's composite region is an intersection of unions of disks and
    is not convex, so the feasible set along the ray need not be an
    interval; the largest feasible *prefix* is found by sampling.

    The candidate grid is evaluated in one vectorized pass that reproduces
    the sampling loop's arithmetic exactly — the candidate coordinates use
    ``Point.lerp``'s expression elementwise, each containment test feeds
    the same ``math.hypot`` distances into the same comparison — so the
    first failing sample (and therefore the returned point) is identical
    to the loop's.  Region objects that are not two-disk unions fall back
    to the loop.
    """
    origin, goal = Point.of(origin), Point.of(goal)
    if origin.distance_to(goal) <= EPS:
        return origin
    if not all(type(region) is KatreniakSafeRegion for region in regions):
        return _max_step_within_regions_loop(origin, goal, regions, samples)
    # Candidate coordinates, term-for-term with Point.lerp.
    ts = np.arange(1, samples + 1, dtype=np.float64) / samples
    px = origin.x + (goal.x - origin.x) * ts
    py = origin.y + (goal.y - origin.y) * ts
    feasible = np.ones(samples, dtype=bool)
    for region in regions:
        # Disk.contains_array feeds the same per-candidate
        # ``math.hypot(cx - px, cy - py) <= radius + eps`` decision.
        feasible &= region.contains_array(px, py)
        if not feasible.any():
            break
    failing = np.flatnonzero(~feasible)
    if not len(failing):
        prefix = samples
    else:
        prefix = int(failing[0])
    if prefix == 0:
        return origin
    return origin.lerp(goal, prefix / samples)
