"""Sweep execution over pluggable backends, with JSONL persistence and resumption.

The runner is deliberately boring: :func:`execute_run` is a pure function
from a :class:`~repro.sweeps.spec.RunSpec` to a flat, JSON-serializable
result row, and :class:`SweepRunner` maps it over the runs through an
:class:`~repro.sweeps.backends.ExecutionBackend` — serial in-process (the
reference semantics), the static ``multiprocessing`` pool, a
work-stealing pool, or socket workers.  Because every run rebuilds its
workload, algorithm, scheduler and RNG from the spec's names and seed, a
row is identical no matter which process produced it; the only field that
varies between executions is ``wall_time_s``, which :data:`TIMING_FIELDS`
names so comparisons can drop it.

Consumption is incremental: the runner appends each row to the JSONL
file **as it arrives** from the backend (crash-safe — a sweep killed
mid-run resumes losslessly), folds it into a
:class:`~repro.analysis.streaming.StreamingAggregator`, and drives the
progress callbacks with a cost-model ETA.  On re-run with
``resume=True`` the runner loads the completed run keys from the file
and executes only the missing runs.

Two layers of dedup stack on top of each other:

* **Per-sweep** — the JSONL file: completed keys found in it are never
  executed again (the original resume contract).
* **Global** — an optional :class:`~repro.store.ResultsStore`
  (``store=``): before dispatching to any backend the runner asks the
  store for every missing key and short-circuits hits straight into the
  row stream, bit-identical to recomputation.  Keys it will execute are
  *claimed* in the store so concurrent runners sharing the file compute
  each key exactly once between them — unclaimed keys are awaited and
  served from the peer's ingest (or stolen and executed locally when
  the claim's owner dies).  Every fresh row is written back through the
  store's crash-safe ingest path, and rows resumed from legacy JSONL
  files are imported on the way.
"""

from __future__ import annotations

import hashlib
import json
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.streaming import StreamingAggregator
from ..analysis.tables import TextTable
from ..engine.convergence import epochs_to_converge
from ..engine.simulator import SimulationConfig, run_simulation
from ..model.visibility import max_edge_stretch
from .backends import (
    BackendStats,
    ExecutionBackend,
    backend_names,
    make_backend,
)
from .factories import (
    activation_probability3,
    error_model3_xi,
    is_round_discipline3,
    make_algorithm,
    make_error_models,
    make_scheduler,
    make_scheduler3,
    make_workload,
    run_dimension,
)
from .spec import RunSpec, SweepSpec, check_unique_keys

#: Row fields that vary between executions of the same spec (dropped when
#: comparing parallel against serial results): wall time, and the
#: replicate-batching provenance marker (``batched_replicates`` is the
#: bundle size on rows the batched executor produced, absent on serial
#: rows — same results, different execution).
TIMING_FIELDS = ("wall_time_s", "batched_replicates")

#: How a row entered a sweep's row stream (the ``on_row`` callback's
#: ``source`` argument).
ROW_SOURCES = ("executed", "resumed", "store", "peer")


def planar_setup(spec: RunSpec):
    """Build the live objects for one planar run from its spec.

    Returns ``(configuration, algorithm, scheduler, config)`` — the exact
    inputs :func:`execute_run` feeds to the engine, factored out so the
    replicate-batched path (:mod:`repro.sweeps.replicate`) constructs
    bit-identical lanes.
    """
    configuration = make_workload(
        spec.workload, spec.n_robots, spec.seed, spec.visibility_range
    )
    algorithm = make_algorithm(spec.algorithm, spec.algorithm_params)
    scheduler = make_scheduler(spec.scheduler, spec.scheduler_k)
    perception, motion = make_error_models(spec.error_model)
    config = SimulationConfig(
        visibility_range=configuration.visibility_range,
        perception=perception,
        motion=motion,
        seed=spec.seed,
        max_activations=spec.max_activations,
        convergence_epsilon=spec.epsilon,
        k_bound=spec.k_bound,
    )
    return configuration, algorithm, scheduler, config


def planar_row(spec: RunSpec, configuration, result, wall_time_s: float) -> Dict[str, object]:
    """Assemble the flat result row for one completed planar run.

    Shared verbatim between :func:`execute_run` and the bundle executor so
    a replicate-batched row matches the serial row field-for-field (only
    :data:`TIMING_FIELDS` may differ).
    """
    epochs = epochs_to_converge(
        result.activation_end_times, result.metrics.samples, spec.epsilon
    )
    stretch = max_edge_stretch(
        result.initial_configuration.edges(), list(result.final_configuration.positions)
    )
    return {
        "run_key": spec.run_key,
        "dimension": 2,
        "algorithm": spec.algorithm,
        "scheduler": spec.scheduler,
        "workload": spec.workload,
        "n_robots": len(configuration),
        "seed": spec.seed,
        "error_model": spec.error_model,
        "scheduler_k": spec.scheduler_k,
        "k_bound": spec.k_bound,
        "epsilon": spec.epsilon,
        "max_activations": spec.max_activations,
        "visibility_range": configuration.visibility_range,
        "converged": result.converged,
        "convergence_time": result.convergence_time,
        "cohesion": result.cohesion_maintained,
        "activations": result.activations_processed,
        "epochs": epochs,
        "samples": len(result.metrics.samples),
        "initial_diameter": result.initial_hull_diameter,
        "final_diameter": result.final_hull_diameter,
        "final_min_pairwise": result.final_configuration.min_pairwise_distance(),
        "max_edge_stretch": stretch,
        "simulated_time": result.final_time,
        "wall_time_s": wall_time_s,
    }


def execute_run(spec: RunSpec) -> Dict[str, object]:
    """Execute one run spec and return its flat result row.

    The row contains only JSON-serializable scalars, is independent of the
    executing process, and is keyed by ``spec.run_key`` for resumption.
    Specs whose names resolve to the 3D registries execute on the 3D
    round engine (:func:`_execute_run3`); everything else runs the planar
    continuous-time engine.
    """
    if run_dimension(spec.algorithm, spec.scheduler, spec.workload, spec.error_model) == 3:
        return _execute_run3(spec)
    started = time.perf_counter()
    configuration, algorithm, scheduler, config = planar_setup(spec)
    result = run_simulation(configuration.positions, algorithm, scheduler, config)
    return planar_row(spec, configuration, result, time.perf_counter() - started)


def _execute_run3(spec: RunSpec) -> Dict[str, object]:
    """Execute one 3D run spec, same row contract as the planar path.

    Round disciplines (``fsync3``/``ssync3``) run the round engine; the
    continuous-time 3D schedulers (``kasync3``/``nesta3``/``async3``) run
    the unified kernel's 3D instantiation with the full error-model
    registry (minus the planar-only angular distortions).
    """
    if not is_round_discipline3(spec.scheduler):
        return _execute_run3_async(spec)
    return _execute_run3_round(spec)


def _execute_run3_round(spec: RunSpec) -> Dict[str, object]:
    """Execute one 3D round-engine run spec.

    The mapping from the spec's planar-flavoured fields:

    * ``max_activations`` bounds the number of *rounds* (the round engine's
      scheduling quantum); the ``activations`` row field still reports
      individual robot activations, and ``rounds`` reports rounds.
    * ``error_model`` selects the rigidity bound ``xi`` (the round loop has
      no perception-error machinery), via ``ERROR_MODEL3_XI``.
    * ``simulated_time`` is the executed round count as a float.
    """
    from ..spatial3d import (
        Simulation3Config,
        edge_index_array,
        max_edge_stretch3,
        min_pairwise_distance3_array,
        positions_as_array3,
        run_simulation3,
    )

    started = time.perf_counter()
    configuration = make_workload(
        spec.workload, spec.n_robots, spec.seed, spec.visibility_range
    )
    algorithm = make_algorithm(spec.algorithm, spec.algorithm_params)
    result = run_simulation3(
        configuration.positions,
        algorithm,
        Simulation3Config(
            visibility_range=configuration.visibility_range,
            max_rounds=spec.max_activations,
            convergence_epsilon=spec.epsilon,
            activation_probability=activation_probability3(spec.scheduler),
            xi=error_model3_xi(spec.error_model),
            seed=spec.seed,
        ),
    )
    final_positions = positions_as_array3(result.final_configuration.positions)
    initial_edges = edge_index_array(result.initial_configuration.edges())
    return {
        "run_key": spec.run_key,
        "dimension": 3,
        "algorithm": spec.algorithm,
        "scheduler": spec.scheduler,
        "workload": spec.workload,
        "n_robots": len(configuration),
        "seed": spec.seed,
        "error_model": spec.error_model,
        "scheduler_k": spec.scheduler_k,
        "k_bound": spec.k_bound,
        "epsilon": spec.epsilon,
        "max_activations": spec.max_activations,
        "visibility_range": configuration.visibility_range,
        "converged": result.converged,
        "convergence_time": float(result.rounds_executed) if result.converged else None,
        "cohesion": result.cohesion_maintained,
        "activations": result.activations_executed,
        "rounds": result.rounds_executed,
        "epochs": None,
        "samples": len(result.diameter_history),
        "initial_diameter": result.initial_configuration.diameter(),
        "final_diameter": result.final_diameter,
        "final_min_pairwise": min_pairwise_distance3_array(final_positions),
        "max_edge_stretch": max_edge_stretch3(initial_edges, final_positions),
        "simulated_time": float(result.rounds_executed),
        "wall_time_s": time.perf_counter() - started,
    }


def _execute_run3_async(spec: RunSpec) -> Dict[str, object]:
    """Execute one continuous-time 3D run spec on the unified kernel.

    The field mapping matches the planar path: ``max_activations`` bounds
    individual activations, ``error_model`` resolves through the full
    registry to a (perception, motion) pair, ``epochs`` is computed from
    the activation end times, and ``simulated_time`` is the final global
    time.  ``rounds`` is None — continuous time has no rounds.
    """
    from ..spatial3d import (
        AsyncSimulation3Config,
        edge_index_array,
        max_edge_stretch3,
        min_pairwise_distance3_array,
        positions_as_array3,
        run_simulation3_async,
    )

    started = time.perf_counter()
    configuration = make_workload(
        spec.workload, spec.n_robots, spec.seed, spec.visibility_range
    )
    algorithm = make_algorithm(spec.algorithm, spec.algorithm_params)
    scheduler = make_scheduler3(spec.scheduler, spec.scheduler_k)
    perception, motion = make_error_models(spec.error_model)
    result = run_simulation3_async(
        configuration.positions,
        algorithm,
        scheduler,
        AsyncSimulation3Config(
            visibility_range=configuration.visibility_range,
            perception=perception,
            motion=motion,
            seed=spec.seed,
            max_activations=spec.max_activations,
            convergence_epsilon=spec.epsilon,
        ),
    )
    epochs = epochs_to_converge(
        result.activation_end_times, result.metrics.samples, spec.epsilon
    )
    final_positions = positions_as_array3(result.final_configuration.positions)
    initial_edges = edge_index_array(result.initial_configuration.edges())
    return {
        "run_key": spec.run_key,
        "dimension": 3,
        "algorithm": spec.algorithm,
        "scheduler": spec.scheduler,
        "workload": spec.workload,
        "n_robots": len(configuration),
        "seed": spec.seed,
        "error_model": spec.error_model,
        "scheduler_k": spec.scheduler_k,
        "k_bound": spec.k_bound,
        "epsilon": spec.epsilon,
        "max_activations": spec.max_activations,
        "visibility_range": configuration.visibility_range,
        "converged": result.converged,
        "convergence_time": result.convergence_time,
        "cohesion": result.cohesion_maintained,
        "activations": result.activations_processed,
        "rounds": None,
        "epochs": epochs,
        "samples": len(result.metrics.samples),
        "initial_diameter": result.initial_diameter,
        "final_diameter": result.final_diameter,
        "final_min_pairwise": min_pairwise_distance3_array(final_positions),
        "max_edge_stretch": max_edge_stretch3(initial_edges, final_positions),
        "simulated_time": result.final_time,
        "wall_time_s": time.perf_counter() - started,
    }


def strip_timing(row: Dict[str, object]) -> Dict[str, object]:
    """A copy of ``row`` without the execution-dependent timing fields."""
    return {k: v for k, v in row.items() if k not in TIMING_FIELDS}


@dataclass
class SweepProgress:
    """One tick of the streamed progress callback (after every row)."""

    done: int
    total: int
    run_key: str
    cost_done: float
    cost_total: float
    elapsed_s: float
    eta_s: Optional[float]
    aggregate: Dict[str, object]

    @property
    def cost_fraction(self) -> float:
        """Cost-weighted completion in ``[0, 1]`` (what the ETA is based on)."""
        if self.cost_total <= 0:
            return 1.0 if self.done >= self.total else 0.0
        return min(1.0, self.cost_done / self.cost_total)


@dataclass
class SweepResult:
    """All result rows of a sweep, in the deterministic expansion order."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    #: Runs this invocation computed itself.
    executed: int = 0
    #: Rows reloaded from this sweep's own JSONL file.
    resumed: int = 0
    #: Rows served from the shared results store instead of computed —
    #: direct cache hits plus rows a concurrent peer computed while this
    #: runner waited on the peer's claim.  The three counters partition
    #: the sweep: ``executed + resumed + store_hits == len(rows)``.
    store_hits: int = 0
    aggregator: Optional[StreamingAggregator] = None
    stats: Optional[BackendStats] = None

    def __len__(self) -> int:
        return len(self.rows)

    def deterministic_rows(self) -> List[Dict[str, object]]:
        """The rows without timing fields (equal across backends)."""
        return [strip_timing(row) for row in self.rows]

    def row_for(self, run_key: str) -> Optional[Dict[str, object]]:
        """The row of one run key, if present."""
        for row in self.rows:
            if row["run_key"] == run_key:
                return row
        return None

    def to_table(self) -> TextTable:
        """Aggregate table: one line per (algorithm, scheduler, workload, error).

        Rendered from the streaming aggregator the runner maintained while
        rows arrived; built on demand (in row order) for results assembled
        without one.  Both paths produce the identical table —
        ``tests/analysis/test_streaming.py`` pins the equality.
        """
        aggregator = self.aggregator
        if aggregator is None or aggregator.rows_added != len(self.rows):
            aggregator = StreamingAggregator()
            for row in self.rows:
                aggregator.add_row(row)
        # The table's title lumps store hits under "resumed": both are
        # rows this invocation did not execute.
        return aggregator.to_table(
            executed=self.executed, resumed=self.resumed + self.store_hits
        )


def _repair_sidecar_path(path: Path) -> Path:
    """Where ``load_completed_rows`` records repairs for ``path``."""
    return path.with_name(path.name + ".repairs")


def _load_repair_records(path: Path) -> Dict[int, str]:
    """Known-bad line records (offset -> sha1) from the repair sidecar.

    An unreadable or malformed sidecar is treated as empty — the only
    consequence is that a warning fires once more.
    """
    sidecar = _repair_sidecar_path(path)
    if not sidecar.exists():
        return {}
    try:
        payload = json.loads(sidecar.read_text(encoding="utf-8"))
        return {
            int(entry["offset"]): str(entry["sha1"])
            for entry in payload.get("skipped", ())
        }
    except (OSError, ValueError, TypeError, KeyError):
        return {}


def _save_repair_records(
    path: Path, skipped: Dict[int, str], truncations: List[Dict[str, object]]
) -> None:
    """Persist the repair record next to the JSONL file (best effort)."""
    sidecar = _repair_sidecar_path(path)
    payload = {
        "version": 1,
        "skipped": [
            {"offset": offset, "sha1": digest}
            for offset, digest in sorted(skipped.items())
        ],
    }
    if truncations:
        existing: List[Dict[str, object]] = []
        try:
            old = json.loads(sidecar.read_text(encoding="utf-8"))
            existing = list(old.get("truncations", ()))
        except (OSError, ValueError, TypeError):
            pass
        payload["truncations"] = existing + truncations
    try:
        sidecar.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    except OSError:  # pragma: no cover - read-only result directories
        pass


def load_completed_rows(
    jsonl_path: Union[str, Path], *, repair: bool = True
) -> Dict[str, Dict[str, object]]:
    """Completed rows keyed by run key, from an existing JSONL result file.

    A process killed mid-append leaves an unterminated trailing line.
    With ``repair=True`` (the default) that partial line — recognised by
    its missing newline, since the runner always writes whole
    ``row + "\\n"`` lines — is dropped **and removed from the file**,
    with a warning, so subsequent appends start on a clean line boundary
    and the poisoned line cannot shadow its re-executed run.
    Newline-terminated lines that fail to parse (or carry no run key)
    are skipped with a warning wherever they appear; their runs simply
    execute again.  Skipped lines are left in place (the runner does not
    destroy data it does not own) but recorded in a ``.repairs`` sidecar
    so every warning is **one-shot**: a later resume of the same file
    skips the same bytes silently.
    """
    path = Path(jsonl_path)
    completed: Dict[str, Dict[str, object]] = {}
    if not path.exists():
        return completed
    known_bad = _load_repair_records(path)
    new_bad: Dict[int, str] = {}
    truncations: List[Dict[str, object]] = []
    data = path.read_bytes()
    truncate_at: Optional[int] = None
    unterminated_row = False
    position = 0
    while position < len(data):
        newline = data.find(b"\n", position)
        end = len(data) if newline == -1 else newline + 1
        line = data[position : newline if newline != -1 else len(data)]
        raw = line.strip()
        if raw:
            row: Optional[Dict[str, object]] = None
            try:
                parsed = json.loads(raw.decode("utf-8"))
                if isinstance(parsed, dict) and isinstance(parsed.get("run_key"), str):
                    row = parsed
            except (json.JSONDecodeError, UnicodeDecodeError):
                row = None
            if row is not None:
                completed[row["run_key"]] = row
                # A complete row whose newline never hit the disk: keep it,
                # but the file must be terminated before the next append
                # merges two rows onto one line.
                unterminated_row = newline == -1
            elif newline == -1:
                truncate_at = position
            else:
                digest = hashlib.sha1(line).hexdigest()
                if known_bad.get(position) != digest:
                    warnings.warn(
                        f"skipping JSONL line without a parseable sweep row at byte "
                        f"{position} of {path}"
                    )
                    new_bad[position] = digest
        position = end
    if truncate_at is not None:
        if repair:
            warnings.warn(
                f"dropping truncated trailing JSONL line in {path} "
                "(crash mid-append?); rewriting the file for a clean resume"
            )
            truncations.append(
                {
                    "offset": truncate_at,
                    "dropped_sha1": hashlib.sha1(data[truncate_at:]).hexdigest(),
                }
            )
            with path.open("r+b") as handle:
                handle.truncate(truncate_at)
        else:
            warnings.warn(
                f"ignoring truncated trailing JSONL line in {path}; "
                "its run will execute again"
            )
    elif unterminated_row and repair:
        warnings.warn(
            f"terminating the unterminated final JSONL line in {path} "
            "(crash between row and newline?) so appends start on a clean line"
        )
        with path.open("ab") as handle:
            handle.write(b"\n")
    if repair and (new_bad or truncations):
        _save_repair_records(path, {**known_bad, **new_bad}, truncations)
    return completed


#: Signature of the optional per-row callback: ``(run_key, row, order
#: index in the expansion, source)`` with source one of :data:`ROW_SOURCES`.
RowCallback = Callable[[str, Dict[str, object], int, str], None]


class SweepRunner:
    """Execute a sweep's runs through a backend, persisting rows as they finish.

    ``runs`` may be a :class:`SweepSpec` (expanded on construction) or an
    explicit sequence of :class:`RunSpec` objects (how the registry
    experiments express ablations the grid cannot).  ``backend`` selects
    the execution strategy by registry name (``serial``, ``process-pool``,
    ``work-stealing``, ``socket``) or as a pre-built
    :class:`~repro.sweeps.backends.ExecutionBackend`; when omitted,
    ``workers <= 1`` selects the serial reference backend and
    ``workers > 1`` the static process pool — exactly the pre-backend
    behaviour.  Every backend produces the same rows (timing aside); only
    completion order differs, and the returned result is always in
    expansion order.

    ``store`` (path or open :class:`~repro.store.ResultsStore`) plugs the
    sweep into the global results database: hits short-circuit, fresh
    rows are ingested back, and claims coordinate concurrent runners
    sharing the file (see the module docstring).  ``store_claim_ttl_s``
    bounds how long a peer's claim is honoured without proof of life;
    ``store_poll_s`` paces the wait for rows a peer is computing.
    """

    def __init__(
        self,
        runs: Union[SweepSpec, Sequence[RunSpec]],
        *,
        workers: int = 1,
        chunk_size: int = 1,
        jsonl_path: Optional[Union[str, Path]] = None,
        resume: bool = True,
        backend: Optional[Union[str, ExecutionBackend]] = None,
        store: Optional[Union[str, Path, "object"]] = None,
        store_claim_ttl_s: float = 3600.0,
        store_poll_s: float = 0.05,
        sweep_label: Optional[str] = None,
        replicate_batch: bool = False,
    ) -> None:
        if isinstance(runs, SweepSpec):
            runs = runs.expand()
        self.runs: List[RunSpec] = list(runs)
        check_unique_keys(self.runs)
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if isinstance(backend, str) and backend not in backend_names():
            known = ", ".join(backend_names())
            raise ValueError(f"unknown backend {backend!r}; known: {known}")
        if store_claim_ttl_s <= 0:
            raise ValueError("store_claim_ttl_s must be positive")
        if store_poll_s <= 0:
            raise ValueError("store_poll_s must be positive")
        self.workers = workers
        self.chunk_size = chunk_size
        self.jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self.resume = resume
        self.backend = backend
        self.store = store
        self.store_claim_ttl_s = store_claim_ttl_s
        self.store_poll_s = store_poll_s
        self.sweep_label = sweep_label
        self.replicate_batch = replicate_batch

    def resolve_backend(self) -> ExecutionBackend:
        """The backend instance this runner will execute through."""
        if isinstance(self.backend, ExecutionBackend):
            return self.backend
        name = self.backend
        if name is None:
            name = "serial" if self.workers == 1 else "process-pool"
        return make_backend(name, workers=self.workers, chunk_size=self.chunk_size)

    def _resolve_store(self) -> Tuple[Optional["object"], bool]:
        """(store handle, whether this runner opened — and must close — it)."""
        if self.store is None:
            return None, False
        from ..store import ResultsStore  # runtime import keeps layering loose

        if isinstance(self.store, ResultsStore):
            return self.store, False
        return ResultsStore(self.store), True

    def run(
        self,
        *,
        progress: Optional[Callable[[int, int], None]] = None,
        stream_progress: Optional[Callable[[SweepProgress], None]] = None,
        on_row: Optional[RowCallback] = None,
    ) -> SweepResult:
        """Execute every non-completed run and return all rows in order.

        Each row is appended to the JSONL file, folded into the
        streaming aggregator and ingested into the store (when one is
        configured) the moment it arrives, **before** the callbacks fire
        — so a sweep interrupted at any point (even by a raising
        callback) resumes from everything that completed.

        ``progress`` (optional) is called as ``progress(done, total)``
        after every completed run; ``stream_progress`` receives a
        :class:`SweepProgress` with the cost-model ETA and a live
        aggregate snapshot; ``on_row`` sees **every** row entering the
        result — executed, JSONL-resumed, store hit or peer-computed —
        with its expansion order index (what a live table needs).
        """
        store, owns_store = self._resolve_store()
        try:
            return self._run(store, progress, stream_progress, on_row)
        finally:
            if owns_store and store is not None:
                store.close()

    def _run(
        self,
        store: Optional["object"],
        progress: Optional[Callable[[int, int], None]],
        stream_progress: Optional[Callable[[SweepProgress], None]],
        on_row: Optional[RowCallback],
    ) -> SweepResult:
        label = self.sweep_label
        if label is None and self.jsonl_path is not None:
            label = self.jsonl_path.name

        completed: Dict[str, Dict[str, object]] = {}
        if self.jsonl_path is not None and self.resume:
            completed = load_completed_rows(self.jsonl_path)
        order = {spec.run_key: index for index, spec in enumerate(self.runs)}

        # Legacy ingest: rows resumed from the per-sweep file enter the
        # global store so every other runner sees them as hits.
        if store is not None and completed:
            store.put_many(
                completed.values(), sweep_label=label, source="jsonl-import"
            )

        todo = [spec for spec in self.runs if spec.run_key not in completed]

        # Global dedup: previously computed keys short-circuit into the
        # row stream without touching any backend.
        store_hits: Dict[str, Dict[str, object]] = {}
        if store is not None and todo:
            store_hits = store.get_many([spec.run_key for spec in todo])
            todo = [spec for spec in todo if spec.run_key not in store_hits]

        # Claim what we will execute; keys a live peer already claimed
        # are awaited instead (and stolen if the peer dies).
        mine: List[RunSpec] = todo
        waiting: List[RunSpec] = []
        if store is not None and todo:
            mine, waiting = [], []
            for spec in todo:
                if store.claim(spec.run_key, ttl_s=self.store_claim_ttl_s):
                    mine.append(spec)
                else:
                    waiting.append(spec)

        handle = None
        if self.jsonl_path is not None:
            self.jsonl_path.parent.mkdir(parents=True, exist_ok=True)
            if not self.resume:
                self.jsonl_path.unlink(missing_ok=True)
                _repair_sidecar_path(self.jsonl_path).unlink(missing_ok=True)
                completed = {}
            handle = self.jsonl_path.open("a", encoding="utf-8")

        aggregator = StreamingAggregator()
        for spec in self.runs:
            key = spec.run_key
            row = completed.get(key)
            if row is not None:
                aggregator.add_row(row, order=order[key])
                if on_row is not None:
                    on_row(key, row, order[key], "resumed")
                continue
            hit = store_hits.get(key)
            if hit is not None:
                aggregator.add_row(hit, order=order[key])
                # Keep the per-sweep file self-contained: hits land in it
                # exactly as recomputed rows would.
                if handle is not None:
                    handle.write(json.dumps(hit) + "\n")
                if on_row is not None:
                    on_row(key, hit, order[key], "store")
        if handle is not None and store_hits:
            handle.flush()
        completed.update(store_hits)

        backend = self.resolve_backend()
        costs = {spec.run_key: spec.cost_hint() for spec in mine + waiting}
        cost_total = sum(costs.values())
        state = {"done": 0, "cost_done": 0.0}
        fresh: Dict[str, Dict[str, object]] = {}
        peer_rows: Dict[str, Dict[str, object]] = {}
        total = len(mine) + len(waiting)
        started = time.perf_counter()

        def tick(run_key: str) -> None:
            state["done"] += 1
            state["cost_done"] += costs[run_key]
            if progress is not None:
                progress(state["done"], total)
            if stream_progress is not None:
                elapsed = time.perf_counter() - started
                eta: Optional[float] = None
                if state["cost_done"] > 0 and state["done"] < total:
                    eta = (
                        elapsed
                        * (cost_total - state["cost_done"])
                        / state["cost_done"]
                    )
                elif state["done"] >= total:
                    eta = 0.0
                stream_progress(
                    SweepProgress(
                        done=state["done"],
                        total=total,
                        run_key=run_key,
                        cost_done=state["cost_done"],
                        cost_total=cost_total,
                        elapsed_s=elapsed,
                        eta_s=eta,
                        aggregate=aggregator.snapshot(),
                    )
                )

        def consume_executed(run_key: str, row: Dict[str, object]) -> None:
            fresh[run_key] = row
            if handle is not None:
                handle.write(json.dumps(row) + "\n")
                handle.flush()
            if store is not None:
                store.put(row, sweep_label=label, source="executed")
            aggregator.add_row(row, order=order[run_key])
            if on_row is not None:
                on_row(run_key, row, order[run_key], "executed")
            tick(run_key)

        # Replicate batching happens *after* resume + store dedup + claims,
        # so a bundle only ever contains runs this runner will actually
        # execute — cached members were already served as store hits, and
        # the planner simply sees a shorter seed axis (the partial-bundle
        # case).  Bit-identity of rows makes the whole thing invisible to
        # the JSONL file, the store and the aggregator.
        mine_items: Sequence = mine
        if self.replicate_batch and mine and backend.supports_bundles:
            from .replicate import plan_replicate_bundles

            mine_items = plan_replicate_bundles(mine)

        try:
            if mine:
                for run_key, row in backend.execute(mine_items):
                    consume_executed(run_key, row)
            if waiting:
                self._await_peers(
                    store,
                    backend,
                    waiting,
                    peer_rows,
                    consume_executed,
                    handle,
                    aggregator,
                    order,
                    on_row,
                    tick,
                )
        finally:
            # Never leave claims behind for keys this runner did not
            # finish — a raising callback or failed worker would otherwise
            # stall every peer until the TTL expires.
            if store is not None:
                for spec in mine:
                    if spec.run_key not in fresh:
                        store.release(spec.run_key)
            if handle is not None:
                handle.close()

        completed.update(peer_rows)
        rows = [
            fresh[spec.run_key] if spec.run_key in fresh else completed[spec.run_key]
            for spec in self.runs
        ]
        stats = backend.stats()
        if stats.worker_losses:
            warnings.warn(
                f"{stats.worker_losses} {stats.backend} worker(s) lost "
                f"mid-sweep; {stats.requeued_chunks} leased chunk(s) were "
                "requeued and re-executed, so every row is present"
            )
        served = len(store_hits) + len(peer_rows)
        return SweepResult(
            rows=rows,
            executed=len(fresh),
            resumed=len(rows) - len(fresh) - served,
            store_hits=served,
            aggregator=aggregator,
            stats=stats,
        )

    def _await_peers(
        self,
        store: "object",
        backend: ExecutionBackend,
        waiting: Sequence[RunSpec],
        peer_rows: Dict[str, Dict[str, object]],
        consume_executed: Callable[[str, Dict[str, object]], None],
        handle,
        aggregator: StreamingAggregator,
        order: Dict[str, int],
        on_row: Optional[RowCallback],
        tick: Callable[[str], None],
    ) -> None:
        """Wait for peer-claimed keys; steal and execute them if the peer dies.

        Every polling pass re-checks each outstanding key: a stored row
        is consumed as a peer result; a claim whose owner died (or whose
        TTL lapsed) is re-claimed and queued for local execution.  The
        loop cannot deadlock — either the peer makes progress, or its
        claims become stealable.
        """
        pending: Dict[str, RunSpec] = {spec.run_key: spec for spec in waiting}
        stolen: List[RunSpec] = []
        while pending:
            progressed = False
            for key in list(pending):
                row = store.get(key)
                if row is not None:
                    del pending[key]
                    peer_rows[key] = row
                    if handle is not None:
                        handle.write(json.dumps(row) + "\n")
                        handle.flush()
                    aggregator.add_row(row, order=order[key])
                    if on_row is not None:
                        on_row(key, row, order[key], "peer")
                    tick(key)
                    progressed = True
                elif store.claim(key, ttl_s=self.store_claim_ttl_s):
                    stolen.append(pending.pop(key))
                    progressed = True
            if pending and not progressed:
                time.sleep(self.store_poll_s)
        if stolen:
            try:
                for run_key, row in backend.execute(stolen):
                    consume_executed(run_key, row)
            finally:
                for spec in stolen:
                    if store.get(spec.run_key) is None:
                        store.release(spec.run_key)


def run_sweep(
    spec: Union[SweepSpec, Sequence[RunSpec]],
    *,
    workers: int = 1,
    chunk_size: int = 1,
    jsonl_path: Optional[Union[str, Path]] = None,
    resume: bool = True,
    backend: Optional[Union[str, ExecutionBackend]] = None,
    store: Optional[Union[str, Path, "object"]] = None,
    store_claim_ttl_s: float = 3600.0,
    store_poll_s: float = 0.05,
    sweep_label: Optional[str] = None,
    replicate_batch: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
    stream_progress: Optional[Callable[[SweepProgress], None]] = None,
    on_row: Optional[RowCallback] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(
        spec,
        workers=workers,
        chunk_size=chunk_size,
        jsonl_path=jsonl_path,
        resume=resume,
        backend=backend,
        store=store,
        store_claim_ttl_s=store_claim_ttl_s,
        store_poll_s=store_poll_s,
        sweep_label=sweep_label,
        replicate_batch=replicate_batch,
    )
    return runner.run(
        progress=progress, stream_progress=stream_progress, on_row=on_row
    )
