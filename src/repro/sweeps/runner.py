"""Parallel execution of sweep runs, with JSONL persistence and resumption.

The runner is deliberately boring: :func:`execute_run` is a pure function
from a :class:`~repro.sweeps.spec.RunSpec` to a flat, JSON-serializable
result row, and :class:`SweepRunner` maps it over the runs — either
serially in-process (the fallback, and the reference semantics) or across
a ``multiprocessing`` pool.  Because every run rebuilds its workload,
algorithm, scheduler and RNG from the spec's names and seed, a row is
identical no matter which process produced it; the only field that varies
between executions is ``wall_time_s``, which :data:`TIMING_FIELDS` names
so comparisons can drop it.

Persistence is append-only JSONL, one row per line.  On re-run with
``resume=True`` the runner loads the completed run keys from the file and
executes only the missing runs, so a killed sweep continues where it
stopped.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..analysis.tables import TextTable
from ..engine.convergence import epochs_to_converge
from ..engine.simulator import SimulationConfig, run_simulation
from ..model.visibility import max_edge_stretch
from .factories import (
    activation_probability3,
    error_model3_xi,
    make_algorithm,
    make_error_models,
    make_scheduler,
    make_workload,
    run_dimension,
)
from .spec import RunSpec, SweepSpec, check_unique_keys

#: Row fields that vary between executions of the same spec (dropped when
#: comparing parallel against serial results).
TIMING_FIELDS = ("wall_time_s",)


def execute_run(spec: RunSpec) -> Dict[str, object]:
    """Execute one run spec and return its flat result row.

    The row contains only JSON-serializable scalars, is independent of the
    executing process, and is keyed by ``spec.run_key`` for resumption.
    Specs whose names resolve to the 3D registries execute on the 3D
    round engine (:func:`_execute_run3`); everything else runs the planar
    continuous-time engine.
    """
    if run_dimension(spec.algorithm, spec.scheduler, spec.workload, spec.error_model) == 3:
        return _execute_run3(spec)
    started = time.perf_counter()
    configuration = make_workload(
        spec.workload, spec.n_robots, spec.seed, spec.visibility_range
    )
    algorithm = make_algorithm(spec.algorithm, spec.algorithm_params)
    scheduler = make_scheduler(spec.scheduler, spec.scheduler_k)
    perception, motion = make_error_models(spec.error_model)
    result = run_simulation(
        configuration.positions,
        algorithm,
        scheduler,
        SimulationConfig(
            visibility_range=configuration.visibility_range,
            perception=perception,
            motion=motion,
            seed=spec.seed,
            max_activations=spec.max_activations,
            convergence_epsilon=spec.epsilon,
            k_bound=spec.k_bound,
        ),
    )
    epochs = epochs_to_converge(
        result.activation_end_times, result.metrics.samples, spec.epsilon
    )
    stretch = max_edge_stretch(
        result.initial_configuration.edges(), list(result.final_configuration.positions)
    )
    return {
        "run_key": spec.run_key,
        "dimension": 2,
        "algorithm": spec.algorithm,
        "scheduler": spec.scheduler,
        "workload": spec.workload,
        "n_robots": len(configuration),
        "seed": spec.seed,
        "error_model": spec.error_model,
        "scheduler_k": spec.scheduler_k,
        "k_bound": spec.k_bound,
        "epsilon": spec.epsilon,
        "max_activations": spec.max_activations,
        "visibility_range": configuration.visibility_range,
        "converged": result.converged,
        "convergence_time": result.convergence_time,
        "cohesion": result.cohesion_maintained,
        "activations": result.activations_processed,
        "epochs": epochs,
        "samples": len(result.metrics.samples),
        "initial_diameter": result.initial_hull_diameter,
        "final_diameter": result.final_hull_diameter,
        "final_min_pairwise": result.final_configuration.min_pairwise_distance(),
        "max_edge_stretch": stretch,
        "simulated_time": result.final_time,
        "wall_time_s": time.perf_counter() - started,
    }


def _execute_run3(spec: RunSpec) -> Dict[str, object]:
    """Execute one 3D run spec on the round engine, same row contract.

    The mapping from the spec's planar-flavoured fields:

    * ``max_activations`` bounds the number of *rounds* (the round engine's
      scheduling quantum); the ``activations`` row field still reports
      individual robot activations, and ``rounds`` reports rounds.
    * ``error_model`` selects the rigidity bound ``xi`` (the 3D engine has
      no perception-error machinery), via ``ERROR_MODEL3_XI``.
    * ``simulated_time`` is the executed round count as a float.
    """
    from ..spatial3d import (
        Simulation3Config,
        edge_index_array,
        max_edge_stretch3,
        min_pairwise_distance3_array,
        positions_as_array3,
        run_simulation3,
    )

    started = time.perf_counter()
    configuration = make_workload(
        spec.workload, spec.n_robots, spec.seed, spec.visibility_range
    )
    algorithm = make_algorithm(spec.algorithm, spec.algorithm_params)
    result = run_simulation3(
        configuration.positions,
        algorithm,
        Simulation3Config(
            visibility_range=configuration.visibility_range,
            max_rounds=spec.max_activations,
            convergence_epsilon=spec.epsilon,
            activation_probability=activation_probability3(spec.scheduler),
            xi=error_model3_xi(spec.error_model),
            seed=spec.seed,
        ),
    )
    final_positions = positions_as_array3(result.final_configuration.positions)
    initial_edges = edge_index_array(result.initial_configuration.edges())
    return {
        "run_key": spec.run_key,
        "dimension": 3,
        "algorithm": spec.algorithm,
        "scheduler": spec.scheduler,
        "workload": spec.workload,
        "n_robots": len(configuration),
        "seed": spec.seed,
        "error_model": spec.error_model,
        "scheduler_k": spec.scheduler_k,
        "k_bound": spec.k_bound,
        "epsilon": spec.epsilon,
        "max_activations": spec.max_activations,
        "visibility_range": configuration.visibility_range,
        "converged": result.converged,
        "convergence_time": float(result.rounds_executed) if result.converged else None,
        "cohesion": result.cohesion_maintained,
        "activations": result.activations_executed,
        "rounds": result.rounds_executed,
        "epochs": None,
        "samples": len(result.diameter_history),
        "initial_diameter": result.initial_configuration.diameter(),
        "final_diameter": result.final_diameter,
        "final_min_pairwise": min_pairwise_distance3_array(final_positions),
        "max_edge_stretch": max_edge_stretch3(initial_edges, final_positions),
        "simulated_time": float(result.rounds_executed),
        "wall_time_s": time.perf_counter() - started,
    }


def strip_timing(row: Dict[str, object]) -> Dict[str, object]:
    """A copy of ``row`` without the execution-dependent timing fields."""
    return {k: v for k, v in row.items() if k not in TIMING_FIELDS}


@dataclass
class SweepResult:
    """All result rows of a sweep, in the deterministic expansion order."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    executed: int = 0
    resumed: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def deterministic_rows(self) -> List[Dict[str, object]]:
        """The rows without timing fields (equal across serial/parallel runs)."""
        return [strip_timing(row) for row in self.rows]

    def row_for(self, run_key: str) -> Optional[Dict[str, object]]:
        """The row of one run key, if present."""
        for row in self.rows:
            if row["run_key"] == run_key:
                return row
        return None

    def to_table(self) -> TextTable:
        """Aggregate table: one line per (algorithm, scheduler, workload, error)."""
        groups: Dict[tuple, List[Dict[str, object]]] = {}
        for row in self.rows:
            key = (row["algorithm"], row["scheduler"], row["workload"], row["error_model"])
            groups.setdefault(key, []).append(row)
        table = TextTable(
            f"Sweep aggregate — {len(self.rows)} runs "
            f"({self.executed} executed, {self.resumed} resumed)",
            [
                "algorithm",
                "scheduler",
                "workload",
                "error model",
                "runs",
                "converged",
                "cohesive",
                "mean activations",
                "mean final diameter",
                "worst final diameter",
            ],
        )
        for key in sorted(groups):
            rows = groups[key]
            converged = sum(1 for r in rows if r["converged"])
            cohesive = sum(1 for r in rows if r["cohesion"])
            mean_activations = sum(r["activations"] for r in rows) / len(rows)
            diameters = [r["final_diameter"] for r in rows]
            table.add_row(
                *key,
                len(rows),
                f"{converged}/{len(rows)}",
                f"{cohesive}/{len(rows)}",
                mean_activations,
                sum(diameters) / len(diameters),
                max(diameters),
            )
        return table


def load_completed_rows(jsonl_path: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Completed rows keyed by run key, from an existing JSONL result file.

    Lines that fail to parse (e.g. a partial line left by a killed run) are
    skipped; their runs simply execute again.
    """
    path = Path(jsonl_path)
    completed: Dict[str, Dict[str, object]] = {}
    if not path.exists():
        return completed
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            key = row.get("run_key")
            if isinstance(key, str):
                completed[key] = row
    return completed


class SweepRunner:
    """Execute a sweep's runs across workers, persisting rows as they finish.

    ``runs`` may be a :class:`SweepSpec` (expanded on construction) or an
    explicit sequence of :class:`RunSpec` objects (how the registry
    experiments express ablations the grid cannot).  ``workers <= 1``
    selects the in-process serial fallback, whose results define the
    reference semantics; with ``workers > 1`` the runs are chunked across a
    ``multiprocessing`` pool and — because :func:`execute_run` is pure —
    produce the same rows in the same order.
    """

    def __init__(
        self,
        runs: Union[SweepSpec, Sequence[RunSpec]],
        *,
        workers: int = 1,
        chunk_size: int = 1,
        jsonl_path: Optional[Union[str, Path]] = None,
        resume: bool = True,
    ) -> None:
        if isinstance(runs, SweepSpec):
            runs = runs.expand()
        self.runs: List[RunSpec] = list(runs)
        check_unique_keys(self.runs)
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self.jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self.resume = resume

    def run(
        self, *, progress: Optional[Callable[[int, int], None]] = None
    ) -> SweepResult:
        """Execute every non-completed run and return all rows in order.

        ``progress`` (optional) is called as ``progress(done, total)`` after
        every completed run.
        """
        completed: Dict[str, Dict[str, object]] = {}
        if self.jsonl_path is not None and self.resume:
            completed = load_completed_rows(self.jsonl_path)
        todo = [spec for spec in self.runs if spec.run_key not in completed]

        handle = None
        if self.jsonl_path is not None:
            self.jsonl_path.parent.mkdir(parents=True, exist_ok=True)
            if not self.resume:
                self.jsonl_path.unlink(missing_ok=True)
                completed = {}
            handle = self.jsonl_path.open("a", encoding="utf-8")

        fresh: Dict[str, Dict[str, object]] = {}
        done = 0
        total = len(todo)
        try:
            for row in self._execute(todo):
                fresh[row["run_key"]] = row
                if handle is not None:
                    handle.write(json.dumps(row) + "\n")
                    handle.flush()
                done += 1
                if progress is not None:
                    progress(done, total)
        finally:
            if handle is not None:
                handle.close()

        rows = [
            fresh[spec.run_key] if spec.run_key in fresh else completed[spec.run_key]
            for spec in self.runs
        ]
        return SweepResult(rows=rows, executed=len(fresh), resumed=len(rows) - len(fresh))

    def _execute(self, todo: Sequence[RunSpec]):
        if not todo:
            return
        if self.workers == 1:
            for spec in todo:
                yield execute_run(spec)
            return
        # imap (ordered) keeps the JSONL file in expansion order while still
        # streaming rows back as chunks complete.
        with multiprocessing.Pool(processes=self.workers) as pool:
            for row in pool.imap(execute_run, todo, chunksize=self.chunk_size):
                yield row


def run_sweep(
    spec: Union[SweepSpec, Sequence[RunSpec]],
    *,
    workers: int = 1,
    chunk_size: int = 1,
    jsonl_path: Optional[Union[str, Path]] = None,
    resume: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(
        spec,
        workers=workers,
        chunk_size=chunk_size,
        jsonl_path=jsonl_path,
        resume=resume,
    )
    return runner.run(progress=progress)
