"""Declarative parallel parameter sweeps over the simulation scenario space.

This is the scale-out seam of the reproduction: experiments (and the
``python -m repro sweep`` CLI) describe *what* to run as a
:class:`SweepSpec` grid or an explicit list of :class:`RunSpec` objects,
and the :class:`SweepRunner` decides *how* — serially in-process or
fanned out over ``multiprocessing`` workers — with append-only JSONL
persistence and run-key resumption.  Results are identical either way;
``tests/sweeps`` pins that guarantee.
"""

from .factories import (
    algorithm_names,
    error_model_names,
    make_algorithm,
    make_error_models,
    make_scheduler,
    make_workload,
    scheduler_names,
    validate_names,
    workload_names,
)
from .runner import (
    SweepResult,
    SweepRunner,
    execute_run,
    load_completed_rows,
    run_sweep,
    strip_timing,
)
from .spec import K_SCHEDULERS, RunSpec, SweepSpec, check_unique_keys

__all__ = [
    "K_SCHEDULERS",
    "RunSpec",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "algorithm_names",
    "check_unique_keys",
    "error_model_names",
    "execute_run",
    "load_completed_rows",
    "make_algorithm",
    "make_error_models",
    "make_scheduler",
    "make_workload",
    "run_sweep",
    "scheduler_names",
    "strip_timing",
    "validate_names",
    "workload_names",
]
