"""Declarative parallel parameter sweeps over the simulation scenario space.

This is the scale-out seam of the reproduction: experiments (and the
``python -m repro sweep`` CLI) describe *what* to run as a
:class:`SweepSpec` grid or an explicit list of :class:`RunSpec` objects,
and the :class:`SweepRunner` decides *how* — through a pluggable
:class:`~repro.sweeps.backends.ExecutionBackend` (serial in-process,
static ``multiprocessing`` pool, work-stealing pool, or socket workers)
— with append-only JSONL persistence, run-key resumption, and streamed
row consumption into the incremental analysis layer.  Results are
identical on every backend; ``tests/sweeps`` pins that guarantee.
"""

from .backends import (
    BackendStats,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    WorkStealingBackend,
    WorkerHealth,
    backend_names,
    make_backend,
)
from .factories import (
    algorithm_names,
    error_model_names,
    make_algorithm,
    make_error_models,
    make_scheduler,
    make_workload,
    scheduler_names,
    validate_names,
    workload_names,
)
from .runner import (
    ROW_SOURCES,
    SweepProgress,
    SweepResult,
    SweepRunner,
    execute_run,
    load_completed_rows,
    run_sweep,
    strip_timing,
)
from .spec import K_SCHEDULERS, RunSpec, SweepSpec, check_unique_keys

__all__ = [
    "BackendStats",
    "ExecutionBackend",
    "K_SCHEDULERS",
    "ProcessPoolBackend",
    "ROW_SOURCES",
    "RunSpec",
    "SerialBackend",
    "SocketBackend",
    "SweepProgress",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "WorkStealingBackend",
    "WorkerHealth",
    "algorithm_names",
    "backend_names",
    "check_unique_keys",
    "error_model_names",
    "execute_run",
    "load_completed_rows",
    "make_algorithm",
    "make_backend",
    "make_error_models",
    "make_scheduler",
    "make_workload",
    "run_sweep",
    "scheduler_names",
    "strip_timing",
    "validate_names",
    "workload_names",
]
