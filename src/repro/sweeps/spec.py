"""Declarative parameter-sweep specifications.

A :class:`SweepSpec` names a grid over the experiment axes — algorithm,
scheduler, workload, number of robots, error model and seed — and expands
into a list of :class:`RunSpec` objects.  A :class:`RunSpec` is a plain,
frozen, picklable description of *one* simulation run; the factories in
:mod:`repro.sweeps.factories` turn it into live algorithm / scheduler /
workload / error-model objects inside whichever process executes it, so
run specs can cross ``multiprocessing`` boundaries freely.

Every run spec has a deterministic ``run_key`` string.  The key is the
identity the sweep runner uses for resumption: a completed key found in an
existing JSONL result file is never executed again.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

AlgorithmParams = Tuple[Tuple[str, float], ...]

#: Schedulers whose behaviour is governed by an asynchrony bound ``k``
#: (planar and continuous-time 3D alike).
K_SCHEDULERS = ("k-async", "k-async-half", "k-nesta", "kasync3", "nesta3")

#: Algorithms whose safe regions scale with an asynchrony bound ``k``
#: (the grid expansion matches their ``k`` parameter to the scheduler's).
K_ALGORITHMS = ("kknps", "kknps3")

#: Fitted cost-model constants: estimated seconds per cost unit for each
#: run class (see :meth:`RunSpec.cost_units`).  Fitted from measured
#: ``wall_time_s`` JSONL rows by ``tools/calibrate_cost_hint.py`` — the
#: method and the measurement behind these numbers are documented in
#: ``docs/sweeps.md``.  Only the *ratios* matter for scheduling (backends
#: order and balance by relative cost) but keeping the absolute scale in
#: seconds makes the hints directly comparable to measured rows.
COST_HINT_SECONDS = {
    "2d": 3.44e-06,
    # Marginal per-member cost of a replicate-batched lane, fitted from
    # 96 bundled rows (kknps x fsync/ssync, grid/random, n=50..1000,
    # bundles of 8 and 16) — each bundled row's wall time divided by its
    # bundle size before the least-squares fit.
    "2d-replicate": 1.51e-07,
    "3d-round": 1.25e-06,
    "3d-async": 1.26e-05,
}


def _format_value(value: object) -> str:
    if isinstance(value, float):
        # repr is the shortest round-trippable form: keys stay readable for
        # common values ("0.05") while distinct floats never collide.
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one simulation run, as plain data."""

    algorithm: str
    scheduler: str
    workload: str
    n_robots: int
    seed: int
    error_model: str = "exact"
    scheduler_k: int = 2
    algorithm_params: AlgorithmParams = ()
    k_bound: Optional[int] = None
    epsilon: float = 0.05
    max_activations: int = 5000
    visibility_range: float = 1.0

    def __post_init__(self) -> None:
        if self.n_robots < 1:
            raise ValueError("a run needs at least one robot")
        if self.scheduler_k < 1:
            raise ValueError("scheduler_k must be at least 1")
        if self.epsilon <= 0.0:
            raise ValueError("epsilon must be positive")
        if self.max_activations < 1:
            raise ValueError("max_activations must be at least 1")
        if self.visibility_range <= 0.0:
            raise ValueError("visibility range must be positive")
        object.__setattr__(
            self, "algorithm_params", tuple((str(k), v) for k, v in self.algorithm_params)
        )

    @property
    def run_key(self) -> str:
        """Deterministic identity of this run (the JSONL resume key)."""
        params = ",".join(f"{k}={_format_value(v)}" for k, v in self.algorithm_params)
        return "|".join(
            [
                f"{self.algorithm}[{params}]",
                f"{self.scheduler}(k={self.scheduler_k})",
                f"{self.workload}",
                f"n={self.n_robots}",
                f"err={self.error_model}",
                f"seed={self.seed}",
                f"kb={self.k_bound}",
                f"eps={_format_value(self.epsilon)}",
                f"act={self.max_activations}",
                f"V={_format_value(self.visibility_range)}",
            ]
        )

    def with_seed(self, seed: int) -> "RunSpec":
        """The same run at a different seed."""
        return replace(self, seed=seed)

    def cost_class(self) -> str:
        """The cost-model class this run bills under.

        ``"2d"`` — the planar continuous-time engine (one O(n) snapshot
        per activation); ``"3d-async"`` — the continuous-time 3D kernel
        (same shape, 3D arithmetic); ``"3d-round"`` — the round engine,
        where ``max_activations`` bounds *rounds*, each activating ~n
        robots, so the unit picks up an extra factor of n.
        """
        try:
            from .factories import is_round_discipline3, run_dimension

            if (
                run_dimension(
                    self.algorithm, self.scheduler, self.workload, self.error_model
                )
                == 2
            ):
                return "2d"
            return "3d-round" if is_round_discipline3(self.scheduler) else "3d-async"
        except ValueError:
            return "2d"

    def cost_units(self, cost_class: Optional[str] = None) -> float:
        """The run's size in its class's cost units (activation-robot work).

        ``cost_class`` may be passed when the caller already resolved it
        (resolution walks the name registries, so avoid doing it twice).
        """
        klass = self.cost_class() if cost_class is None else cost_class
        units = float(self.max_activations) * float(self.n_robots)
        if klass == "3d-round":
            units *= self.n_robots
        return units

    def cost_hint(self, cost_class: Optional[str] = None) -> float:
        """Estimated cost of this run in seconds, for scheduling and ETAs.

        ``cost_units()`` scaled by the fitted per-class constant
        (:data:`COST_HINT_SECONDS`).  A heuristic, not a promise: backends
        use it to order and balance work (largest-first), and the runner
        uses it to weight progress into an ETA.  Results never depend on
        it — a wrong hint only costs balance.

        ``cost_class`` overrides the spec's own class: the replicate
        planner bills bundled members under ``"2d-replicate"`` (the fitted
        per-unit cost of the batched round path) so work-stealing LPT
        orders bundles by what they will actually cost, not by the
        singleton rate.
        """
        klass = self.cost_class() if cost_class is None else cost_class
        return self.cost_units(klass) * COST_HINT_SECONDS[klass]

    def to_dict(self) -> Dict[str, object]:
        """This spec as a JSON-serializable dict (the socket wire format)."""
        data = asdict(self)
        data["algorithm_params"] = [list(pair) for pair in self.algorithm_params]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (JSON round-trip safe)."""
        payload = dict(data)
        params = payload.get("algorithm_params", ())
        payload["algorithm_params"] = tuple((str(k), v) for k, v in params)
        return cls(**payload)


@dataclass(frozen=True)
class SweepSpec:
    """A grid over the sweep axes, expanded into the product of run specs.

    Expansion order is deterministic: the axes nest in declaration order
    (algorithm outermost, seed innermost), so two expansions of the same
    spec produce identical lists — the property resumption and the
    parallel-equals-serial guarantee both lean on.
    """

    algorithms: Tuple[str, ...] = ("kknps",)
    schedulers: Tuple[str, ...] = ("k-async",)
    workloads: Tuple[str, ...] = ("random",)
    n_robots: Tuple[int, ...] = (10,)
    error_models: Tuple[str, ...] = ("exact",)
    seeds: Tuple[int, ...] = (0,)
    scheduler_k: int = 2
    epsilon: float = 0.05
    max_activations: int = 5000
    visibility_range: float = 1.0

    def __post_init__(self) -> None:
        for axis_name in (
            "algorithms",
            "schedulers",
            "workloads",
            "n_robots",
            "error_models",
            "seeds",
        ):
            axis = tuple(getattr(self, axis_name))
            object.__setattr__(self, axis_name, axis)
            if not axis:
                raise ValueError(f"sweep axis {axis_name!r} must not be empty")
            if len(set(axis)) != len(axis):
                raise ValueError(f"sweep axis {axis_name!r} contains duplicate values")
        # Validate the names eagerly so a typo fails at spec-build time, not
        # inside a worker process half way through the sweep.  Because the
        # grid is a full product, every (algorithm, scheduler, workload)
        # combination must live in one dimension; run_dimension raises on
        # any mixed pairing.
        from .factories import run_dimension, validate_names

        validate_names(
            algorithms=self.algorithms,
            schedulers=self.schedulers,
            workloads=self.workloads,
            error_models=self.error_models,
        )
        for algorithm in self.algorithms:
            for scheduler in self.schedulers:
                for workload in self.workloads:
                    for error_model in self.error_models:
                        run_dimension(algorithm, scheduler, workload, error_model)

    def size(self) -> int:
        """Number of runs the expansion produces (the product of axis sizes)."""
        return (
            len(self.algorithms)
            * len(self.schedulers)
            * len(self.workloads)
            * len(self.n_robots)
            * len(self.error_models)
            * len(self.seeds)
        )

    def expand(self) -> List[RunSpec]:
        """The full grid as run specs, in deterministic nesting order.

        For schedulers with an asynchrony bound (``k-async``/``k-nesta``)
        the bound is revealed to the algorithm (``k_bound``) and a ``kknps``
        algorithm is matched to it; under the remaining schedulers KKNPS
        runs its base ``k = 1`` formulation.  Mismatched pairings (the
        ablations) are expressed as explicit :class:`RunSpec` lists instead.
        """
        runs: List[RunSpec] = []
        for algorithm, scheduler, workload, n, error_model, seed in itertools.product(
            self.algorithms,
            self.schedulers,
            self.workloads,
            self.n_robots,
            self.error_models,
            self.seeds,
        ):
            bounded = scheduler in K_SCHEDULERS
            effective_k = self.scheduler_k if bounded else 1
            params: AlgorithmParams = ()
            if algorithm in K_ALGORITHMS:
                params = (("k", effective_k),)
            runs.append(
                RunSpec(
                    algorithm=algorithm,
                    scheduler=scheduler,
                    workload=workload,
                    n_robots=n,
                    seed=seed,
                    error_model=error_model,
                    scheduler_k=self.scheduler_k,
                    algorithm_params=params,
                    k_bound=self.scheduler_k if bounded else None,
                    epsilon=self.epsilon,
                    max_activations=self.max_activations,
                    visibility_range=self.visibility_range,
                )
            )
        return runs

    def to_dict(self) -> Dict[str, object]:
        """This grid as a JSON-serializable dict (the job-submission wire
        format of :mod:`repro.service`)."""
        data = asdict(self)
        for axis_name in ("algorithms", "schedulers", "workloads", "n_robots",
                          "error_models", "seeds"):
            data[axis_name] = list(data[axis_name])
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        """Rebuild a grid from :meth:`to_dict` output (JSON round-trip safe).

        Unknown keys raise ``TypeError`` through the constructor;
        malformed axis values raise the constructor's usual
        ``ValueError`` — both surface as client errors in the service.
        """
        payload = dict(data)
        for axis_name in ("algorithms", "schedulers", "workloads", "n_robots",
                          "error_models", "seeds"):
            if axis_name in payload:
                payload[axis_name] = tuple(payload[axis_name])
        return cls(**payload)


def check_unique_keys(runs: Sequence[RunSpec]) -> None:
    """Raise ``ValueError`` when two runs share a run key."""
    seen = {}
    for run in runs:
        key = run.run_key
        if key in seen:
            raise ValueError(f"duplicate run key in sweep: {key}")
        seen[key] = run
