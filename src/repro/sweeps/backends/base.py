"""The execution-backend contract of the sweep subsystem.

A backend answers one question — *how* do the runs of a sweep execute —
while the :class:`~repro.sweeps.runner.SweepRunner` keeps owning the
*what* (expansion, resumption, JSONL persistence, aggregation).  The
contract is deliberately narrow:

* :meth:`ExecutionBackend.execute` takes the to-do run specs and yields
  ``(run_key, row)`` pairs **as runs complete**, in whatever order the
  backend finishes them.  Rows are pure functions of their spec
  (:func:`~repro.sweeps.runner.execute_run`), so any backend produces
  bit-identical rows up to the timing fields; only arrival order may
  differ.
* :meth:`ExecutionBackend.stats` reports worker health for the execution
  that just ran — per-worker run counts and busy time, plus
  backend-specific counters (steals for the work-stealing backend).

Backends call the run function through ``self.run_fn``, which defaults
to :func:`execute_run` but is injectable for tests.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..spec import RunSpec

#: A completed run: its resume key and its flat result row.
RowResult = Tuple[str, Dict[str, object]]

#: The signature backends execute per work item (injectable for tests).
#: An item is a :class:`RunSpec` (payload: one row dict) or a
#: :class:`~repro.sweeps.replicate.ReplicateBundle` (payload: a list of
#: per-member row dicts).
RunFunction = Callable[[RunSpec], Dict[str, object]]


def default_run_fn() -> RunFunction:
    """The production run function (imported lazily to avoid a cycle).

    Dispatches on the work-item type, so backends that support bundles
    need no special casing: plain specs run through ``execute_run``,
    replicate bundles through the batched executor.
    """
    from ..replicate import execute_work_item

    return execute_work_item


def iter_rows(item, payload) -> List[RowResult]:
    """Normalise one work item's payload into ``(run_key, row)`` pairs.

    A list payload is a bundle's per-member rows (each row carries its own
    ``run_key``); anything else is a single spec's row, keyed by the item.
    Keeps injected single-row ``run_fn`` test doubles working unchanged.
    """
    if isinstance(payload, list):
        return [(str(row["run_key"]), row) for row in payload]
    return [(str(item.run_key), payload)]


@dataclass
class WorkerHealth:
    """One worker's health report for a finished execution."""

    worker_id: str
    runs: int = 0
    chunks: int = 0
    busy_s: float = 0.0
    steals: int = 0
    #: Heartbeat frames received from the worker (socket backend; the
    #: ``hello`` counts as the first beat, so a live worker always has one).
    heartbeats: int = 0
    #: Age of the last heartbeat at the moment the coordinator released the
    #: worker — None for backends without live heartbeats.
    last_heartbeat_age_s: Optional[float] = None
    #: True when the coordinator lost this worker mid-sweep (connection
    #: drop or heartbeat silence) instead of releasing it gracefully.
    lost: bool = False
    _last_heartbeat_monotonic: Optional[float] = field(default=None, repr=False)

    def observe_chunk(self, runs: int, busy_s: float) -> None:
        """Record one completed chunk of ``runs`` runs taking ``busy_s``."""
        self.runs += runs
        self.chunks += 1
        self.busy_s += busy_s

    def observe_heartbeat(self, now: float) -> None:
        """Record one heartbeat frame received at monotonic time ``now``."""
        self.heartbeats += 1
        self._last_heartbeat_monotonic = now

    def heartbeat_age_s(self, now: float) -> Optional[float]:
        """Seconds since the last heartbeat as of ``now`` (None if never beat)."""
        if self._last_heartbeat_monotonic is None:
            return None
        return max(0.0, now - self._last_heartbeat_monotonic)

    def finalize_heartbeat_age(self, now: float) -> None:
        """Freeze the last-heartbeat age into :attr:`last_heartbeat_age_s`."""
        age = self.heartbeat_age_s(now)
        if age is not None:
            self.last_heartbeat_age_s = age


@dataclass
class BackendStats:
    """Aggregate health of one :meth:`ExecutionBackend.execute` call."""

    backend: str
    workers: int = 1
    runs: int = 0
    wall_time_s: float = 0.0
    steals: int = 0
    #: Workers lost mid-sweep (connection drop / heartbeat silence) — the
    #: socket backend's churn counter; other backends leave it at zero.
    worker_losses: int = 0
    #: Chunks that were leased to a lost worker and went back to the queue.
    requeued_chunks: int = 0
    worker_health: List[WorkerHealth] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human summary (the CLI's per-backend report)."""
        parts = [
            f"backend={self.backend}",
            f"runs={self.runs}",
            f"workers={self.workers}",
            f"wall={self.wall_time_s:.2f}s",
        ]
        if self.backend == "work-stealing":
            parts.append(f"steals={self.steals}")
        if self.backend == "socket" or self.worker_losses:
            parts.append(f"worker_losses={self.worker_losses}")
            parts.append(f"requeued={self.requeued_chunks}")
        if self.worker_health:
            busy = ", ".join(
                f"{w.worker_id}:{w.runs}r/{w.busy_s:.2f}s"
                + (
                    f"/hb{w.last_heartbeat_age_s:.1f}s"
                    if w.last_heartbeat_age_s is not None
                    else ""
                )
                + ("/LOST" if w.lost else "")
                for w in self.worker_health
            )
            parts.append(f"per-worker [{busy}]")
        return " ".join(parts)


class ExecutionBackend(abc.ABC):
    """Abstract base of all sweep execution backends."""

    #: Registry name of the backend (set by subclasses).
    name: str = "abstract"

    #: Whether :meth:`execute` accepts replicate bundles among its items.
    #: Backends that serialise specs over a wire protocol of their own
    #: (the socket backend) opt out; the runner then skips the planner.
    supports_bundles: bool = False

    def __init__(self, *, run_fn: Optional[RunFunction] = None) -> None:
        self.run_fn: RunFunction = run_fn if run_fn is not None else default_run_fn()
        self._stats: Optional[BackendStats] = None

    @abc.abstractmethod
    def execute(self, specs: Sequence[RunSpec]) -> Iterator[RowResult]:
        """Execute every spec, yielding ``(run_key, row)`` as runs complete."""

    def stats(self) -> BackendStats:
        """Health of the most recent :meth:`execute` call."""
        if self._stats is None:
            return BackendStats(backend=self.name, workers=0)
        return self._stats
