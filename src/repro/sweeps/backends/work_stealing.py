"""Work-stealing execution: cost-ordered local deques with steal-on-idle.

The straggler problem this solves: a static pool partitions chunks in
expansion order, so a tail chunk of expensive runs (a 3D run, an
``n = 400`` planar run) can land on one worker while the rest sit idle.
Here the coordinator (the calling process) keeps one deque per worker:

1. The to-do specs are sorted **largest-first** by the cost model
   (:meth:`RunSpec.cost_hint`) and dealt snake-wise across the deques, so
   every worker starts with a balanced share and the expensive runs
   execute first (classic LPT scheduling).
2. Workers pull **dynamically chunked** batches from the front of their
   own deque — large chunks while the deque is full (amortising IPC),
   shrinking to single runs near the end (minimising the tail).
3. A worker whose deque runs dry **steals** from the back of the largest
   remaining deque — the cheap end, because each deque is sorted
   largest-first — so no worker idles while another has queued work.

Rows stream back over a shared results queue and are yielded as they
arrive; the order is non-deterministic but the rows themselves are pure
functions of their specs, so the sweep's output is unchanged.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Sequence

from ..spec import RunSpec
from .base import (
    BackendStats,
    ExecutionBackend,
    RowResult,
    RunFunction,
    WorkerHealth,
    iter_rows,
)

#: Upper bound on how many work items one message hands a worker.
MAX_CHUNK = 8


def _worker_loop(worker_id, inbox, outbox, run_fn: RunFunction) -> None:
    """Worker process: execute chunks from ``inbox`` until the sentinel.

    A chunk is a list of work items (specs or replicate bundles); the
    reply carries the flattened ``(run_key, row)`` pairs plus the item
    count so the coordinator retires items, not rows.
    """
    while True:
        chunk = inbox.get()
        if chunk is None:
            break
        started = time.perf_counter()
        try:
            pairs = []
            for item in chunk:
                pairs.extend(iter_rows(item, run_fn(item)))
        except BaseException as error:  # surface in the coordinator, don't hang it
            outbox.put((worker_id, error, 0.0, 0))
            break
        outbox.put((worker_id, pairs, time.perf_counter() - started, len(chunk)))


def dynamic_chunk_size(remaining: int, workers: int) -> int:
    """How many runs to hand a worker when ``remaining`` are still queued.

    Roughly a quarter of a fair share, clamped to ``[1, MAX_CHUNK]`` — big
    enough to amortise queue traffic early on, and collapsing to one run
    per message near the end so the last runs spread across all workers.
    """
    return max(1, min(MAX_CHUNK, remaining // (4 * workers)))


def cost_sorted_chunks(
    specs: Sequence[RunSpec], workers: int
) -> List[List[RunSpec]]:
    """Specs sorted largest-first by the cost model, split into shrinking chunks.

    The shared chunking policy of the self-scheduled backends: LPT order
    (ties broken by run key for determinism), chunk sizes from
    :func:`dynamic_chunk_size` so early chunks amortise messaging and late
    ones spread the tail.  The socket backend turns these chunks into
    leasable task units; this backend applies the same sizing to its
    per-worker deques.
    """
    ordered = sorted(specs, key=lambda s: (-s.cost_hint(), s.run_key))
    chunks: List[List[RunSpec]] = []
    index = 0
    while index < len(ordered):
        size = dynamic_chunk_size(len(ordered) - index, workers)
        chunks.append(list(ordered[index : index + size]))
        index += size
    return chunks


class WorkStealingBackend(ExecutionBackend):
    """Shared-queue execution with per-worker deques and steal-on-idle."""

    name = "work-stealing"
    supports_bundles = True

    def __init__(self, *, workers: int = 2, run_fn=None) -> None:
        super().__init__(run_fn=run_fn)
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers

    def _deal_deques(self, specs: Sequence[RunSpec]) -> List[Deque[RunSpec]]:
        """Cost-sorted specs dealt snake-wise into one deque per worker."""
        by_cost = sorted(
            range(len(specs)),
            key=lambda i: (-specs[i].cost_hint(), i),
        )
        deques: List[Deque[RunSpec]] = [deque() for _ in range(self.workers)]
        for position, spec_index in enumerate(by_cost):
            lap, slot = divmod(position, self.workers)
            worker = slot if lap % 2 == 0 else self.workers - 1 - slot
            deques[worker].append(specs[spec_index])
        return deques

    def _next_chunk(
        self, worker: int, deques: List[Deque[RunSpec]], health: List[WorkerHealth]
    ) -> List[RunSpec]:
        """The next batch for ``worker``: own deque first, then a steal."""
        remaining = sum(len(d) for d in deques)
        if remaining == 0:
            return []
        size = dynamic_chunk_size(remaining, self.workers)
        own = deques[worker]
        if own:
            return [own.popleft() for _ in range(min(size, len(own)))]
        victim = max(range(self.workers), key=lambda i: len(deques[i]))
        loot = deques[victim]
        # Steal from the back — each deque is sorted largest-first, so the
        # back holds the cheapest runs, keeping the victim's big runs local.
        stolen = [loot.pop() for _ in range(min(size, len(loot)))]
        self._stats.steals += 1
        health[worker].steals += 1
        return stolen

    def execute(self, specs: Sequence[RunSpec]) -> Iterator[RowResult]:
        self._stats = BackendStats(backend=self.name, workers=self.workers)
        if not specs:
            return
        health = [WorkerHealth(worker_id=f"ws-{i}") for i in range(self.workers)]
        self._stats.worker_health = health
        deques = self._deal_deques(specs)
        started = time.perf_counter()

        context = multiprocessing.get_context()
        outbox = context.Queue()
        inboxes = [context.Queue() for _ in range(self.workers)]
        processes = [
            context.Process(
                target=_worker_loop,
                args=(i, inboxes[i], outbox, self.run_fn),
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for process in processes:
            process.start()
        try:
            retired = set()

            def _dispatch(worker: int) -> None:
                chunk = self._next_chunk(worker, deques, health)
                if chunk:
                    inboxes[worker].put(chunk)
                else:
                    inboxes[worker].put(None)
                    retired.add(worker)

            for i in range(self.workers):
                _dispatch(i)
            pending = len(specs)
            while pending > 0:
                try:
                    worker, pairs, busy_s, items_done = outbox.get(timeout=1.0)
                except queue.Empty:
                    # A worker killed outside Python (OOM, segfault) can
                    # never report back; fail loudly instead of hanging.
                    # Workers in `retired` exited normally after their
                    # shutdown sentinel and are not suspects.
                    dead = [
                        i
                        for i, process in enumerate(processes)
                        if i not in retired and not process.is_alive()
                    ]
                    if dead and outbox.empty():
                        raise RuntimeError(
                            f"work-stealing worker(s) ws-"
                            f"{', ws-'.join(map(str, dead))} died with "
                            f"{pending} work items outstanding"
                        ) from None
                    continue
                if isinstance(pairs, BaseException):
                    raise RuntimeError(
                        f"work-stealing worker ws-{worker} failed"
                    ) from pairs
                health[worker].observe_chunk(len(pairs), busy_s)
                _dispatch(worker)
                pending -= items_done
                for key, row in pairs:
                    self._stats.runs += 1
                    self._stats.wall_time_s = time.perf_counter() - started
                    yield key, row
            for process in processes:
                process.join(timeout=10)
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
        self._stats.wall_time_s = time.perf_counter() - started
