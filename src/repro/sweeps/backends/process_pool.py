"""The static ``multiprocessing`` pool backend (pre-refactor semantics).

This preserves the original ``SweepRunner`` parallel path exactly:
``Pool.imap`` over the specs in expansion order with a fixed chunk size.
Ordered ``imap`` keeps the row stream (and hence the JSONL file) in spec
order, at the cost of head-of-line blocking: a slow chunk holds back
rows that finished after it — the straggler behaviour the work-stealing
backend exists to remove.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, Iterator, Sequence, Tuple

from ..spec import RunSpec
from .base import (
    BackendStats,
    ExecutionBackend,
    RowResult,
    RunFunction,
    WorkerHealth,
    iter_rows,
)

#: Module-level state of a pool worker (set once per process by the
#: initializer; ``Pool`` cannot pass per-call closures to ``imap``).
_WORKER_RUN_FN: RunFunction = None  # type: ignore[assignment]


def _init_worker(run_fn: RunFunction) -> None:
    global _WORKER_RUN_FN
    _WORKER_RUN_FN = run_fn


def _run_attributed(spec: RunSpec) -> Tuple[int, float, Dict[str, object]]:
    """Execute one work item, tagged with its worker pid and busy time."""
    started = time.perf_counter()
    payload = _WORKER_RUN_FN(spec)
    return os.getpid(), time.perf_counter() - started, payload


class ProcessPoolBackend(ExecutionBackend):
    """Chunked, ordered fan-out over a static ``multiprocessing.Pool``."""

    name = "process-pool"
    supports_bundles = True

    def __init__(self, *, workers: int = 2, chunk_size: int = 1, run_fn=None) -> None:
        super().__init__(run_fn=run_fn)
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.workers = workers
        self.chunk_size = chunk_size

    def execute(self, specs: Sequence[RunSpec]) -> Iterator[RowResult]:
        self._stats = BackendStats(backend=self.name, workers=self.workers)
        if not specs:
            return
        health: Dict[int, WorkerHealth] = {}
        started = time.perf_counter()
        with multiprocessing.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(self.run_fn,),
        ) as pool:
            results = pool.imap(_run_attributed, specs, chunksize=self.chunk_size)
            for item, (pid, busy_s, payload) in zip(specs, results):
                worker = health.setdefault(pid, WorkerHealth(worker_id=f"pid-{pid}"))
                rows = iter_rows(item, payload)
                worker.observe_chunk(len(rows), busy_s)
                for key, row in rows:
                    self._stats.runs += 1
                    self._stats.wall_time_s = time.perf_counter() - started
                    yield key, row
            # Drained normally: shut down gracefully.  Leaving teardown to
            # __exit__ means terminate(), which intermittently deadlocks
            # against the imap result-handler thread (and is more likely to
            # when the pool was forked from a threaded process, as under
            # the job service).  terminate() still covers the abandoned-
            # generator path, where runs are genuinely pending.
            pool.close()
            pool.join()
        self._stats.wall_time_s = time.perf_counter() - started
        self._stats.worker_health = [
            health[pid] for pid in sorted(health)
        ]
