"""In-process serial execution — the reference semantics of every sweep."""

from __future__ import annotations

import time
from typing import Iterator, Sequence

from ..spec import RunSpec
from .base import BackendStats, ExecutionBackend, RowResult, WorkerHealth


class SerialBackend(ExecutionBackend):
    """Execute runs one after another in the calling process.

    This is the fallback every other backend is measured against: rows
    arrive in spec order, and (timing aside) define the bit-identical
    reference output of the sweep.
    """

    name = "serial"

    def execute(self, specs: Sequence[RunSpec]) -> Iterator[RowResult]:
        health = WorkerHealth(worker_id="serial-0")
        self._stats = BackendStats(
            backend=self.name, workers=1, worker_health=[health]
        )
        started = time.perf_counter()
        for spec in specs:
            row_started = time.perf_counter()
            row = self.run_fn(spec)
            health.observe_chunk(1, time.perf_counter() - row_started)
            self._stats.runs += 1
            self._stats.wall_time_s = time.perf_counter() - started
            yield spec.run_key, row
        self._stats.wall_time_s = time.perf_counter() - started
