"""In-process serial execution — the reference semantics of every sweep."""

from __future__ import annotations

import time
from typing import Iterator, Sequence

from ..spec import RunSpec
from .base import BackendStats, ExecutionBackend, RowResult, WorkerHealth, iter_rows


class SerialBackend(ExecutionBackend):
    """Execute runs one after another in the calling process.

    This is the fallback every other backend is measured against: rows
    arrive in spec order, and (timing aside) define the bit-identical
    reference output of the sweep.
    """

    name = "serial"
    supports_bundles = True

    def execute(self, specs: Sequence[RunSpec]) -> Iterator[RowResult]:
        health = WorkerHealth(worker_id="serial-0")
        self._stats = BackendStats(
            backend=self.name, workers=1, worker_health=[health]
        )
        started = time.perf_counter()
        for item in specs:
            item_started = time.perf_counter()
            payload = self.run_fn(item)
            rows = iter_rows(item, payload)
            health.observe_chunk(len(rows), time.perf_counter() - item_started)
            for key, row in rows:
                self._stats.runs += 1
                self._stats.wall_time_s = time.perf_counter() - started
                yield key, row
        self._stats.wall_time_s = time.perf_counter() - started
