"""Remote-worker seam: a coordinator and N workers over localhost TCP.

This backend proves the distributed contract end to end while staying on
one machine: the coordinator binds an ephemeral ``127.0.0.1`` port,
spawns worker *processes* that talk to it **only through the socket** —
no shared memory, no inherited queues — and streams rows back as they
complete.  Pointing the same protocol at real remote hosts is a matter
of starting :func:`worker_main` elsewhere with the coordinator's
address; nothing in the message flow would change.

Wire protocol (one frame = 4-byte big-endian length + UTF-8 JSON body):

======================  ======================================================
frame                   meaning
======================  ======================================================
``hello``               worker → coordinator, once per connection
``task``                coordinator → worker; ``specs`` is a list of
                        :meth:`RunSpec.to_dict` payloads to execute
``result``              worker → coordinator; the executed ``rows`` plus the
                        worker's ``busy_s`` for the chunk
``heartbeat``           worker → coordinator, every ``HEARTBEAT_INTERVAL_S``
                        from a background thread while the worker lives; the
                        coordinator tracks the last-beat age per worker and
                        surfaces it in :meth:`SocketBackend.stats`
``shutdown``            coordinator → worker; close the connection and exit
======================  ======================================================

Tasks are self-scheduled: chunks (cost-sorted largest-first, sizes
shrinking as the queue drains) live in a thread-safe queue, and one
coordinator thread per connection hands them out as its worker finishes
— idle workers therefore drain the chunks other workers have not
claimed, the socket-shaped analogue of steal-on-idle.
"""

from __future__ import annotations

import json
import multiprocessing
import queue
import socket
import struct
import threading
import time
from typing import Iterator, List, Optional, Sequence

from ..spec import RunSpec
from .base import BackendStats, ExecutionBackend, RowResult, RunFunction, WorkerHealth
from .work_stealing import dynamic_chunk_size

_LENGTH = struct.Struct(">I")

#: How often a worker's background thread emits a heartbeat frame.
HEARTBEAT_INTERVAL_S = 1.0


def send_frame(sock: socket.socket, message: dict) -> None:
    """Send one length-prefixed JSON frame."""
    payload = json.dumps(message).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> dict:
    """Receive one length-prefixed JSON frame (raises on a closed peer)."""
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    return json.loads(_recv_exact(sock, length).decode("utf-8"))


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks: List[bytes] = []
    while size > 0:
        chunk = sock.recv(size)
        if not chunk:
            raise ConnectionError("socket worker closed the connection mid-frame")
        chunks.append(chunk)
        size -= len(chunk)
    return b"".join(chunks)


def worker_main(
    host: str,
    port: int,
    worker_id: int,
    run_fn: RunFunction,
    heartbeat_interval: float = HEARTBEAT_INTERVAL_S,
) -> None:
    """A socket worker: connect, announce, execute task frames until shutdown.

    This is the function a *real* remote deployment would start on each
    worker host (with ``host``/``port`` pointing at the coordinator).
    A lost connection means the coordinator is gone (finished, crashed,
    or never needed this worker); the worker exits quietly — error
    reporting belongs to the coordinator side.

    While the worker lives, a background thread emits a ``heartbeat``
    frame every ``heartbeat_interval`` seconds (sends share one lock with
    the result path, so frames never interleave on the wire) — the
    liveness signal the coordinator turns into last-beat ages.
    """
    stop = threading.Event()
    try:
        with socket.create_connection((host, port)) as sock:
            send_lock = threading.Lock()

            def send(message: dict) -> None:
                with send_lock:
                    send_frame(sock, message)

            def beat() -> None:
                while not stop.wait(heartbeat_interval):
                    try:
                        send({"type": "heartbeat", "worker": worker_id})
                    except (ConnectionError, OSError):
                        return

            send({"type": "hello", "worker": worker_id})
            threading.Thread(target=beat, daemon=True).start()
            while True:
                frame = recv_frame(sock)
                if frame["type"] == "shutdown":
                    return
                if frame["type"] != "task":
                    raise ValueError(f"unexpected frame type {frame['type']!r}")
                specs = [RunSpec.from_dict(payload) for payload in frame["specs"]]
                started = time.perf_counter()
                rows = [run_fn(spec) for spec in specs]
                send(
                    {
                        "type": "result",
                        "worker": worker_id,
                        "rows": rows,
                        "busy_s": time.perf_counter() - started,
                    },
                )
    except (ConnectionError, OSError):
        return
    finally:
        stop.set()


class SocketBackend(ExecutionBackend):
    """Coordinator + N localhost TCP workers speaking JSON frames."""

    name = "socket"

    def __init__(
        self,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        run_fn=None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL_S,
    ) -> None:
        super().__init__(run_fn=run_fn)
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if heartbeat_interval <= 0.0:
            raise ValueError("heartbeat interval must be positive")
        self.workers = workers
        self.host = host
        self.heartbeat_interval = heartbeat_interval

    def _chunk_tasks(self, specs: Sequence[RunSpec]) -> "queue.SimpleQueue[List[dict]]":
        """Cost-sorted specs pre-chunked with shrinking sizes, as a queue."""
        ordered = sorted(specs, key=lambda s: (-s.cost_hint(), s.run_key))
        tasks: "queue.SimpleQueue[List[dict]]" = queue.SimpleQueue()
        index = 0
        while index < len(ordered):
            size = dynamic_chunk_size(len(ordered) - index, self.workers)
            tasks.put([spec.to_dict() for spec in ordered[index : index + size]])
            index += size
        return tasks

    def _serve_connection(
        self,
        sock: socket.socket,
        tasks: "queue.SimpleQueue[List[dict]]",
        results: "queue.Queue",
    ) -> None:
        """One coordinator thread: feed chunks to one worker, relay rows."""
        try:
            hello = recv_frame(sock)
            worker_id = int(hello.get("worker", -1))
            health = WorkerHealth(worker_id=f"sock-{worker_id}")
            # The hello proves liveness: it is the worker's first beat.
            health.observe_heartbeat(time.monotonic())
            while True:
                try:
                    chunk = tasks.get_nowait()
                except queue.Empty:
                    send_frame(sock, {"type": "shutdown"})
                    health.finalize_heartbeat_age(time.monotonic())
                    results.put(health)
                    return
                send_frame(sock, {"type": "task", "specs": chunk})
                while True:
                    frame = recv_frame(sock)
                    if frame["type"] == "heartbeat":
                        health.observe_heartbeat(time.monotonic())
                        continue
                    break
                health.observe_chunk(len(frame["rows"]), float(frame["busy_s"]))
                results.put(frame["rows"])
        except BaseException as error:
            results.put(error)
        finally:
            sock.close()

    def execute(self, specs: Sequence[RunSpec]) -> Iterator[RowResult]:
        self._stats = BackendStats(backend=self.name, workers=self.workers)
        if not specs:
            return
        tasks = self._chunk_tasks(specs)
        results: "queue.Queue" = queue.Queue()
        started = time.perf_counter()

        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        context = multiprocessing.get_context()
        processes: List[multiprocessing.Process] = []
        threads: List[threading.Thread] = []
        try:
            server.bind((self.host, 0))
            server.listen(self.workers)
            port = server.getsockname()[1]
            processes = [
                context.Process(
                    target=worker_main,
                    args=(self.host, port, i, self.run_fn, self.heartbeat_interval),
                    daemon=True,
                )
                for i in range(self.workers)
            ]
            for process in processes:
                process.start()
            # Accept with a poll loop: a worker that dies before connecting
            # (bootstrap failure under spawn) must not hang the coordinator
            # in accept() forever.  More dead processes than accepted
            # connections proves a worker was lost pre-connect; if the
            # connected survivors have already claimed every chunk, the
            # missing workers are not needed and the sweep proceeds without
            # them.
            server.settimeout(1.0)
            while len(threads) < self.workers:
                try:
                    connection, _address = server.accept()
                except socket.timeout:
                    if threads and tasks.empty():
                        break
                    dead = sum(1 for p in processes if not p.is_alive())
                    if dead > len(threads):
                        if threads:
                            break
                        raise RuntimeError(
                            f"{dead} socket worker(s) died before connecting"
                        ) from None
                    continue
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(connection, tasks, results),
                    daemon=True,
                )
                thread.start()
                threads.append(thread)
            # The accept phase is over: close the listener now so a
            # late-connecting worker stranded in the backlog gets a reset
            # (and exits quietly) instead of blocking until the join below.
            server.close()

            pending = len(specs)
            connected = len(threads)
            finished_workers = 0
            while pending > 0:
                item = results.get()
                if isinstance(item, BaseException):
                    raise RuntimeError("socket worker connection failed") from item
                if isinstance(item, WorkerHealth):
                    finished_workers += 1
                    self._stats.worker_health.append(item)
                    continue
                for row in item:
                    pending -= 1
                    self._stats.runs += 1
                    self._stats.wall_time_s = time.perf_counter() - started
                    yield str(row["run_key"]), row
            while finished_workers < connected:
                item = results.get(timeout=10)
                if isinstance(item, BaseException):
                    raise RuntimeError("socket worker connection failed") from item
                if isinstance(item, WorkerHealth):
                    finished_workers += 1
                    self._stats.worker_health.append(item)
            for process in processes:
                process.join(timeout=10)
        finally:
            server.close()
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
        self._stats.worker_health.sort(key=lambda w: w.worker_id)
        self._stats.wall_time_s = time.perf_counter() - started
