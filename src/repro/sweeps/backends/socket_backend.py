"""Remote-worker seam: a churn-tolerant coordinator and N workers over TCP.

This backend proves the distributed contract end to end while staying on
one machine: the coordinator binds a ``127.0.0.1`` port, spawns worker
*processes* that talk to it **only through the socket** — no shared
memory, no inherited queues — and streams rows back as they complete.
Pointing the same protocol at real remote hosts is a matter of starting
:func:`worker_main` elsewhere with the coordinator's address (the module
is directly runnable: ``python -m repro.sweeps.backends.socket_backend
HOST PORT``); nothing in the message flow changes.

Wire protocol (one frame = 4-byte big-endian length + UTF-8 JSON body):

======================  ======================================================
frame                   meaning
======================  ======================================================
``hello``               worker → coordinator, once per connection; carries the
                        worker id and (when the coordinator requires one) the
                        auth ``token`` — a mismatch closes the connection
                        before any work is leased
``task``                coordinator → worker; ``chunk_id`` identifies the
                        lease and ``specs`` is a list of
                        :meth:`RunSpec.to_dict` payloads to execute
``result``              worker → coordinator; echoes the ``chunk_id`` and
                        carries the executed ``rows`` plus the worker's
                        ``busy_s`` for the chunk
``heartbeat``           worker → coordinator, every ``HEARTBEAT_INTERVAL_S``
                        from a background thread while the worker lives; the
                        coordinator tracks the last-beat age per worker and
                        uses it to declare silent workers lost
``shutdown``            coordinator → worker; close the connection and exit
======================  ======================================================

Fault tolerance: every chunk is **leased** to exactly one connection
(:class:`_ChunkLedger`).  When a worker is lost — its connection drops,
or its heartbeats go silent for longer than ``lost_after_s`` — the
coordinator requeues the leased chunk at the front of the queue for the
surviving workers instead of aborting, and records the loss in
``BackendStats.worker_losses`` / ``requeued_chunks`` and the worker's
``lost`` flag.  Because rows are pure functions of their specs, a
re-executed chunk reproduces the lost rows bit-for-bit.  The listener
stays open for the sweep's whole lifetime, so workers started
out-of-band via :func:`worker_main` join mid-sweep and immediately pull
chunks; the sweep fails only when zero live workers remain (and none of
the coordinator's own worker processes can still connect) while chunks
are outstanding.

Tasks are self-scheduled: chunks (cost-sorted largest-first, sizes
shrinking as the queue drains — :func:`~.work_stealing.cost_sorted_chunks`)
live in the ledger, and one coordinator thread per connection hands them
out as its worker finishes — idle workers therefore drain the chunks
other workers have not claimed, the socket-shaped analogue of
steal-on-idle.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import queue
import select
import socket
import struct
import sys
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from collections import deque

from ..spec import RunSpec
from .base import (
    BackendStats,
    ExecutionBackend,
    RowResult,
    RunFunction,
    WorkerHealth,
    default_run_fn,
)
from .work_stealing import cost_sorted_chunks

_LENGTH = struct.Struct(">I")

#: How often a worker's background thread emits a heartbeat frame.
HEARTBEAT_INTERVAL_S = 1.0

#: Default heartbeat silence after which the coordinator declares a worker
#: lost and requeues its leased chunk (10 beats at the default interval).
DEFAULT_LOST_AFTER_S = 10.0

#: How long a connection may sit between accept and its ``hello`` frame.
HELLO_TIMEOUT_S = 30.0

#: Coordinator poll granularity: result-queue waits and accept() timeouts.
_POLL_S = 0.2


class SocketProtocolError(RuntimeError):
    """A worker sent a frame the protocol does not allow at this point."""


def send_frame(sock: socket.socket, message: dict) -> None:
    """Send one length-prefixed JSON frame."""
    payload = json.dumps(message).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> dict:
    """Receive one length-prefixed JSON frame (raises on a closed peer)."""
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    return json.loads(_recv_exact(sock, length).decode("utf-8"))


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks: List[bytes] = []
    while size > 0:
        chunk = sock.recv(size)
        if not chunk:
            raise ConnectionError("socket worker closed the connection mid-frame")
        chunks.append(chunk)
        size -= len(chunk)
    return b"".join(chunks)


def _wait_readable(sock: socket.socket, timeout: float) -> bool:
    """True when ``sock`` has data (or EOF) within ``timeout`` seconds."""
    readable, _, _ = select.select([sock], [], [], timeout)
    return bool(readable)


def heartbeat_expired(
    health: WorkerHealth, now: float, lost_after_s: float
) -> bool:
    """Is ``health``'s last heartbeat older than ``lost_after_s`` at ``now``?

    The loss-detection predicate, separated out so it can be exercised
    with a fake clock: a worker whose hello/heartbeats were observed at
    monotonic times ``t`` is lost once ``now - t > lost_after_s``.  A
    health record that never beat is not expired (admission records the
    hello as the first beat, so this only covers pre-admission records).
    """
    age = health.heartbeat_age_s(now)
    return age is not None and age > lost_after_s


def worker_main(
    host: str,
    port: int,
    worker_id: int = 0,
    run_fn: Optional[RunFunction] = None,
    heartbeat_interval: float = HEARTBEAT_INTERVAL_S,
    token: Optional[str] = None,
) -> None:
    """A socket worker: connect, announce, execute task frames until shutdown.

    This is the function a *real* remote deployment starts on each worker
    host (with ``host``/``port`` pointing at the coordinator) — directly,
    or through this module's command line.  Workers may join a sweep that
    is already running: the coordinator's listener stays open for the
    sweep's lifetime and leases the next chunk to whoever connects (with
    the right ``token``, when the coordinator requires one).  A lost
    connection means the coordinator is gone (finished, crashed, or never
    needed this worker) or rejected the token; the worker exits quietly —
    error reporting belongs to the coordinator side.

    While the worker lives, a background thread emits a ``heartbeat``
    frame every ``heartbeat_interval`` seconds (sends share one lock with
    the result path, so frames never interleave on the wire) — the
    liveness signal the coordinator's loss detection keys off.
    """
    if run_fn is None:
        run_fn = default_run_fn()
    stop = threading.Event()
    try:
        with socket.create_connection((host, port)) as sock:
            send_lock = threading.Lock()

            def send(message: dict) -> None:
                with send_lock:
                    send_frame(sock, message)

            def beat() -> None:
                while not stop.wait(heartbeat_interval):
                    try:
                        send({"type": "heartbeat", "worker": worker_id})
                    except (ConnectionError, OSError):
                        return

            hello = {"type": "hello", "worker": worker_id}
            if token is not None:
                hello["token"] = token
            send(hello)
            threading.Thread(target=beat, daemon=True).start()
            while True:
                frame = recv_frame(sock)
                if frame["type"] == "shutdown":
                    return
                if frame["type"] != "task":
                    raise ValueError(f"unexpected frame type {frame['type']!r}")
                specs = [RunSpec.from_dict(payload) for payload in frame["specs"]]
                started = time.perf_counter()
                rows = [run_fn(spec) for spec in specs]
                send(
                    {
                        "type": "result",
                        "worker": worker_id,
                        "chunk_id": frame.get("chunk_id"),
                        "rows": rows,
                        "busy_s": time.perf_counter() - started,
                    },
                )
    except (ConnectionError, OSError):
        return
    finally:
        stop.set()


class _ChunkLedger:
    """Thread-safe lease accounting for the sweep's task chunks.

    Chunks enter ``pending`` in LPT order; :meth:`acquire` moves one to
    ``leased`` for the connection that will execute it.  The serving
    thread either :meth:`complete`\\ s the lease (result received) or
    :meth:`requeue`\\ s it (worker lost) — requeued chunks go back to the
    *front* so the probably-expensive interrupted work restarts first.
    A chunk is therefore executed to completion exactly once, however
    many workers die holding it on the way.
    """

    def __init__(self, chunks: Sequence[List[dict]]) -> None:
        self._lock = threading.Lock()
        self._pending: Deque[Tuple[int, List[dict]]] = deque(enumerate(chunks))
        self._leased: Dict[int, List[dict]] = {}

    def acquire(self) -> Optional[Tuple[int, List[dict]]]:
        """Lease the next pending chunk, or None when none are pending."""
        with self._lock:
            if not self._pending:
                return None
            chunk_id, specs = self._pending.popleft()
            self._leased[chunk_id] = specs
            return chunk_id, specs

    def complete(self, chunk_id: int) -> None:
        """Retire a leased chunk whose result arrived."""
        with self._lock:
            del self._leased[chunk_id]

    def requeue(self, chunk_id: int) -> None:
        """Return a leased chunk to the front of the queue (worker lost)."""
        with self._lock:
            specs = self._leased.pop(chunk_id)
            self._pending.appendleft((chunk_id, specs))

    def outstanding(self) -> int:
        """Chunks not yet completed (pending + leased)."""
        with self._lock:
            return len(self._pending) + len(self._leased)


@dataclass
class _ConnectionLost:
    """Terminal report of a connection that died or went silent mid-sweep."""

    health: WorkerHealth
    requeued: bool


class _WorkerLostError(ConnectionError):
    """Raised inside a serving thread when heartbeat silence exceeds the bound."""


class SocketBackend(ExecutionBackend):
    """Churn-tolerant coordinator + N TCP workers speaking JSON frames.

    ``token`` (optional) gates admission: when set, a connection's
    ``hello`` must present the same token or it is closed without work —
    the guard that lets the listener stay open for out-of-band joiners.
    ``lost_after_s`` bounds heartbeat silence before a connected worker
    is declared lost and its leased chunk requeued (None disables the
    heartbeat check; connection drops are always detected).  ``port``
    pins the listening port (0 = ephemeral; the bound port is exposed as
    :attr:`bound_port` while ``execute`` runs, so late workers know where
    to join).
    """

    name = "socket"

    def __init__(
        self,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        run_fn=None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL_S,
        token: Optional[str] = None,
        lost_after_s: Optional[float] = DEFAULT_LOST_AFTER_S,
        port: int = 0,
        drain_timeout_s: float = 10.0,
    ) -> None:
        super().__init__(run_fn=run_fn)
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if heartbeat_interval <= 0.0:
            raise ValueError("heartbeat interval must be positive")
        if lost_after_s is not None and lost_after_s <= 0.0:
            raise ValueError("lost_after_s must be positive (or None to disable)")
        if port < 0:
            raise ValueError("port must be non-negative (0 = ephemeral)")
        if drain_timeout_s <= 0.0:
            raise ValueError("drain timeout must be positive")
        self.workers = workers
        self.host = host
        self.heartbeat_interval = heartbeat_interval
        self.token = token
        self.lost_after_s = lost_after_s
        self.port = port
        self.drain_timeout_s = drain_timeout_s
        #: The port the coordinator is listening on (set while ``execute``
        #: runs) — where an out-of-band :func:`worker_main` should connect.
        self.bound_port: Optional[int] = None
        # Serving threads poll at a fraction of the loss bound so silence
        # is detected promptly even with a small ``lost_after_s``.
        if lost_after_s is None:
            self._serve_poll_s = _POLL_S
        else:
            self._serve_poll_s = max(0.02, min(_POLL_S, lost_after_s / 4.0))
        self._reset_coordinator_state()

    def _reset_coordinator_state(self) -> None:
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._live = 0  # admitted connections currently being served
        self._admitted = 0  # connections ever admitted past hello/token
        self._names: set = set()
        self._active: Dict[str, WorkerHealth] = {}
        self._connections: set = set()
        self._processes: List[multiprocessing.Process] = []

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------

    def _accept_loop(
        self,
        server: socket.socket,
        ledger: _ChunkLedger,
        results: "queue.Queue",
    ) -> None:
        """Admit connections for the sweep's whole lifetime (late joiners)."""
        while not self._stop.is_set():
            try:
                connection, _address = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed during teardown
            threading.Thread(
                target=self._serve_connection,
                args=(connection, ledger, results),
                daemon=True,
            ).start()

    def _await_hello(self, sock: socket.socket) -> Optional[dict]:
        """The connection's hello frame, or None if it never arrives."""
        deadline = time.monotonic() + HELLO_TIMEOUT_S
        while not self._stop.is_set() and time.monotonic() < deadline:
            if _wait_readable(sock, self._serve_poll_s):
                return recv_frame(sock)
        return None

    def _admit(self, sock: socket.socket, hello: dict) -> Optional[WorkerHealth]:
        """Validate the hello and register the connection, or reject it.

        Rejections (bad frame type, missing/invalid auth token) close the
        connection without aborting the sweep — an unauthenticated
        stranger must not be able to kill a running sweep by connecting.
        """
        if hello.get("type") != "hello":
            warnings.warn(
                "rejecting socket connection whose first frame is "
                f"{hello.get('type')!r}, not 'hello'"
            )
            return None
        if self.token is not None and hello.get("token") != self.token:
            warnings.warn(
                "rejecting socket worker with a missing or invalid auth token"
            )
            return None
        worker_id = int(hello.get("worker", -1))
        with self._lock:
            name = f"sock-{worker_id}"
            suffix = 2
            while name in self._names:
                name = f"sock-{worker_id}.{suffix}"
                suffix += 1
            self._names.add(name)
            health = WorkerHealth(worker_id=name)
            self._admitted += 1
            self._live += 1
            self._active[name] = health
            self._connections.add(sock)
        # The hello proves liveness: it is the worker's first beat.
        health.observe_heartbeat(time.monotonic())
        return health

    def _await_result(self, sock: socket.socket, health: WorkerHealth) -> dict:
        """The next non-heartbeat frame, with heartbeat-silence loss detection."""
        while True:
            if not _wait_readable(sock, self._serve_poll_s):
                now = time.monotonic()
                if self.lost_after_s is not None and heartbeat_expired(
                    health, now, self.lost_after_s
                ):
                    age = health.heartbeat_age_s(now)
                    raise _WorkerLostError(
                        f"worker {health.worker_id} silent for {age:.1f}s "
                        f"(lost_after_s={self.lost_after_s})"
                    )
                continue
            frame = recv_frame(sock)
            if frame.get("type") == "heartbeat":
                health.observe_heartbeat(time.monotonic())
                continue
            return frame

    def _serve_connection(
        self,
        sock: socket.socket,
        ledger: _ChunkLedger,
        results: "queue.Queue",
    ) -> None:
        """One coordinator thread: feed leased chunks to one worker, relay rows.

        Every *admitted* connection puts exactly one terminal item on the
        results queue: its :class:`WorkerHealth` (graceful release), a
        :class:`_ConnectionLost` (died or went silent — the leased chunk,
        if any, has been requeued), or an exception (protocol violation;
        aborts the sweep).
        """
        health: Optional[WorkerHealth] = None
        lease: Optional[Tuple[int, List[dict]]] = None
        try:
            try:
                hello = self._await_hello(sock)
                if hello is None:
                    return
                health = self._admit(sock, hello)
            except (ConnectionError, OSError, ValueError, TypeError):
                # Died, or spoke garbage, before being admitted: nothing
                # was at stake, and a stranger must not abort the sweep.
                return
            if health is None:
                return
            while True:
                lease = ledger.acquire()
                if lease is None:
                    send_frame(sock, {"type": "shutdown"})
                    health.finalize_heartbeat_age(time.monotonic())
                    results.put(health)
                    return
                chunk_id, chunk = lease
                send_frame(sock, {"type": "task", "chunk_id": chunk_id, "specs": chunk})
                frame = self._await_result(sock, health)
                if frame.get("type") != "result":
                    raise SocketProtocolError(
                        f"protocol error from worker {health.worker_id}: expected "
                        f"a 'result' frame, got {frame.get('type')!r}"
                    )
                if frame.get("chunk_id") != chunk_id:
                    raise SocketProtocolError(
                        f"protocol error from worker {health.worker_id}: result "
                        f"for chunk {frame.get('chunk_id')!r}, expected {chunk_id}"
                    )
                ledger.complete(chunk_id)
                lease = None
                health.observe_chunk(len(frame["rows"]), float(frame["busy_s"]))
                results.put(frame["rows"])
        except (ConnectionError, OSError) as _lost:
            # Worker churn, not a sweep failure: requeue the in-flight
            # chunk (if any) for the survivors and report the loss.
            requeued = False
            if lease is not None:
                ledger.requeue(lease[0])
                requeued = True
            if health is not None:
                health.lost = True
                health.finalize_heartbeat_age(time.monotonic())
                results.put(_ConnectionLost(health=health, requeued=requeued))
        except BaseException as error:
            results.put(error)
        finally:
            sock.close()
            if health is not None:
                with self._lock:
                    self._live -= 1
                    self._active.pop(health.worker_id, None)
                    self._connections.discard(sock)

    def _check_liveness(self, results: "queue.Queue", pending: int) -> None:
        """Fail the sweep iff no live worker remains and work is outstanding.

        A worker process that is still alive may yet connect (bootstrap
        under spawn is slow), so only processes that are *dead* without
        ever having produced an admitted connection count against the
        sweep — a worker dying after it connected is churn, handled by the
        requeue path, never grounds to stop accepting others.
        """
        with self._lock:
            live = self._live
            admitted = self._admitted
        if live > 0 or any(p.is_alive() for p in self._processes):
            return
        if not results.empty():
            return  # terminal reports / rows still queued: judge after them
        if admitted == 0:
            dead = sum(1 for p in self._processes if not p.is_alive())
            raise RuntimeError(
                f"{dead} socket worker(s) died before connecting"
            )
        raise RuntimeError(
            f"all socket workers lost with {pending} runs outstanding "
            f"({self._stats.worker_losses} worker(s) lost mid-sweep); "
            "start a new worker_main against the coordinator before the last "
            "one dies, or raise lost_after_s"
        )

    def _abandon_stragglers(self) -> None:
        """Log (not raise) workers that wedged after the last row arrived."""
        now = time.monotonic()
        with self._lock:
            stragglers = list(self._active.values())
        if not stragglers:
            return
        ages = ", ".join(
            f"{h.worker_id} (last heartbeat "
            + (f"{h.heartbeat_age_s(now):.1f}s ago)" if h.heartbeat_age_s(now) is not None else "never)")
            for h in stragglers
        )
        warnings.warn(
            f"abandoning {len(stragglers)} unresponsive socket worker(s) after "
            f"{self.drain_timeout_s:.0f}s drain timeout: {ages}"
        )
        for health in stragglers:
            health.lost = True
            health.finalize_heartbeat_age(now)
            self._stats.worker_losses += 1
            self._stats.worker_health.append(health)

    def execute(self, specs: Sequence[RunSpec]) -> Iterator[RowResult]:
        self._stats = BackendStats(backend=self.name, workers=self.workers)
        if not specs:
            return
        self._reset_coordinator_state()
        chunks = [
            [spec.to_dict() for spec in chunk]
            for chunk in cost_sorted_chunks(specs, self.workers)
        ]
        ledger = _ChunkLedger(chunks)
        results: "queue.Queue" = queue.Queue()
        started = time.perf_counter()
        reported = 0

        def handle_terminal(item) -> bool:
            """Process a non-row item; True when it was terminal/handled."""
            nonlocal reported
            if isinstance(item, WorkerHealth):
                reported += 1
                self._stats.worker_health.append(item)
                return True
            if isinstance(item, _ConnectionLost):
                reported += 1
                self._stats.worker_losses += 1
                if item.requeued:
                    self._stats.requeued_chunks += 1
                self._stats.worker_health.append(item.health)
                return True
            if isinstance(item, SocketProtocolError):
                raise item
            if isinstance(item, BaseException):
                raise RuntimeError("socket worker connection failed") from item
            return False

        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        context = multiprocessing.get_context()
        accept_thread: Optional[threading.Thread] = None
        try:
            server.bind((self.host, self.port))
            server.listen()
            self.bound_port = server.getsockname()[1]
            server.settimeout(_POLL_S)
            self._processes = [
                context.Process(
                    target=worker_main,
                    args=(self.host, self.bound_port, i, self.run_fn,
                          self.heartbeat_interval),
                    kwargs={"token": self.token},
                    daemon=True,
                )
                for i in range(self.workers)
            ]
            for process in self._processes:
                process.start()
            accept_thread = threading.Thread(
                target=self._accept_loop,
                args=(server, ledger, results),
                daemon=True,
            )
            accept_thread.start()

            pending = len(specs)
            while pending > 0:
                try:
                    item = results.get(timeout=_POLL_S)
                except queue.Empty:
                    self._check_liveness(results, pending)
                    continue
                if handle_terminal(item):
                    continue
                for row in item:
                    pending -= 1
                    self._stats.runs += 1
                    self._stats.wall_time_s = time.perf_counter() - started
                    yield str(row["run_key"]), row
            # Every row is in: stop admitting joiners, release the
            # survivors, and collect their terminal health reports.  A
            # worker that wedges here holds no lease (all chunks are
            # complete), so it is abandoned with a logged loss rather than
            # an error — the sweep's data is already safe.
            self._stop.set()
            deadline = time.monotonic() + self.drain_timeout_s
            while reported < self._admitted:
                try:
                    item = results.get(timeout=_POLL_S)
                except queue.Empty:
                    if time.monotonic() >= deadline:
                        self._abandon_stragglers()
                        break
                    continue
                handle_terminal(item)
            for process in self._processes:
                process.join(timeout=10)
        finally:
            self._stop.set()
            server.close()
            self.bound_port = None
            if accept_thread is not None:
                accept_thread.join(timeout=5)
            with self._lock:
                leftovers = list(self._connections)
            for connection in leftovers:
                connection.close()
            for process in self._processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
        self._stats.worker_health.sort(key=lambda w: w.worker_id)
        self._stats.wall_time_s = time.perf_counter() - started


def worker_cli(argv: Optional[List[str]] = None) -> int:
    """Command line of an out-of-band worker joining a (running) sweep."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps.backends.socket_backend",
        description="Join a socket-backend sweep coordinator as a worker. "
        "The coordinator may already be mid-sweep: the worker is admitted "
        "and starts pulling chunks immediately.",
    )
    parser.add_argument("host", help="coordinator host")
    parser.add_argument("port", type=int, help="coordinator port")
    parser.add_argument("--worker-id", type=int, default=0,
                        help="numeric id announced in the hello frame")
    parser.add_argument("--token", default=None,
                        help="auth token matching the coordinator's --worker-token")
    parser.add_argument("--heartbeat-interval", type=float,
                        default=HEARTBEAT_INTERVAL_S)
    args = parser.parse_args(argv)
    worker_main(
        args.host,
        args.port,
        args.worker_id,
        None,
        args.heartbeat_interval,
        token=args.token,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(worker_cli())
