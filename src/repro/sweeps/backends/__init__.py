"""Pluggable execution backends for the sweep runner.

The :class:`~repro.sweeps.runner.SweepRunner` delegates *how* runs
execute to an :class:`ExecutionBackend`; four ship with the repo:

``serial``
    One run after another in the calling process — the reference
    semantics every other backend must reproduce bit-identically.
``process-pool``
    The pre-refactor static ``multiprocessing`` pool: ordered, chunked
    ``imap`` in expansion order.
``work-stealing``
    Cost-ordered per-worker deques with dynamic chunking and
    steal-on-idle — removes the straggler tail of skewed grids.
``socket``
    A churn-tolerant coordinator and N worker processes over TCP
    speaking length-prefixed JSON frames — the remote-worker seam.
    Chunks are leased and requeued on worker loss; the listener admits
    late-joining workers (gated by an auth token) for the sweep's whole
    lifetime.

All backends yield ``(run_key, row)`` pairs as runs complete and report
worker health via :meth:`ExecutionBackend.stats`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from .base import (
    BackendStats,
    ExecutionBackend,
    RowResult,
    RunFunction,
    WorkerHealth,
    iter_rows,
)
from .process_pool import ProcessPoolBackend
from .serial import SerialBackend
from .socket_backend import SocketBackend, SocketProtocolError
from .work_stealing import WorkStealingBackend

#: Registry of constructable backend names.
BACKENDS: Dict[str, type] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    WorkStealingBackend.name: WorkStealingBackend,
    SocketBackend.name: SocketBackend,
}


def backend_names() -> Tuple[str, ...]:
    """The registered backend names, in registry order."""
    return tuple(BACKENDS)


def make_backend(
    name: str,
    *,
    workers: int = 1,
    chunk_size: int = 1,
    run_fn: Optional[RunFunction] = None,
    socket_options: Optional[Dict[str, object]] = None,
) -> ExecutionBackend:
    """Construct a backend by registry name.

    ``workers``/``chunk_size`` are applied where the backend accepts
    them; the serial backend ignores both.  ``socket_options`` are extra
    keyword arguments for the socket backend (``token``, ``lost_after_s``,
    ``port``, ...) and are rejected for any other backend.
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        known = ", ".join(BACKENDS)
        raise ValueError(f"unknown backend {name!r}; known: {known}") from None
    if cls is SocketBackend:
        return SocketBackend(workers=workers, run_fn=run_fn, **(socket_options or {}))
    if socket_options:
        raise ValueError(
            f"socket_options only apply to the socket backend, not {name!r}"
        )
    if cls is SerialBackend:
        return SerialBackend(run_fn=run_fn)
    if cls is ProcessPoolBackend:
        return ProcessPoolBackend(workers=workers, chunk_size=chunk_size, run_fn=run_fn)
    return WorkStealingBackend(workers=workers, run_fn=run_fn)


__all__ = [
    "BACKENDS",
    "BackendStats",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "RowResult",
    "RunFunction",
    "SerialBackend",
    "SocketBackend",
    "SocketProtocolError",
    "WorkStealingBackend",
    "WorkerHealth",
    "backend_names",
    "iter_rows",
    "make_backend",
]
