"""Replicate-bundle planning and batched execution for the sweep runner.

The sweep grid's seed axis produces runs that differ *only* by seed: the
same workload family, algorithm, scheduler, error model and budgets.
:func:`plan_replicate_bundles` folds such seed-replicates into
:class:`ReplicateBundle` work items which
:func:`execute_bundle` advances together through the replicate-batched
engine (:mod:`repro.engine.replicate`) — one committed tensor, one grid,
one decide pass per round — and then splits back into the *same* per-run
rows serial execution produces (identical ``run_key``s, identical fields
up to :data:`~repro.sweeps.runner.TIMING_FIELDS`).  The sqlite store and
the streaming aggregator never see a bundle, only rows.

Bundling is declined (the spec stays a singleton work item) when:

* the specs are not seed-replicates of each other — any non-seed field
  differs;
* the scheduler is not round-structured (``fsync``/``ssync``): the
  batched path advances lanes one *validated round* at a time, which
  continuous-time schedulers do not produce;
* the spec resolves to the 3D registries (the 3D engines have no
  replicate tier yet);
* fewer than two eligible replicates remain after store dedup — a bundle
  of one is just overhead.

Correctness never depends on the planner's choices: a declined spec runs
through :func:`~repro.sweeps.runner.execute_run` unchanged, and a bundled
spec produces bit-identical rows by construction (each lane owns its own
RNG stream; see the engine module's contract).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .factories import run_dimension
from .spec import RunSpec

#: Planar schedulers whose activation streams arrive as validated rounds —
#: the structure the batched executor advances lanes by.
ROUND_SCHEDULERS = ("fsync", "ssync")

#: Largest bundle the planner emits.  Beyond this the per-round tensor
#: stops fitting nicely in cache and a single work item grows too coarse
#: for work-stealing to balance; long seed axes split into chunks.
MAX_BUNDLE = 32


@dataclass(frozen=True)
class ReplicateBundle:
    """A backend work item bundling seed-replicates of one run family."""

    members: Tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError("a replicate bundle needs at least two members")

    @property
    def run_key(self) -> str:
        """A stable display/ordering key (never used for row identity)."""
        first = self.members[0]
        seeds = ",".join(str(m.seed) for m in self.members)
        return f"bundle[{first.with_seed(0).run_key}::seeds={seeds}]"

    def cost_hint(self) -> float:
        """Estimated batched cost: members billed at the replicate rate."""
        return sum(m.cost_hint(cost_class="2d-replicate") for m in self.members)

    def __len__(self) -> int:
        return len(self.members)


#: What a backend executes: a plain spec or a bundle of seed-replicates.
WorkItem = Union[RunSpec, ReplicateBundle]


def bundle_eligible(spec: RunSpec) -> bool:
    """Whether this spec may join a replicate bundle at all."""
    if spec.scheduler not in ROUND_SCHEDULERS:
        return False
    try:
        dimension = run_dimension(
            spec.algorithm, spec.scheduler, spec.workload, spec.error_model
        )
    except ValueError:
        return False
    return dimension == 2


def plan_replicate_bundles(
    specs: Sequence[RunSpec], *, max_bundle: int = MAX_BUNDLE
) -> List[WorkItem]:
    """Fold seed-replicates among ``specs`` into bundles.

    Grouping key: the spec with its seed normalised away — two specs
    bundle iff *every* other field matches.  The returned work-item list
    preserves expansion order (a bundle sits where its first member sat),
    so ordered backends still stream rows in a deterministic order.
    """
    if max_bundle < 2:
        raise ValueError("max_bundle must be at least 2")
    slots: List[Union[RunSpec, List[RunSpec]]] = []
    groups: Dict[RunSpec, List[RunSpec]] = {}
    for spec in specs:
        if not bundle_eligible(spec):
            slots.append(spec)
            continue
        key = dataclasses.replace(spec, seed=0)
        bucket = groups.get(key)
        if bucket is None:
            bucket = []
            groups[key] = bucket
            slots.append(bucket)
        bucket.append(spec)
    items: List[WorkItem] = []
    for slot in slots:
        if isinstance(slot, RunSpec):
            items.append(slot)
            continue
        if len(slot) < 2:
            items.append(slot[0])
            continue
        for start in range(0, len(slot), max_bundle):
            chunk = slot[start : start + max_bundle]
            if len(chunk) >= 2:
                items.append(ReplicateBundle(tuple(chunk)))
            else:
                items.append(chunk[0])
    return items


def _one_shot_factory(spec: RunSpec, initial):
    """A lane factory that hands out ``initial`` once, then rebuilds fresh.

    The replicate engine may call a factory twice (serial-fallback path);
    the second call must not reuse scheduler/RNG objects the first
    attempt already advanced.
    """
    from .runner import planar_setup

    state = {"initial": initial}

    def factory():
        current = state.pop("initial", None)
        if current is None:
            current = planar_setup(spec)
        configuration, algorithm, scheduler, config = current
        return configuration.positions, algorithm, scheduler, config

    return factory


def execute_bundle(
    bundle: ReplicateBundle,
    *,
    fanout_workers: Optional[int] = None,
    fanout_min_robots: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Execute every member of a bundle batched; return per-member rows.

    Row ``i`` is the row ``execute_run(bundle.members[i])`` would produce,
    bit-identical outside :data:`~repro.sweeps.runner.TIMING_FIELDS`.
    """
    from ..engine.replicate import run_replicated_simulations
    from .runner import planar_row, planar_setup

    configurations = []
    factories = []
    for spec in bundle.members:
        initial = planar_setup(spec)
        configurations.append(initial[0])
        factories.append(_one_shot_factory(spec, initial))
    results = run_replicated_simulations(
        factories,
        fanout_workers=fanout_workers,
        fanout_min_robots=fanout_min_robots,
    )
    rows = [
        planar_row(spec, configuration, result, result.wall_time_seconds)
        for spec, configuration, result in zip(
            bundle.members, configurations, results
        )
    ]
    # Provenance marker (a TIMING_FIELDS member, so row comparisons still
    # match serial rows): lanes run interleaved, so each row's wall time
    # spans nearly the whole bundle — the cost-hint calibrator divides by
    # this to recover the marginal per-member cost.
    for row in rows:
        row["batched_replicates"] = len(bundle)
    return rows


def execute_work_item(item: WorkItem):
    """Backend dispatcher: a spec yields one row, a bundle a list of rows."""
    if isinstance(item, ReplicateBundle):
        return execute_bundle(item)
    from .runner import execute_run

    return execute_run(item)
