"""Name-to-object factories for the sweep engine.

Run specs are plain data; these registries turn their string fields into
live algorithm, scheduler, workload and error-model objects *inside* the
process that executes the run.  Keeping construction here (rather than in
the spec) is what makes run specs picklable and the sweep engine safe to
fan out over ``multiprocessing`` workers.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence, Tuple

from ..algorithms import (
    AndoAlgorithm,
    CenterOfGravityAlgorithm,
    ConvergenceAlgorithm,
    KatreniakAlgorithm,
    KKNPSAlgorithm,
    MinboxAlgorithm,
)
from ..geometry.transforms import SymmetricDistortion
from ..model.configuration import Configuration
from ..model.errors import MotionModel, PerceptionModel
from ..schedulers import (
    AsyncScheduler,
    FSyncScheduler,
    KAsyncScheduler,
    KNestAScheduler,
    Scheduler,
    SSyncScheduler,
)
from ..workloads import (
    annulus_configuration,
    blob_configuration,
    clustered_configuration,
    line_configuration,
    random_connected_configuration,
    random_disk_configuration,
    ring_configuration,
    truncated_grid_configuration,
)

ALGORITHM_FACTORIES: Dict[str, Callable[..., ConvergenceAlgorithm]] = {
    "kknps": KKNPSAlgorithm,
    "ando": AndoAlgorithm,
    "katreniak": KatreniakAlgorithm,
    "cog": CenterOfGravityAlgorithm,
    "gcm": MinboxAlgorithm,
}

SCHEDULER_FACTORIES: Dict[str, Callable[[int], Scheduler]] = {
    "fsync": lambda k: FSyncScheduler(),
    "ssync": lambda k: SSyncScheduler(),
    "k-async": lambda k: KAsyncScheduler(k=k),
    "k-nesta": lambda k: KNestAScheduler(k=k),
    "async": lambda k: AsyncScheduler(),
}


def _clusters_workload(n: int, seed: int, visibility_range: float) -> Configuration:
    # Exactly n robots: k clusters plus k-1 bridges, the cluster robots
    # split as evenly as possible.  Small n degrades to fewer clusters.
    k = min(3, max(1, n // 2))
    in_clusters = n - (k - 1)
    base, extra = divmod(in_clusters, k)
    sizes = [base + 1 if c < extra else base for c in range(k)]
    return clustered_configuration(
        k, max(sizes), cluster_sizes=sizes, visibility_range=visibility_range, seed=seed
    )


# Every factory returns a configuration of exactly ``n`` robots (``ring``
# raises for n < 3 rather than silently padding), so a sweep's run keys
# always describe the simulations they label.
WORKLOAD_FACTORIES: Dict[str, Callable[[int, int, float], Configuration]] = {
    "random": lambda n, seed, v: random_connected_configuration(
        n, visibility_range=v, seed=seed
    ),
    "line": lambda n, seed, v: line_configuration(n, spacing=0.8 * v, visibility_range=v),
    "grid": lambda n, seed, v: truncated_grid_configuration(
        n, spacing=0.7 * v, visibility_range=v
    ),
    "ring": lambda n, seed, v: ring_configuration(n, visibility_range=v),
    "clusters": _clusters_workload,
    "blobs": lambda n, seed, v: blob_configuration(
        n, n_blobs=min(3, n), visibility_range=v, seed=seed
    ),
    "annulus": lambda n, seed, v: annulus_configuration(
        n, inner_radius=0.5 * v, outer_radius=1.2 * v, visibility_range=v, seed=seed
    ),
    "disk": lambda n, seed, v: random_disk_configuration(
        n, disk_radius=2.0 * v, visibility_range=v, seed=seed
    ),
}

ERROR_MODEL_FACTORIES: Dict[str, Callable[[], Tuple[PerceptionModel, MotionModel]]] = {
    # No error at all: the baseline the paper's positive results assume away.
    "exact": lambda: (PerceptionModel.exact(), MotionModel.rigid()),
    # 5% relative distance-measurement error (Section 2.3.2).
    "distance-5": lambda: (PerceptionModel(distance_error=0.05), MotionModel.rigid()),
    # Compass skew 0.1 through the symmetric distortion (Section 2.3.2).
    "skew-10": lambda: (
        PerceptionModel(distortion=SymmetricDistortion(amplitude=0.1, frequency=2)),
        MotionModel.rigid(),
    ),
    # xi = 0.5 rigidity: the adversary may stop a move half way (Section 2.3.3).
    "nonrigid-50": lambda: (PerceptionModel.exact(), MotionModel(xi=0.5)),
    # Quadratic lateral motion error, the tolerated kind (Section 6.1).
    "quad-motion": lambda: (
        PerceptionModel.exact(),
        MotionModel(xi=0.5, deviation="quadratic", coefficient=0.2),
    ),
}


def algorithm_names() -> Tuple[str, ...]:
    """Registered algorithm names."""
    return tuple(ALGORITHM_FACTORIES)


def scheduler_names() -> Tuple[str, ...]:
    """Registered scheduler names."""
    return tuple(SCHEDULER_FACTORIES)


def workload_names() -> Tuple[str, ...]:
    """Registered workload names."""
    return tuple(WORKLOAD_FACTORIES)


def error_model_names() -> Tuple[str, ...]:
    """Registered error-model names."""
    return tuple(ERROR_MODEL_FACTORIES)


def make_algorithm(
    name: str, params: Sequence[Tuple[str, float]] = ()
) -> ConvergenceAlgorithm:
    """Instantiate an algorithm by name with optional keyword parameters."""
    factory = _lookup(ALGORITHM_FACTORIES, name, "algorithm")
    kwargs = dict(params)
    if kwargs and name != "kknps":
        raise ValueError(f"algorithm {name!r} takes no parameters, got {kwargs}")
    return factory(**kwargs)


def make_scheduler(name: str, k: int = 1) -> Scheduler:
    """Instantiate a scheduler by name (``k`` applies to k-async/k-nesta)."""
    return _lookup(SCHEDULER_FACTORIES, name, "scheduler")(k)


def make_workload(
    name: str, n_robots: int, seed: int, visibility_range: float = 1.0
) -> Configuration:
    """Build an initial configuration by workload name."""
    return _lookup(WORKLOAD_FACTORIES, name, "workload")(n_robots, seed, visibility_range)


def make_error_models(name: str) -> Tuple[PerceptionModel, MotionModel]:
    """Build the (perception, motion) pair of a named error model."""
    return _lookup(ERROR_MODEL_FACTORIES, name, "error model")()


def validate_names(
    *,
    algorithms: Sequence[str] = (),
    schedulers: Sequence[str] = (),
    workloads: Sequence[str] = (),
    error_models: Sequence[str] = (),
) -> None:
    """Raise ``ValueError`` for any name missing from its registry."""
    for names, registry, kind in (
        (algorithms, ALGORITHM_FACTORIES, "algorithm"),
        (schedulers, SCHEDULER_FACTORIES, "scheduler"),
        (workloads, WORKLOAD_FACTORIES, "workload"),
        (error_models, ERROR_MODEL_FACTORIES, "error model"),
    ):
        for name in names:
            _lookup(registry, name, kind)


def _lookup(registry: Mapping[str, object], name: str, kind: str):
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(registry)
        raise ValueError(f"unknown {kind} {name!r}; known: {known}") from None
