"""Name-to-object factories for the sweep engine.

Run specs are plain data; these registries turn their string fields into
live algorithm, scheduler, workload and error-model objects *inside* the
process that executes the run.  Keeping construction here (rather than in
the spec) is what makes run specs picklable and the sweep engine safe to
fan out over ``multiprocessing`` workers.

Two dimensions share the registries.  Planar names resolve against the
continuous-time engine (:mod:`repro.engine`); the ``*3`` names —
``kknps3``, ``fsync3``/``ssync3``, ``line3``/``lattice3``/``random3`` —
resolve against the 3D round engine (:mod:`repro.spatial3d`).  A run's
dimension is a property of the whole spec: :func:`run_dimension` decides
it and rejects mixed pairings, so a typo like ``kknps`` on a ``random3``
workload fails at spec-build time rather than deep inside a worker.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence, Tuple

from ..algorithms import (
    AndoAlgorithm,
    CenterOfGravityAlgorithm,
    ConvergenceAlgorithm,
    KatreniakAlgorithm,
    KKNPSAlgorithm,
    MinboxAlgorithm,
)
from ..geometry.transforms import SymmetricDistortion
from ..model.configuration import Configuration
from ..model.errors import MotionModel, PerceptionModel
from ..schedulers import (
    AsyncScheduler,
    FSyncScheduler,
    KAsyncScheduler,
    KNestAScheduler,
    Scheduler,
    SSyncScheduler,
)
from ..spatial3d import (
    Configuration3,
    KKNPS3Algorithm,
    lattice_configuration3,
    line_configuration3,
    random_connected_configuration3,
)
from ..workloads import (
    annulus_configuration,
    blob_configuration,
    clustered_configuration,
    line_configuration,
    random_connected_configuration,
    random_disk_configuration,
    ring_configuration,
    truncated_grid_configuration,
)

ALGORITHM_FACTORIES: Dict[str, Callable[..., ConvergenceAlgorithm]] = {
    "kknps": KKNPSAlgorithm,
    "ando": AndoAlgorithm,
    "katreniak": KatreniakAlgorithm,
    "cog": CenterOfGravityAlgorithm,
    "gcm": MinboxAlgorithm,
}

SCHEDULER_FACTORIES: Dict[str, Callable[[int], Scheduler]] = {
    "fsync": lambda k: FSyncScheduler(),
    "ssync": lambda k: SSyncScheduler(),
    "k-async": lambda k: KAsyncScheduler(k=k),
    # The E1 error-tolerance grid's scheduler: k-Async where the adversary
    # may stop any move between half way and completion.
    "k-async-half": lambda k: KAsyncScheduler(k=k, progress_fraction=(0.5, 1.0)),
    "k-nesta": lambda k: KNestAScheduler(k=k),
    "async": lambda k: AsyncScheduler(),
}

# -- the 3D round engine's registries -----------------------------------------------
ALGORITHM3_FACTORIES: Dict[str, Callable[..., KKNPS3Algorithm]] = {
    "kknps3": KKNPS3Algorithm,
}

#: 3D round "schedulers" are activation disciplines of the round engine:
#: every robot every round (fsync3) or an independent 60% subset per round
#: (ssync3, the Section-6.3.2 experiment's setting).
SCHEDULER3_ACTIVATION: Dict[str, float] = {
    "fsync3": 1.0,
    "ssync3": 0.6,
}

#: Continuous-time 3D schedulers: the planar scheduler family driving the
#: unified kernel's 3D instantiation (``run_simulation3_async``).  These
#: open the paper's headline scenario — bounded vs unbounded asynchrony —
#: in 3-space.
SCHEDULER3_CONTINUOUS: Dict[str, Callable[[int], Scheduler]] = {
    "kasync3": lambda k: KAsyncScheduler(k=k),
    "nesta3": lambda k: KNestAScheduler(k=k),
    "async3": lambda k: AsyncScheduler(),
}

#: Error models the round engine understands, as its ``xi`` rigidity bound
#: (the round loop has no perception-error machinery).
ERROR_MODEL3_XI: Dict[str, float] = {
    "exact": 1.0,
    "nonrigid-50": 0.5,
}


def _lattice3_workload(n: int, seed: int, visibility_range: float) -> Configuration3:
    # Exactly n robots, like every other workload factory: lattice3 accepts
    # only perfect cubes rather than silently padding or truncating.
    side = round(n ** (1.0 / 3.0))
    if side**3 != n:
        raise ValueError(f"lattice3 needs a perfect-cube robot count, got {n}")
    return lattice_configuration3(
        side, spacing=0.6 * visibility_range, visibility_range=visibility_range
    )


WORKLOAD3_FACTORIES: Dict[str, Callable[[int, int, float], Configuration3]] = {
    "line3": lambda n, seed, v: line_configuration3(
        n, spacing=0.7 * v, visibility_range=v
    ),
    "lattice3": _lattice3_workload,
    "random3": lambda n, seed, v: random_connected_configuration3(
        n, visibility_range=v, seed=seed
    ),
}


def _clusters_workload(n: int, seed: int, visibility_range: float) -> Configuration:
    # Exactly n robots: k clusters plus k-1 bridges, the cluster robots
    # split as evenly as possible.  Small n degrades to fewer clusters.
    k = min(3, max(1, n // 2))
    in_clusters = n - (k - 1)
    base, extra = divmod(in_clusters, k)
    sizes = [base + 1 if c < extra else base for c in range(k)]
    return clustered_configuration(
        k, max(sizes), cluster_sizes=sizes, visibility_range=visibility_range, seed=seed
    )


def _disk_unbounded_workload(n: int, seed: int, margin: float) -> Configuration:
    # The U1 unlimited-visibility setting: robots uniformly in a unit disk,
    # with the visibility range derived from the *realised* configuration —
    # ``margin`` times its hull diameter — so every pair starts (and, by
    # the hull-diminishing property, stays) mutually visible.  The sweep's
    # visibility-range axis is therefore the diameter margin, not a range.
    configuration = random_disk_configuration(
        n, disk_radius=1.0, visibility_range=2.0, seed=seed
    )
    diameter = configuration.hull_diameter()
    return Configuration.of(configuration.positions, margin * max(diameter, 1e-6))


# Every factory returns a configuration of exactly ``n`` robots (``ring``
# raises for n < 3 rather than silently padding), so a sweep's run keys
# always describe the simulations they label.
WORKLOAD_FACTORIES: Dict[str, Callable[[int, int, float], Configuration]] = {
    "random": lambda n, seed, v: random_connected_configuration(
        n, visibility_range=v, seed=seed
    ),
    "line": lambda n, seed, v: line_configuration(n, spacing=0.8 * v, visibility_range=v),
    "grid": lambda n, seed, v: truncated_grid_configuration(
        n, spacing=0.7 * v, visibility_range=v
    ),
    "ring": lambda n, seed, v: ring_configuration(n, visibility_range=v),
    "clusters": _clusters_workload,
    "blobs": lambda n, seed, v: blob_configuration(
        n, n_blobs=min(3, n), visibility_range=v, seed=seed
    ),
    "annulus": lambda n, seed, v: annulus_configuration(
        n, inner_radius=0.5 * v, outer_radius=1.2 * v, visibility_range=v, seed=seed
    ),
    "disk": lambda n, seed, v: random_disk_configuration(
        n, disk_radius=2.0 * v, visibility_range=v, seed=seed
    ),
    "disk-unbounded": _disk_unbounded_workload,
}

ERROR_MODEL_FACTORIES: Dict[str, Callable[[], Tuple[PerceptionModel, MotionModel]]] = {
    # No error at all: the baseline the paper's positive results assume away.
    "exact": lambda: (PerceptionModel.exact(), MotionModel.rigid()),
    # 5% relative distance-measurement error (Section 2.3.2).
    "distance-5": lambda: (PerceptionModel(distance_error=0.05), MotionModel.rigid()),
    # Compass skew 0.1 through the symmetric distortion (Section 2.3.2).
    "skew-10": lambda: (
        PerceptionModel(distortion=SymmetricDistortion(amplitude=0.1, frequency=2)),
        MotionModel.rigid(),
    ),
    # xi = 0.5 rigidity: the adversary may stop a move half way (Section 2.3.3).
    "nonrigid-50": lambda: (PerceptionModel.exact(), MotionModel(xi=0.5)),
    # Quadratic lateral motion error, the tolerated kind (Section 6.1).
    "quad-motion": lambda: (
        PerceptionModel.exact(),
        MotionModel(xi=0.5, deviation="quadratic", coefficient=0.2),
    ),
    # The E1 experiment's tolerated-error pairings: the same perception
    # errors as above but under non-rigid (xi = 0.5) motion.
    "distance-5-nonrigid": lambda: (
        PerceptionModel(distance_error=0.05),
        MotionModel(xi=0.5),
    ),
    "skew-10-nonrigid": lambda: (
        PerceptionModel(distortion=SymmetricDistortion(amplitude=0.1, frequency=2)),
        MotionModel(xi=0.5),
    ),
    # Linear relative motion error with adversarial bias — the kind the
    # paper proves defeats every convergence algorithm (Figure 18).
    "linear-60": lambda: (
        PerceptionModel.exact(),
        MotionModel(xi=0.5, deviation="linear", coefficient=0.6, bias="adversarial"),
    ),
}


def algorithm_names() -> Tuple[str, ...]:
    """Registered algorithm names (planar first, then 3D)."""
    return tuple(ALGORITHM_FACTORIES) + tuple(ALGORITHM3_FACTORIES)


def scheduler_names() -> Tuple[str, ...]:
    """Registered scheduler names (planar first, then 3D)."""
    return (
        tuple(SCHEDULER_FACTORIES)
        + tuple(SCHEDULER3_ACTIVATION)
        + tuple(SCHEDULER3_CONTINUOUS)
    )


def workload_names() -> Tuple[str, ...]:
    """Registered workload names (planar first, then 3D)."""
    return tuple(WORKLOAD_FACTORIES) + tuple(WORKLOAD3_FACTORIES)


def error_model_names() -> Tuple[str, ...]:
    """Registered error-model names."""
    return tuple(ERROR_MODEL_FACTORIES)


def make_algorithm(name: str, params: Sequence[Tuple[str, float]] = ()):
    """Instantiate an algorithm by name with optional keyword parameters."""
    registry = ALGORITHM3_FACTORIES if name in ALGORITHM3_FACTORIES else ALGORITHM_FACTORIES
    factory = _lookup(registry, name, "algorithm")
    kwargs = dict(params)
    if kwargs and name not in ("kknps", "kknps3"):
        raise ValueError(f"algorithm {name!r} takes no parameters, got {kwargs}")
    return factory(**kwargs)


def make_scheduler(name: str, k: int = 1) -> Scheduler:
    """Instantiate a planar scheduler by name (``k`` applies to k-schedulers)."""
    if name in SCHEDULER3_ACTIVATION:
        raise ValueError(
            f"scheduler {name!r} is a 3D round discipline; "
            "use activation_probability3() in a 3D run"
        )
    if name in SCHEDULER3_CONTINUOUS:
        raise ValueError(
            f"scheduler {name!r} drives the continuous-time 3D kernel; "
            "use make_scheduler3() in a 3D run"
        )
    return _lookup(SCHEDULER_FACTORIES, name, "scheduler")(k)


def make_scheduler3(name: str, k: int = 1) -> Scheduler:
    """Instantiate a continuous-time 3D scheduler by name."""
    return _lookup(SCHEDULER3_CONTINUOUS, name, "3D continuous scheduler")(k)


def is_round_discipline3(name: str) -> bool:
    """True when a 3D scheduler name selects the round engine."""
    return name in SCHEDULER3_ACTIVATION


def activation_probability3(name: str) -> float:
    """The per-round activation probability of a 3D scheduler name."""
    return float(_lookup(SCHEDULER3_ACTIVATION, name, "3D scheduler"))


def make_workload(name: str, n_robots: int, seed: int, visibility_range: float = 1.0):
    """Build an initial configuration (2D or 3D) by workload name."""
    registry = WORKLOAD3_FACTORIES if name in WORKLOAD3_FACTORIES else WORKLOAD_FACTORIES
    return _lookup(registry, name, "workload")(n_robots, seed, visibility_range)


def make_error_models(name: str) -> Tuple[PerceptionModel, MotionModel]:
    """Build the (perception, motion) pair of a named error model."""
    return _lookup(ERROR_MODEL_FACTORIES, name, "error model")()


def error_model3_xi(name: str) -> float:
    """The ``xi`` rigidity bound a named error model means to the round engine."""
    if name not in ERROR_MODEL3_XI:
        known = ", ".join(ERROR_MODEL3_XI)
        raise ValueError(
            f"error model {name!r} is not available in 3D runs under a round "
            f"discipline; known: {known}"
        )
    return ERROR_MODEL3_XI[name]


def error_model_supports_3d(name: str) -> bool:
    """True when a named error model applies to continuous-time 3D runs.

    Distance-measurement error and every motion error generalise to any
    dimension; the angular (compass-skew) distortion is a bijection of
    the circle and stays planar-only.
    """
    perception, _motion = make_error_models(name)
    return perception.distortion is None or perception.distortion.amplitude == 0.0


def check_error_model3(scheduler: str, error_model: str) -> None:
    """Validate an error model against a 3D scheduler name (raises on misfit)."""
    if scheduler in SCHEDULER3_ACTIVATION:
        if error_model not in ERROR_MODEL3_XI:
            error_model3_xi(error_model)  # raises with the known-names message
    elif not error_model_supports_3d(error_model):
        compatible = ", ".join(
            n for n in ERROR_MODEL_FACTORIES if error_model_supports_3d(n)
        )
        raise ValueError(
            f"error model {error_model!r} is planar-only (angular distortion); "
            f"continuous-time 3D runs support: {compatible}"
        )


def run_dimension(
    algorithm: str, scheduler: str, workload: str, error_model: str = "exact"
) -> int:
    """The spatial dimension (2 or 3) a run with these names executes in.

    Every name must already be registered; mixed pairings (a planar
    algorithm on a 3D workload, and so on) raise ``ValueError``.
    """
    validate_names(
        algorithms=(algorithm,),
        schedulers=(scheduler,),
        workloads=(workload,),
        error_models=(error_model,),
    )
    flags = {
        "algorithm": algorithm in ALGORITHM3_FACTORIES,
        "scheduler": scheduler in SCHEDULER3_ACTIVATION or scheduler in SCHEDULER3_CONTINUOUS,
        "workload": workload in WORKLOAD3_FACTORIES,
    }
    if not any(flags.values()):
        return 2
    if not all(flags.values()):
        planar = ", ".join(sorted(kind for kind, is_3d in flags.items() if not is_3d))
        raise ValueError(
            f"mixed-dimension run: {algorithm!r} x {scheduler!r} x {workload!r} "
            f"({planar} planar, rest 3D)"
        )
    check_error_model3(scheduler, error_model)
    return 3


def validate_names(
    *,
    algorithms: Sequence[str] = (),
    schedulers: Sequence[str] = (),
    workloads: Sequence[str] = (),
    error_models: Sequence[str] = (),
) -> None:
    """Raise ``ValueError`` for any name missing from its registry."""
    for names, registries, kind in (
        (algorithms, (ALGORITHM_FACTORIES, ALGORITHM3_FACTORIES), "algorithm"),
        (
            schedulers,
            (SCHEDULER_FACTORIES, SCHEDULER3_ACTIVATION, SCHEDULER3_CONTINUOUS),
            "scheduler",
        ),
        (workloads, (WORKLOAD_FACTORIES, WORKLOAD3_FACTORIES), "workload"),
        (error_models, (ERROR_MODEL_FACTORIES,), "error model"),
    ):
        for name in names:
            if not any(name in registry for registry in registries):
                known = ", ".join(n for registry in registries for n in registry)
                raise ValueError(f"unknown {kind} {name!r}; known: {known}")


def _lookup(registry: Mapping[str, object], name: str, kind: str):
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(registry)
        raise ValueError(f"unknown {kind} {name!r}; known: {known}") from None
