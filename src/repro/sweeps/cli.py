"""The ``python -m repro sweep`` subcommand.

Builds a :class:`~repro.sweeps.spec.SweepSpec` from the command line, runs
it through the :class:`~repro.sweeps.runner.SweepRunner`, prints the
aggregate table and (optionally) persists the per-run rows as resumable
JSONL.  ``--smoke`` runs a small fixed grid with two workers — the CI
sanity check that the whole pipeline (expansion, multiprocessing,
aggregation) holds together in under half a minute.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .factories import (
    algorithm_names,
    error_model_names,
    scheduler_names,
    workload_names,
)
from .runner import run_sweep
from .spec import SweepSpec


def build_parser() -> argparse.ArgumentParser:
    """The sweep subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run a declarative parameter sweep across worker processes.",
    )
    parser.add_argument(
        "--algorithms", nargs="+", default=["kknps"], choices=algorithm_names()
    )
    parser.add_argument(
        "--schedulers", nargs="+", default=["k-async"], choices=scheduler_names()
    )
    parser.add_argument(
        "--workloads", nargs="+", default=["random"], choices=workload_names()
    )
    parser.add_argument(
        "--n", nargs="+", type=int, default=[10], help="numbers of robots to sweep"
    )
    parser.add_argument(
        "--errors", nargs="+", default=["exact"], choices=error_model_names()
    )
    parser.add_argument(
        "--seeds", type=int, default=3, help="number of seeds per grid point"
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, help="first seed of the seed axis"
    )
    parser.add_argument("--k", type=int, default=2, help="asynchrony bound for k-schedulers")
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--max-activations", type=int, default=5000)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default 1; 1 = serial fallback; "
                             "--smoke defaults to 2)")
    parser.add_argument("--chunk-size", type=int, default=1,
                        help="runs handed to a worker at a time")
    parser.add_argument("--out", type=str, default=None,
                        help="JSONL result file (resumable; one row per run)")
    parser.add_argument("--no-resume", action="store_true",
                        help="re-run everything even if --out already has rows")
    parser.add_argument("--quiet", action="store_true", help="suppress per-run progress")
    parser.add_argument("--smoke", action="store_true",
                        help="run the small fixed smoke grid (overrides the axes)")
    return parser


def smoke_spec() -> SweepSpec:
    """The fixed grid ``--smoke`` runs: 16 tiny runs across 2 workers."""
    return SweepSpec(
        algorithms=("kknps", "ando"),
        schedulers=("ssync", "k-async"),
        workloads=("line", "blobs"),
        n_robots=(6,),
        error_models=("exact",),
        seeds=(0, 1),
        scheduler_k=1,
        epsilon=0.08,
        max_activations=250,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro sweep``."""
    args = build_parser().parse_args(argv)

    def progress(done: int, total: int) -> None:
        if not args.quiet:
            print(f"\r  {done}/{total} runs", end="", file=sys.stderr, flush=True)

    try:
        if args.smoke:
            spec = smoke_spec()
            workers = args.workers if args.workers is not None else 2
        else:
            spec = SweepSpec(
                algorithms=tuple(args.algorithms),
                schedulers=tuple(args.schedulers),
                workloads=tuple(args.workloads),
                n_robots=tuple(args.n),
                error_models=tuple(args.errors),
                seeds=tuple(range(args.seed_base, args.seed_base + args.seeds)),
                scheduler_k=args.k,
                epsilon=args.epsilon,
                max_activations=args.max_activations,
            )
            workers = args.workers if args.workers is not None else 1
        result = run_sweep(
            spec,
            workers=workers,
            chunk_size=args.chunk_size,
            jsonl_path=args.out,
            resume=not args.no_resume,
            progress=progress,
        )
    except ValueError as error:
        # Bad axis values (empty/duplicate axes, zero workers, ...) are user
        # errors: report them like argparse would, not as a traceback.
        print(f"python -m repro sweep: error: {error}", file=sys.stderr)
        return 2
    if not args.quiet and result.executed:
        print(file=sys.stderr)

    print(result.to_table().render())
    if args.out is not None:
        print(f"\n{result.executed} rows appended to {args.out} "
              f"({result.resumed} resumed)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
