"""The ``python -m repro sweep`` subcommand.

Builds a :class:`~repro.sweeps.spec.SweepSpec` from the command line, runs
it through the :class:`~repro.sweeps.runner.SweepRunner` on the selected
execution backend, prints the aggregate table plus a per-backend summary
and (optionally) persists the per-run rows as resumable JSONL.
``--stream-progress`` upgrades the progress line with a cost-model ETA
and a live converged/cohesive tally.  ``--smoke`` runs a small fixed
grid with two workers — the CI sanity check that the whole pipeline
(expansion, fan-out, streaming aggregation) holds together in under half
a minute.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .backends import backend_names, make_backend
from .factories import (
    algorithm_names,
    error_model_names,
    scheduler_names,
    workload_names,
)
from .runner import SweepProgress, run_sweep
from .spec import SweepSpec


def add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the sweep-grid axes shared by ``sweep`` and the service ``submit``."""
    parser.add_argument(
        "--algorithms", nargs="+", default=["kknps"], choices=algorithm_names()
    )
    parser.add_argument(
        "--schedulers", nargs="+", default=["k-async"], choices=scheduler_names()
    )
    parser.add_argument(
        "--workloads", nargs="+", default=["random"], choices=workload_names()
    )
    parser.add_argument(
        "--n", nargs="+", type=int, default=[10], help="numbers of robots to sweep"
    )
    parser.add_argument(
        "--errors", nargs="+", default=["exact"], choices=error_model_names()
    )
    parser.add_argument(
        "--seeds", type=int, default=3, help="number of seeds per grid point"
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, help="first seed of the seed axis"
    )
    parser.add_argument("--k", type=int, default=2, help="asynchrony bound for k-schedulers")
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--max-activations", type=int, default=5000)
    parser.add_argument("--smoke", action="store_true",
                        help="run the small fixed smoke grid (overrides the axes)")


def spec_from_args(args: argparse.Namespace) -> SweepSpec:
    """Build the sweep spec a parsed grid-argument namespace describes."""
    if args.smoke:
        return smoke_spec()
    return SweepSpec(
        algorithms=tuple(args.algorithms),
        schedulers=tuple(args.schedulers),
        workloads=tuple(args.workloads),
        n_robots=tuple(args.n),
        error_models=tuple(args.errors),
        seeds=tuple(range(args.seed_base, args.seed_base + args.seeds)),
        scheduler_k=args.k,
        epsilon=args.epsilon,
        max_activations=args.max_activations,
    )


def build_parser() -> argparse.ArgumentParser:
    """The sweep subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run a declarative parameter sweep across worker processes.",
    )
    add_grid_arguments(parser)
    parser.add_argument("--backend", choices=backend_names(), default=None,
                        help="execution backend (default: serial with 1 worker, "
                             "process-pool otherwise)")
    parser.add_argument("--worker-token", type=str, default=None,
                        help="socket backend: auth token a worker's hello frame "
                             "must present to be admitted (spawned workers send "
                             "it automatically; pass the same --token to an "
                             "out-of-band worker_main)")
    parser.add_argument("--lost-after", type=float, default=None,
                        help="socket backend: seconds of heartbeat silence after "
                             "which a worker is declared lost and its chunk "
                             "requeued (default 10)")
    parser.add_argument("--socket-port", type=int, default=None,
                        help="socket backend: pin the coordinator's listening "
                             "port so late workers know where to join "
                             "(default: ephemeral)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default 1; 1 = serial fallback; "
                             "--smoke defaults to 2)")
    parser.add_argument("--chunk-size", type=int, default=1,
                        help="runs handed to a process-pool worker at a time")
    parser.add_argument("--replicate-batch", action="store_true",
                        help="bundle runs differing only by seed and advance "
                             "each bundle through one batched round pass "
                             "(round-structured planar runs only; rows stay "
                             "bit-identical to serial execution)")
    parser.add_argument("--out", type=str, default=None,
                        help="JSONL result file (resumable; one row per run)")
    parser.add_argument("--no-resume", action="store_true",
                        help="re-run everything even if --out already has rows")
    parser.add_argument("--store", type=str, default=None,
                        help="persistent results store (sqlite): previously "
                             "computed runs are served from it instead of "
                             "re-executed, and fresh rows are ingested back")
    parser.add_argument("--no-store", action="store_true",
                        help="ignore --store: execute without consulting the "
                             "global results store")
    parser.add_argument("--quiet", action="store_true", help="suppress per-run progress")
    parser.add_argument("--stream-progress", action="store_true",
                        help="live progress with cost-model ETA and running tallies")
    return parser


def smoke_spec() -> SweepSpec:
    """The fixed grid ``--smoke`` runs: 16 tiny runs across 2 workers."""
    return SweepSpec(
        algorithms=("kknps", "ando"),
        schedulers=("ssync", "k-async"),
        workloads=("line", "blobs"),
        n_robots=(6,),
        error_models=("exact",),
        seeds=(0, 1),
        scheduler_k=1,
        epsilon=0.08,
        max_activations=250,
    )


def _format_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "ETA --"
    if eta_s >= 60:
        return f"ETA {eta_s / 60:.1f}m"
    return f"ETA {eta_s:.0f}s"


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro sweep``."""
    args = build_parser().parse_args(argv)

    progress_printed = [False]

    def progress(done: int, total: int) -> None:
        if not args.quiet and not args.stream_progress:
            progress_printed[0] = True
            print(f"\r  {done}/{total} runs", end="", file=sys.stderr, flush=True)

    def stream_progress(tick: SweepProgress) -> None:
        if args.quiet or not args.stream_progress:
            return
        progress_printed[0] = True
        # The tallies span every row of the sweep (resumed ones included),
        # so print them over the aggregate row count, not done/total —
        # which only cover the runs this invocation executes.
        tally = tick.aggregate
        print(
            f"\r  {tick.done}/{tick.total} runs "
            f"({tick.cost_fraction:6.1%} of cost, {_format_eta(tick.eta_s)}) "
            f"converged {tally['converged']}/{tally['rows']} "
            f"cohesive {tally['cohesive']}/{tally['rows']}",
            end="",
            file=sys.stderr,
            flush=True,
        )

    try:
        spec = spec_from_args(args)
        if args.workers is not None:
            workers = args.workers
        else:
            workers = 2 if args.smoke else 1
        store = None if args.no_store else args.store
        backend = args.backend
        socket_flags = (args.worker_token, args.lost_after, args.socket_port)
        if args.backend == "socket":
            socket_options = {}
            if args.worker_token is not None:
                socket_options["token"] = args.worker_token
            if args.lost_after is not None:
                socket_options["lost_after_s"] = args.lost_after
            if args.socket_port is not None:
                socket_options["port"] = args.socket_port
            backend = make_backend(
                "socket", workers=workers, socket_options=socket_options
            )
        elif any(flag is not None for flag in socket_flags):
            raise ValueError(
                "--worker-token/--lost-after/--socket-port require "
                "--backend socket"
            )
        result = run_sweep(
            spec,
            workers=workers,
            chunk_size=args.chunk_size,
            jsonl_path=args.out,
            resume=not args.no_resume,
            backend=backend,
            store=store,
            replicate_batch=args.replicate_batch,
            progress=progress,
            stream_progress=stream_progress,
        )
    except ValueError as error:
        # Bad axis values (empty/duplicate axes, zero workers, unknown
        # backend, ...) are user errors: report them like argparse would,
        # not as a traceback.
        print(f"python -m repro sweep: error: {error}", file=sys.stderr)
        return 2
    finally:
        # The progress line ends with \r-overwrites; always terminate it so
        # whatever prints next starts on a fresh line.
        if progress_printed[0]:
            print(file=sys.stderr)

    print(result.to_table().render())
    if result.stats is not None:
        print(f"\n{result.stats.summary()}")
        if result.stats.worker_losses:
            print(
                f"warning: {result.stats.worker_losses} worker(s) lost "
                f"mid-sweep; {result.stats.requeued_chunks} chunk(s) requeued "
                "and re-executed (no rows lost)",
                file=sys.stderr,
            )
    if args.out is not None:
        print(f"\n{result.executed} rows appended to {args.out} "
              f"({result.resumed} resumed)")
    if store is not None:
        print(f"{result.store_hits}/{len(result)} rows served from the "
              f"results store at {store}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
