"""Robot entities and their kinematic state.

A :class:`Robot` is the engine-side representation of one OBLOT entity:
anonymous from the algorithm's point of view (the id exists only for the
engine and the metrics), oblivious (no state survives an activity cycle
beyond its physical position), and either idle, computing or moving.
While moving, the robot's position at any instant is the linear
interpolation along its realised trajectory, which is what other robots
observe when they Look mid-move.

The kinematic state itself lives in :class:`KinematicArrays`, a
structure-of-arrays store: contiguous ``(n, d)`` float64 arrays for the
committed positions, move origins and move destinations (``d = 2`` for
the planar engine, ``d = 3`` for the :mod:`repro.spatial3d` extension),
plus ``(n,)`` arrays for the move time spans, phase codes and per-robot
counters.  The batched queries — :meth:`KinematicArrays.positions_at`,
:meth:`KinematicArrays.completed_movers` — are dimension-generic: every
operation is row-wise, so the same interpolation machinery serves any
``d``.  A
:class:`Robot` is a thin view over one row of such a store — the engine's
hot paths (interpolating every robot's position at a Look instant,
finding the moves that have completed) run as single numpy expressions
over the arrays, while the per-robot object API stays exactly what it
always was.  A robot constructed standalone allocates its own one-row
store, so ``Robot(robot_id=0, position=Point(1, 2))`` keeps working.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..geometry.point import Point, PointLike
from ..geometry.tolerances import EPS
from .types import Phase

# Integer phase codes stored in the arrays (the Phase enum stays the
# public face; the codes make the per-activation masks pure numpy).
PHASE_IDLE = 0
PHASE_COMPUTING = 1
PHASE_MOVING = 2

_PHASE_TO_CODE = {Phase.IDLE: PHASE_IDLE, Phase.COMPUTING: PHASE_COMPUTING, Phase.MOVING: PHASE_MOVING}
_CODE_TO_PHASE = (Phase.IDLE, Phase.COMPUTING, Phase.MOVING)


class KinematicArrays:
    """Structure-of-arrays kinematic state for ``n`` robots in ``dim``-space.

    ``position`` holds the last *committed* position of each robot (the
    move origin while a move is in flight; the realised endpoint once the
    move has been finalised).  The interpolation rule implemented by
    :meth:`positions_at` is exactly :meth:`Robot.position_at`, evaluated
    for all robots in one numpy expression.  Every batched query is
    row-wise, so the store works for any spatial dimension; the planar
    engine uses ``dim=2`` (where :class:`Robot` views apply) and the 3D
    extension's round engine uses ``dim=3``.
    """

    __slots__ = (
        "n",
        "dim",
        "position",
        "move_origin",
        "move_destination",
        "move_start",
        "move_end",
        "phase",
        "crashed",
        "activation_count",
        "total_distance",
    )

    def __init__(self, n: int, dim: int = 2) -> None:
        if n < 0:
            raise ValueError("robot count must be non-negative")
        if dim < 1:
            raise ValueError("spatial dimension must be at least 1")
        self.n = n
        self.dim = dim
        self.position = np.zeros((n, dim), dtype=float)
        self.move_origin = np.zeros((n, dim), dtype=float)
        self.move_destination = np.zeros((n, dim), dtype=float)
        self.move_start = np.zeros(n, dtype=float)
        self.move_end = np.zeros(n, dtype=float)
        self.phase = np.zeros(n, dtype=np.int8)
        self.crashed = np.zeros(n, dtype=bool)
        self.activation_count = np.zeros(n, dtype=np.int64)
        self.total_distance = np.zeros(n, dtype=float)

    @staticmethod
    def from_positions(positions: Sequence[PointLike]) -> "KinematicArrays":
        """A planar store with every robot idle at the given positions."""
        pts = [Point.of(p) for p in positions]
        arrays = KinematicArrays(len(pts))
        for i, p in enumerate(pts):
            arrays.position[i, 0] = p.x
            arrays.position[i, 1] = p.y
        return arrays

    @staticmethod
    def from_array(positions: np.ndarray) -> "KinematicArrays":
        """A store of any dimension with every robot idle at the given rows."""
        arr = np.asarray(positions, dtype=float)
        if arr.ndim != 2:
            raise ValueError("positions must be an (n, d) array")
        arrays = KinematicArrays(arr.shape[0], arr.shape[1])
        arrays.position[:] = arr
        return arrays

    # -- vectorized queries ------------------------------------------------------
    def positions_at(self, time: float, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Interpolated positions at global ``time`` as an ``(m, 2)`` array.

        With ``indices`` given, only those rows are evaluated (in the given
        order); otherwise all ``n`` robots are.  The branch structure per
        robot is identical to :meth:`Robot.position_at`, so the values are
        bit-identical to the scalar path.
        """
        if indices is None:
            out = self.position.copy()
            phase = self.phase
        else:
            out = self.position[indices]
            phase = self.phase[indices]
        moving = phase == PHASE_MOVING
        if not moving.any():
            return out
        rows = np.flatnonzero(moving)
        sub = indices[rows] if indices is not None else rows
        start = self.move_start[sub]
        end = self.move_end[sub]
        origin = self.move_origin[sub]
        destination = self.move_destination[sub]
        span = end - start
        # Branch order mirrors Robot.position_at: endpoint once the move is
        # over (or the span is degenerate), origin before it starts, linear
        # interpolation in between.
        at_destination = (time >= end) | ((time > start) & (span <= EPS))
        interpolate = (time > start) & (time < end) & (span > EPS)
        values = origin.copy()
        values[at_destination] = destination[at_destination]
        if interpolate.any():
            t = (time - start[interpolate]) / span[interpolate]
            o = origin[interpolate]
            values[interpolate] = o + (destination[interpolate] - o) * t[:, None]
        out[rows] = values
        return out

    def completed_movers(self, now: float) -> np.ndarray:
        """Indices of robots whose move has ended at or before ``now``."""
        return np.flatnonzero((self.phase == PHASE_MOVING) & (self.move_end <= now))

    def any_moving(self) -> bool:
        """True when at least one robot is mid-move."""
        return bool((self.phase == PHASE_MOVING).any())

    # -- row-level transitions ---------------------------------------------------
    # These are the dimension-generic core of the activity-cycle state
    # machine: the planar :class:`Robot` views delegate here, and the
    # continuous-time kernel drives them directly for stores of any
    # dimension.  ``label`` only affects error messages (a standalone
    # Robot's ``robot_id`` may differ from its row index).

    def travel_distance(self, origin: np.ndarray, destination: np.ndarray) -> float:
        """Length of one realised trajectory, matching the scalar conventions.

        ``math.hypot`` in the plane (exactly what :meth:`Robot.finish_move`
        always computed) and a left-to-right sum of squares under one
        square root in higher dimensions (the :class:`Vector3` convention).
        """
        if self.dim == 2:
            return math.hypot(
                float(destination[0]) - float(origin[0]),
                float(destination[1]) - float(origin[1]),
            )
        total = 0.0
        for axis in range(self.dim):
            delta = float(destination[axis]) - float(origin[axis])
            total += delta * delta
        return math.sqrt(total)

    def begin_activation_at(self, index: int, time: float, *, label: Optional[int] = None) -> None:
        """Enter the Compute phase on row ``index`` (the Look is instantaneous)."""
        if self.phase[index] != PHASE_IDLE:
            who = index if label is None else label
            phase = _CODE_TO_PHASE[self.phase[index]].value
            raise RuntimeError(f"robot {who} activated at t={time} while still {phase}")
        self.phase[index] = PHASE_COMPUTING
        self.activation_count[index] += 1

    def begin_move_at(
        self,
        index: int,
        origin: np.ndarray,
        destination: np.ndarray,
        start_time: float,
        end_time: float,
        *,
        label: Optional[int] = None,
    ) -> None:
        """Enter the Move phase on row ``index`` with a realised trajectory."""
        if self.phase[index] != PHASE_COMPUTING:
            who = index if label is None else label
            phase = _CODE_TO_PHASE[self.phase[index]].value
            raise RuntimeError(f"robot {who} cannot start moving from phase {phase}")
        if end_time < start_time:
            raise ValueError("move must end at or after it starts")
        self.move_origin[index] = origin
        self.move_destination[index] = destination
        self.move_start[index] = start_time
        self.move_end[index] = end_time
        self.phase[index] = PHASE_MOVING

    def finish_move_at(self, index: int, *, label: Optional[int] = None) -> None:
        """Leave the Move phase on row ``index``; the robot idles at its endpoint."""
        if self.phase[index] != PHASE_MOVING:
            who = index if label is None else label
            raise RuntimeError(f"robot {who} is not moving")
        self.total_distance[index] += self.travel_distance(
            self.move_origin[index], self.move_destination[index]
        )
        self.position[index] = self.move_destination[index]
        self.phase[index] = PHASE_IDLE

    def crash_at(self, index: int) -> None:
        """Fail-stop row ``index``: any pending move is discarded."""
        self.phase[index] = PHASE_IDLE
        self.crashed[index] = True


class Robot:
    """One mobile entity: a thin view over one row of a :class:`KinematicArrays`."""

    __slots__ = ("robot_id", "_arrays", "_index")

    def __init__(
        self,
        robot_id: int = 0,
        position: PointLike = (0.0, 0.0),
        phase: Phase = Phase.IDLE,
        move_origin: Optional[PointLike] = None,
        move_destination: Optional[PointLike] = None,
        move_start_time: float = 0.0,
        move_end_time: float = 0.0,
        activation_count: int = 0,
        total_distance_travelled: float = 0.0,
        crashed: bool = False,
    ) -> None:
        arrays = KinematicArrays(1)
        self.robot_id = robot_id
        self._arrays = arrays
        self._index = 0
        p = Point.of(position)
        arrays.position[0] = (p.x, p.y)
        arrays.phase[0] = _PHASE_TO_CODE[phase]
        if move_origin is not None:
            o = Point.of(move_origin)
            arrays.move_origin[0] = (o.x, o.y)
        if move_destination is not None:
            d = Point.of(move_destination)
            arrays.move_destination[0] = (d.x, d.y)
        arrays.move_start[0] = move_start_time
        arrays.move_end[0] = move_end_time
        arrays.activation_count[0] = activation_count
        arrays.total_distance[0] = total_distance_travelled
        arrays.crashed[0] = crashed

    @classmethod
    def view(cls, arrays: KinematicArrays, index: int, robot_id: Optional[int] = None) -> "Robot":
        """A view over row ``index`` of a shared store (used by the engine)."""
        if arrays.dim != 2:
            raise ValueError("Robot views are planar; a %d-dimensional store has none" % arrays.dim)
        self = object.__new__(cls)
        self.robot_id = index if robot_id is None else robot_id
        self._arrays = arrays
        self._index = index
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Robot(robot_id={self.robot_id}, position={self.position!r}, "
            f"phase={self.phase.value!r})"
        )

    # -- array-backed attributes ---------------------------------------------------
    @property
    def position(self) -> Point:
        """Last committed position (the move origin while a move is in flight)."""
        row = self._arrays.position[self._index]
        return Point(float(row[0]), float(row[1]))

    @position.setter
    def position(self, value: PointLike) -> None:
        p = Point.of(value)
        self._arrays.position[self._index] = (p.x, p.y)

    @property
    def phase(self) -> Phase:
        """Current phase of the activity cycle."""
        return _CODE_TO_PHASE[self._arrays.phase[self._index]]

    @phase.setter
    def phase(self, value: Phase) -> None:
        self._arrays.phase[self._index] = _PHASE_TO_CODE[value]

    @property
    def move_origin(self) -> Optional[Point]:
        """Origin of the in-flight move (None when not moving)."""
        if self._arrays.phase[self._index] != PHASE_MOVING:
            return None
        row = self._arrays.move_origin[self._index]
        return Point(float(row[0]), float(row[1]))

    @property
    def move_destination(self) -> Optional[Point]:
        """Realised endpoint of the in-flight move (None when not moving)."""
        if self._arrays.phase[self._index] != PHASE_MOVING:
            return None
        row = self._arrays.move_destination[self._index]
        return Point(float(row[0]), float(row[1]))

    @property
    def move_start_time(self) -> float:
        """Instant the in-flight (or last) move started."""
        return float(self._arrays.move_start[self._index])

    @property
    def move_end_time(self) -> float:
        """Instant the in-flight (or last) move ends."""
        return float(self._arrays.move_end[self._index])

    @property
    def activation_count(self) -> int:
        """Number of activations this robot has begun."""
        return int(self._arrays.activation_count[self._index])

    @property
    def total_distance_travelled(self) -> float:
        """Total length of the realised trajectories so far."""
        return float(self._arrays.total_distance[self._index])

    @property
    def crashed(self) -> bool:
        """True once the robot has fail-stopped."""
        return bool(self._arrays.crashed[self._index])

    # -- queries ---------------------------------------------------------------
    def is_idle(self) -> bool:
        """True when the robot is between activity cycles."""
        return self._arrays.phase[self._index] == PHASE_IDLE

    def is_motile(self) -> bool:
        """True during the Move phase (capable of moving)."""
        return self._arrays.phase[self._index] == PHASE_MOVING

    def position_at(self, time: float) -> Point:
        """Position at global time ``time``.

        Before the Move phase starts (or when idle/computing) this is the
        stored position; during the Move phase it is the linear
        interpolation between the move origin and the realised endpoint.
        After the move end it is the endpoint.
        """
        arrays, i = self._arrays, self._index
        if arrays.phase[i] != PHASE_MOVING:
            return self.position
        end = arrays.move_end[i]
        if time >= end:
            row = arrays.move_destination[i]
            return Point(float(row[0]), float(row[1]))
        start = arrays.move_start[i]
        if time <= start:
            row = arrays.move_origin[i]
            return Point(float(row[0]), float(row[1]))
        span = end - start
        if span <= EPS:
            row = arrays.move_destination[i]
            return Point(float(row[0]), float(row[1]))
        t = (time - start) / span
        ox, oy = arrays.move_origin[i]
        dx, dy = arrays.move_destination[i]
        return Point(float(ox + (dx - ox) * t), float(oy + (dy - oy) * t))

    # -- transitions -------------------------------------------------------------
    def begin_activation(self, time: float) -> None:
        """Enter the Compute phase (the Look phase is instantaneous)."""
        self._arrays.begin_activation_at(self._index, time, label=self.robot_id)

    def begin_move(
        self, origin: PointLike, destination: PointLike, start_time: float, end_time: float
    ) -> None:
        """Enter the Move phase with a realised trajectory and its time span."""
        o = Point.of(origin)
        d = Point.of(destination)
        self._arrays.begin_move_at(
            self._index,
            np.array((o.x, o.y), dtype=float),
            np.array((d.x, d.y), dtype=float),
            start_time,
            end_time,
            label=self.robot_id,
        )

    def finish_move(self) -> Point:
        """Leave the Move phase; the robot becomes idle at its realised endpoint."""
        self._arrays.finish_move_at(self._index, label=self.robot_id)
        row = self._arrays.position[self._index]
        return Point(float(row[0]), float(row[1]))

    def crash(self) -> None:
        """Fail-stop the robot: it stays at its current position forever.

        Section 6.1 of the paper notes a single crash fault is tolerated
        (the other robots converge to the crashed robot's location); the
        fault-injection tests exercise this.  A crashing robot keeps its
        last committed position; any pending move is discarded.
        """
        self._arrays.crash_at(self._index)
