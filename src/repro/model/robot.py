"""Robot entities and their kinematic state.

A :class:`Robot` is the engine-side representation of one OBLOT entity:
anonymous from the algorithm's point of view (the id exists only for the
engine and the metrics), oblivious (no state survives an activity cycle
beyond its physical position), and either idle, computing or moving.
While moving, the robot's position at any instant is the linear
interpolation along its realised trajectory, which is what other robots
observe when they Look mid-move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..geometry.point import Point, PointLike
from ..geometry.tolerances import EPS
from .types import Phase


@dataclass
class Robot:
    """One mobile entity with its current kinematic state."""

    robot_id: int
    position: Point
    phase: Phase = Phase.IDLE
    move_origin: Optional[Point] = None
    move_destination: Optional[Point] = None
    move_start_time: float = 0.0
    move_end_time: float = 0.0
    activation_count: int = 0
    total_distance_travelled: float = 0.0
    crashed: bool = False

    def __post_init__(self) -> None:
        self.position = Point.of(self.position)

    # -- queries ---------------------------------------------------------------
    def is_idle(self) -> bool:
        """True when the robot is between activity cycles."""
        return self.phase is Phase.IDLE

    def is_motile(self) -> bool:
        """True during the Move phase (capable of moving)."""
        return self.phase is Phase.MOVING

    def position_at(self, time: float) -> Point:
        """Position at global time ``time``.

        Before the Move phase starts (or when idle/computing) this is the
        stored position; during the Move phase it is the linear
        interpolation between the move origin and the realised endpoint.
        After the move end it is the endpoint.
        """
        if self.phase is not Phase.MOVING or self.move_origin is None or self.move_destination is None:
            return self.position
        if time >= self.move_end_time:
            return self.move_destination
        if time <= self.move_start_time:
            return self.move_origin
        span = self.move_end_time - self.move_start_time
        if span <= EPS:
            return self.move_destination
        t = (time - self.move_start_time) / span
        return self.move_origin.lerp(self.move_destination, t)

    # -- transitions -------------------------------------------------------------
    def begin_activation(self, time: float) -> None:
        """Enter the Compute phase (the Look phase is instantaneous)."""
        if self.phase is not Phase.IDLE:
            raise RuntimeError(
                f"robot {self.robot_id} activated at t={time} while still {self.phase.value}"
            )
        self.phase = Phase.COMPUTING
        self.activation_count += 1

    def begin_move(
        self, origin: PointLike, destination: PointLike, start_time: float, end_time: float
    ) -> None:
        """Enter the Move phase with a realised trajectory and its time span."""
        if self.phase is not Phase.COMPUTING:
            raise RuntimeError(
                f"robot {self.robot_id} cannot start moving from phase {self.phase.value}"
            )
        if end_time < start_time:
            raise ValueError("move must end at or after it starts")
        self.move_origin = Point.of(origin)
        self.move_destination = Point.of(destination)
        self.move_start_time = start_time
        self.move_end_time = end_time
        self.phase = Phase.MOVING

    def finish_move(self) -> Point:
        """Leave the Move phase; the robot becomes idle at its realised endpoint."""
        if self.phase is not Phase.MOVING or self.move_destination is None:
            raise RuntimeError(f"robot {self.robot_id} is not moving")
        assert self.move_origin is not None
        self.total_distance_travelled += self.move_origin.distance_to(self.move_destination)
        self.position = self.move_destination
        self.move_origin = None
        self.move_destination = None
        self.phase = Phase.IDLE
        return self.position

    def crash(self) -> None:
        """Fail-stop the robot: it stays at its current position forever.

        Section 6.1 of the paper notes a single crash fault is tolerated
        (the other robots converge to the crashed robot's location); the
        fault-injection tests exercise this.
        """
        if self.phase is Phase.MOVING and self.move_destination is not None:
            # A crashing robot stops where it currently is; the pending move is discarded.
            self.move_destination = self.position
        self.phase = Phase.IDLE
        self.move_origin = None
        self.move_destination = None
        self.crashed = True
