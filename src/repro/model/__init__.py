"""Robot, configuration and error models for the OBLOT reproduction."""

from .configuration import Configuration
from .errors import MotionModel, PerceptionModel
from .robot import KinematicArrays, Robot
from .snapshot import Snapshot, build_snapshot
from .types import Activation, ActivationRecord, Phase, SchedulerClass
from .visibility import (
    Edge,
    broken_edges,
    connected_components,
    edges_preserved,
    is_connected,
    is_linearly_separable,
    max_edge_stretch,
    neighbours_of,
    strong_visibility_edges,
    visibility_edges,
)

__all__ = [
    "Activation",
    "ActivationRecord",
    "Configuration",
    "Edge",
    "KinematicArrays",
    "MotionModel",
    "PerceptionModel",
    "Phase",
    "Robot",
    "SchedulerClass",
    "Snapshot",
    "broken_edges",
    "build_snapshot",
    "connected_components",
    "edges_preserved",
    "is_connected",
    "is_linearly_separable",
    "max_edge_stretch",
    "neighbours_of",
    "strong_visibility_edges",
    "visibility_edges",
]
