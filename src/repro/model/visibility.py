"""Visibility graphs, connectivity and cohesion predicates.

Two robots are mutually visible when their separation is at most the
visibility range ``V``; the *visibility graph* has one vertex per robot
and an edge per mutually-visible pair.  Cohesive Convergence additionally
requires every edge of the initial visibility graph to persist forever
(``E(0) ⊆ E(t)``), and the congregation argument uses the *strong*
visibility relation (separation at most ``V/2``), which the paper shows
is monotone under its algorithm.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import numpy as np

from ..geometry.point import PointLike, pairwise_distances, points_to_array
from ..geometry.tolerances import EPS

Edge = Tuple[int, int]


def visibility_edges_from_matrix(
    distances: np.ndarray, visibility_range: float, *, eps: float = EPS
) -> Set[Edge]:
    """Visibility edges derived from a precomputed ``(n, n)`` distance matrix."""
    n = distances.shape[0]
    if n < 2:
        return set()
    rows, cols = np.triu_indices(n, k=1)
    mask = distances[rows, cols] <= visibility_range + eps
    return set(zip(rows[mask].tolist(), cols[mask].tolist()))


def visibility_edges(
    positions: Sequence[PointLike], visibility_range: float, *, eps: float = EPS
) -> Set[Edge]:
    """All pairs ``(i, j)`` with ``i < j`` whose separation is at most ``V``."""
    if len(positions) < 2:
        return set()
    return visibility_edges_from_matrix(
        pairwise_distances(positions), visibility_range, eps=eps
    )


def strong_visibility_edges(
    positions: Sequence[PointLike], visibility_range: float, *, eps: float = EPS
) -> Set[Edge]:
    """Pairs whose separation is at most ``V/2`` (the paper's *strong* visibility)."""
    return visibility_edges(positions, visibility_range / 2.0, eps=eps)


def adjacency_from_edges(n: int, edges: Iterable[Edge]) -> Dict[int, Set[int]]:
    """Adjacency-list view of an edge set over ``n`` vertices."""
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(n)}
    for i, j in edges:
        adjacency[i].add(j)
        adjacency[j].add(i)
    return adjacency


def connected_components(n: int, edges: Iterable[Edge]) -> List[Set[int]]:
    """Connected components of the graph on ``n`` vertices with ``edges``."""
    adjacency = adjacency_from_edges(n, edges)
    seen: Set[int] = set()
    components: List[Set[int]] = []
    for start in range(n):
        if start in seen:
            continue
        stack = [start]
        component: Set[int] = set()
        while stack:
            v = stack.pop()
            if v in component:
                continue
            component.add(v)
            stack.extend(adjacency[v] - component)
        seen |= component
        components.append(component)
    return components


def is_connected(
    positions: Sequence[PointLike], visibility_range: float, *, eps: float = EPS
) -> bool:
    """True when the visibility graph of ``positions`` is connected."""
    n = len(positions)
    if n <= 1:
        return True
    edges = visibility_edges(positions, visibility_range, eps=eps)
    return len(connected_components(n, edges)) == 1


def edges_preserved(
    initial_edges: Iterable[Edge],
    positions: Sequence[PointLike],
    visibility_range: float,
    *,
    eps: float = EPS,
) -> bool:
    """Cohesion predicate: every initial edge is still a visibility edge.

    This is the invariant ``E(0) ⊆ E(t)`` of the Cohesive Convergence
    problem definition (Section 2.4 of the paper).
    """
    current = visibility_edges(positions, visibility_range, eps=eps)
    return all(edge in current for edge in initial_edges)


def broken_edges(
    initial_edges: Iterable[Edge],
    positions: Sequence[PointLike],
    visibility_range: float,
    *,
    eps: float = EPS,
) -> Set[Edge]:
    """The initial edges that are no longer visibility edges (empty when cohesive)."""
    current = visibility_edges(positions, visibility_range, eps=eps)
    return {edge for edge in initial_edges if edge not in current}


def broken_edges_from_matrix(
    initial_edges: Iterable[Edge],
    distances: np.ndarray,
    visibility_range: float,
    *,
    eps: float = EPS,
) -> Set[Edge]:
    """The initial edges whose current length exceeds ``V``, from a distance matrix.

    Equivalent to :func:`broken_edges` but reads the lengths of the tracked
    edges straight out of a precomputed matrix instead of rebuilding the
    full current edge set — the form the vectorized metrics path uses.
    """
    edges = list(initial_edges)
    if not edges:
        return set()
    index = np.asarray(edges, dtype=int)
    lengths = distances[index[:, 0], index[:, 1]]
    over = lengths > visibility_range + eps
    return {edges[i] for i in np.flatnonzero(over)}


def max_edge_stretch(
    edges: Iterable[Edge], positions: Sequence[PointLike]
) -> float:
    """Largest current separation among the given pairs (0 with no edges).

    Gathers only the endpoints of the given edges — O(|E|) work instead of
    the full O(n^2) pairwise matrix.
    """
    index = np.asarray(list(edges), dtype=int)
    if index.size == 0:
        return 0.0
    arr = points_to_array(positions)
    diff = arr[index[:, 0]] - arr[index[:, 1]]
    lengths = np.sqrt(diff[:, 0] * diff[:, 0] + diff[:, 1] * diff[:, 1])
    return float(lengths.max())


def neighbours_of(
    index: int, positions: Sequence[PointLike], visibility_range: float, *, eps: float = EPS
) -> List[int]:
    """Indices of the robots visible from robot ``index`` (excluding itself).

    Computes only the one distance row the query needs, not the full
    pairwise matrix.
    """
    arr = points_to_array(positions)
    if len(arr) == 0:
        return []
    diff = arr - arr[index]
    row = np.sqrt(diff[:, 0] * diff[:, 0] + diff[:, 1] * diff[:, 1])
    visible = row <= visibility_range + eps
    visible[index] = False
    return np.flatnonzero(visible).tolist()


def is_linearly_separable(
    positions: Sequence[PointLike], group_a: Iterable[int], group_b: Iterable[int]
) -> bool:
    """True when some line strictly separates the two groups of robots.

    The Section-7 impossibility produces a configuration whose visibility
    graph splits into two *linearly separable* connected components; this
    predicate lets the experiment verify that claim.  Implemented as a
    support-vector style test on the convex hulls: the groups are
    separable iff their convex hulls are disjoint, which we check by
    linear programming over candidate separating directions induced by
    hull edges and vertex pairs.
    """
    from ..geometry.hull import ConvexHull
    from ..geometry.point import Point

    pts_a = [Point.of(positions[i]) for i in group_a]
    pts_b = [Point.of(positions[i]) for i in group_b]
    if not pts_a or not pts_b:
        return True
    hull_a = ConvexHull.of(pts_a)
    hull_b = ConvexHull.of(pts_b)

    def separated_by(direction: Point) -> bool:
        if direction.norm() <= EPS:
            return False
        d = direction.unit()
        max_a = max(p.dot(d) for p in pts_a)
        min_b = min(p.dot(d) for p in pts_b)
        return max_a < min_b - EPS

    candidates: List[Point] = []
    for hull in (hull_a, hull_b):
        verts = hull.vertices
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)] if len(verts) > 1 else v
            edge = w - v
            if edge.norm() > EPS:
                candidates.append(edge.perpendicular())
                candidates.append(-edge.perpendicular())
    for a in pts_a:
        for b in pts_b:
            diff = b - a
            if diff.norm() > EPS:
                candidates.append(diff)
    return any(separated_by(c) for c in candidates)
