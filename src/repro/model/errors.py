"""Measurement-imprecision and motion-error models (Sections 2.3.2, 2.3.3, 6.1).

The paper's robots are subject to three kinds of adversarial inaccuracy:

* **distance measurement error** — the perceived distance to a neighbour is
  accurate only up to a relative factor ``delta``;
* **angle measurement error** — perceived directions pass through a
  symmetric distortion of the local coordinate system with bounded skew
  ``lambda`` (see :class:`repro.geometry.SymmetricDistortion`);
* **motion error** — the realised trajectory deviates from the intended
  straight trajectory; the paper shows linear relative error defeats any
  algorithm while error growing quadratically with the travelled distance
  is tolerated; in addition motion is only ``xi``-rigid (an adversary may
  stop the robot after fraction ``xi`` of its planned move).

Perception errors may be sampled randomly or driven adversarially; both
modes are exposed here.  The engine applies a :class:`PerceptionModel`
when building snapshots and a :class:`MotionModel` when realising moves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..geometry.point import Point, PointLike
from ..geometry.tolerances import EPS
from ..geometry.transforms import SymmetricDistortion


@dataclass(frozen=True)
class PerceptionModel:
    """How a robot's Look phase corrupts true relative positions.

    ``distance_error`` is the relative bound ``delta``: a true distance
    ``d`` is perceived as some value in ``[(1 - delta) d, (1 + delta) d]``.
    ``distortion`` is the bounded-skew symmetric distortion applied to the
    perceived direction.  ``bias`` selects how the distance error is drawn:
    ``"random"`` draws uniformly from the allowed interval,
    ``"over"``/``"under"`` always report the extreme over/under estimate
    (the adversarial cases the paper's arguments use), ``"none"`` reports
    the true distance.
    """

    distance_error: float = 0.0
    distortion: Optional[SymmetricDistortion] = None
    bias: str = "random"

    def __post_init__(self) -> None:
        if self.distance_error < 0.0 or self.distance_error >= 1.0:
            raise ValueError("relative distance error must lie in [0, 1)")
        if self.bias not in ("random", "over", "under", "none"):
            raise ValueError(f"unknown perception bias {self.bias!r}")

    @staticmethod
    def exact() -> "PerceptionModel":
        """A perception model with no error at all."""
        return PerceptionModel(0.0, None, "none")

    def is_exact(self) -> bool:
        """True when this model introduces no perception error."""
        return self.distance_error == 0.0 and (
            self.distortion is None or self.distortion.amplitude == 0.0
        )

    def _distance_factor(self, rng: Optional[np.random.Generator]) -> float:
        if self.distance_error == 0.0 or self.bias == "none":
            return 1.0
        if self.bias == "over":
            return 1.0 + self.distance_error
        if self.bias == "under":
            return 1.0 - self.distance_error
        if rng is None:
            return 1.0
        return float(rng.uniform(1.0 - self.distance_error, 1.0 + self.distance_error))

    def _is_identity(self, rng: Optional[np.random.Generator]) -> bool:
        """True when perception would report every vector unchanged."""
        no_distance_error = (
            self.distance_error == 0.0
            or self.bias == "none"
            or (self.bias == "random" and rng is None)
        )
        no_distortion = self.distortion is None or self.distortion.amplitude == 0.0
        return no_distance_error and no_distortion

    def perceive_vector(
        self, vector: PointLike, rng: Optional[np.random.Generator] = None
    ) -> Point:
        """Perceived version of a true relative position ``vector``.

        Delegates to :meth:`perceive_array` so the scalar and batch paths
        are bit-identical (including the order of any RNG draws).
        """
        v = Point.of(vector)
        out = self.perceive_array(np.array([[v.x, v.y]], dtype=float), rng)
        return Point(float(out[0, 0]), float(out[0, 1]))

    def perceive_array(
        self, vectors: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Perceived versions of an ``(m, d)`` array of true relative positions.

        The batch form of :meth:`perceive_vector`: one polar decomposition
        and one reconstruction for the whole array.  With ``bias ==
        "random"`` the distance factors are drawn as a single
        ``rng.uniform(..., size=k)`` call over the vectors that need one
        (near-zero vectors are reported verbatim and draw nothing), which
        consumes the generator stream exactly as the per-vector loop did.
        Error-free perception is the identity: the true relative positions
        are returned unchanged, with no polar round-trip rounding.

        The model is dimension-generic: in the plane the perceived vector
        is rebuilt from its (possibly distorted) polar form, exactly as it
        always was; in higher dimensions the relative distance error
        scales each vector along its true direction, and the angular
        distortion — an inherently planar notion (a bijection of the
        circle) — raises ``ValueError``.
        """
        arr = np.asarray(vectors, dtype=float)
        if arr.ndim != 2:
            arr = arr.reshape(-1, 2)
        if arr.shape[1] != 2:
            return self._perceive_rows_nd(arr, rng)
        if len(arr) == 0 or self._is_identity(rng):
            return arr
        r = np.hypot(arr[:, 0], arr[:, 1])
        measurable = r > EPS
        if not measurable.any():
            return arr
        r_perceived = r.copy()
        if self.distance_error > 0.0 and self.bias != "none":
            if self.bias == "over":
                r_perceived[measurable] = r[measurable] * (1.0 + self.distance_error)
            elif self.bias == "under":
                r_perceived[measurable] = r[measurable] * (1.0 - self.distance_error)
            elif rng is not None:
                factors = rng.uniform(
                    1.0 - self.distance_error,
                    1.0 + self.distance_error,
                    size=int(measurable.sum()),
                )
                r_perceived[measurable] = r[measurable] * factors
        angle = np.arctan2(arr[:, 1], arr[:, 0])
        if self.distortion is not None:
            angle = self.distortion.apply_angle_array(angle)
        out = np.column_stack((r_perceived * np.cos(angle), r_perceived * np.sin(angle)))
        out[~measurable] = arr[~measurable]
        return out

    def _perceive_rows_nd(
        self, arr: np.ndarray, rng: Optional[np.random.Generator]
    ) -> np.ndarray:
        """The d > 2 branch of :meth:`perceive_array` (radial error only)."""
        if self.distortion is not None and self.distortion.amplitude != 0.0:
            raise ValueError(
                "angular distortion is a planar error model and has no "
                f"{arr.shape[1]}-dimensional counterpart"
            )
        if len(arr) == 0 or self._is_identity(rng):
            return arr
        r = np.sqrt((arr * arr).sum(axis=1))
        measurable = r > EPS
        if not measurable.any():
            return arr
        factor = np.ones(len(arr), dtype=float)
        if self.distance_error > 0.0 and self.bias != "none":
            if self.bias == "over":
                factor[measurable] = 1.0 + self.distance_error
            elif self.bias == "under":
                factor[measurable] = 1.0 - self.distance_error
            elif rng is not None:
                factor[measurable] = rng.uniform(
                    1.0 - self.distance_error,
                    1.0 + self.distance_error,
                    size=int(measurable.sum()),
                )
        return arr * factor[:, None]

    def skew(self) -> float:
        """The skew bound of the angular distortion (0 when undistorted)."""
        return 0.0 if self.distortion is None else self.distortion.skew()


@dataclass(frozen=True)
class MotionModel:
    """How a robot's Move phase realises the planned trajectory.

    ``xi`` is the rigidity constant: the robot always covers at least the
    fraction ``xi`` of the planned move (the scheduler picks the actual
    fraction per activation, which the engine clamps to ``[xi, 1]``).

    ``deviation`` selects the lateral error of the realised endpoint from
    the intended straight trajectory: ``"none"``, ``"linear"`` (error up to
    ``coefficient * d``) or ``"quadratic"`` (error up to
    ``coefficient * d^2 / scale``), where ``d`` is the planned distance.
    Section 6.1 and Figure 18 of the paper show linear error defeats every
    algorithm while quadratic error is tolerated.
    """

    xi: float = 1.0
    deviation: str = "none"
    coefficient: float = 0.0
    scale: float = 1.0
    bias: str = "random"

    def __post_init__(self) -> None:
        if not 0.0 < self.xi <= 1.0:
            raise ValueError("xi must lie in (0, 1]")
        if self.deviation not in ("none", "linear", "quadratic"):
            raise ValueError(f"unknown deviation model {self.deviation!r}")
        if self.coefficient < 0.0:
            raise ValueError("deviation coefficient must be non-negative")
        if self.scale <= 0.0:
            raise ValueError("deviation scale must be positive")
        if self.bias not in ("random", "adversarial"):
            raise ValueError(f"unknown motion bias {self.bias!r}")

    @staticmethod
    def rigid() -> "MotionModel":
        """Fully rigid, error-free motion."""
        return MotionModel()

    def is_rigid(self) -> bool:
        """True when motion is rigid (xi == 1) and free of lateral error."""
        return self.xi == 1.0 and (self.deviation == "none" or self.coefficient == 0.0)

    def clamp_fraction(self, requested_fraction: float) -> float:
        """Clamp a scheduler-requested progress fraction into ``[xi, 1]``."""
        return min(1.0, max(self.xi, requested_fraction))

    def max_deviation(self, planned_distance: float) -> float:
        """Largest lateral deviation allowed for a move of ``planned_distance``."""
        if self.deviation == "none" or self.coefficient == 0.0:
            return 0.0
        if self.deviation == "linear":
            return self.coefficient * planned_distance
        return self.coefficient * planned_distance * planned_distance / self.scale

    def realize(
        self,
        origin: PointLike,
        target: PointLike,
        requested_fraction: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> Point:
        """Endpoint actually reached when moving from ``origin`` toward ``target``.

        The move covers ``clamp_fraction(requested_fraction)`` of the
        planned distance along the intended direction and is then displaced
        laterally by at most :meth:`max_deviation` of the *planned* length.
        With ``bias == "adversarial"`` the full lateral deviation is always
        applied (in the +90-degree direction); with ``"random"`` it is
        sampled uniformly.
        """
        origin, target = Point.of(origin), Point.of(target)
        planned = origin.distance_to(target)
        if planned <= EPS:
            return origin
        fraction = self.clamp_fraction(requested_fraction)
        along = origin.lerp(target, fraction)
        max_dev = self.max_deviation(planned)
        if max_dev <= 0.0:
            return along
        direction = origin.direction_to(target).perpendicular()
        if self.bias == "adversarial" or rng is None:
            offset = max_dev
        else:
            offset = float(rng.uniform(-max_dev, max_dev))
        return along + direction * offset

    def realize_array(
        self,
        origin: np.ndarray,
        target: np.ndarray,
        requested_fraction: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """:meth:`realize` on coordinate rows, in any spatial dimension.

        In the plane the arithmetic mirrors the :class:`Point` path
        operation for operation (same clamp, same interpolation, same
        fixed +90-degree lateral direction), so the two forms agree bit
        for bit.  In higher dimensions the lateral deviation leaves along
        a unit direction perpendicular to the planned trajectory: a
        deterministic one under ``bias == "adversarial"`` (or without an
        RNG), otherwise a uniformly random direction on the perpendicular
        circle (one Gaussian draw of ``d`` components) followed by the
        same uniform offset draw the planar path makes.
        """
        origin = np.asarray(origin, dtype=float)
        target = np.asarray(target, dtype=float)
        dim = origin.shape[-1]
        delta = target - origin
        if dim == 2:
            planned = math.hypot(float(delta[0]), float(delta[1]))
        else:
            planned = math.sqrt(float((delta * delta).sum()))
        if planned <= EPS:
            return origin.copy()
        fraction = self.clamp_fraction(requested_fraction)
        along = origin + delta * fraction
        max_dev = self.max_deviation(planned)
        if max_dev <= 0.0:
            return along
        unit = delta / planned
        if dim == 2:
            direction = np.array((-unit[1], unit[0]), dtype=float)
        elif self.bias == "adversarial" or rng is None:
            direction = _deterministic_perpendicular(unit)
        else:
            direction = _random_perpendicular(unit, rng)
        if self.bias == "adversarial" or rng is None:
            offset = max_dev
        else:
            offset = float(rng.uniform(-max_dev, max_dev))
        return along + direction * offset


def _deterministic_perpendicular(unit: np.ndarray) -> np.ndarray:
    """A fixed unit vector perpendicular to ``unit`` (for adversarial bias).

    Projects out the axis least aligned with the trajectory, so the
    result is well-conditioned for every direction.
    """
    axis = np.zeros_like(unit)
    axis[int(np.abs(unit).argmin())] = 1.0
    perpendicular = axis - float(axis @ unit) * unit
    return perpendicular / math.sqrt(float((perpendicular * perpendicular).sum()))


def _random_perpendicular(unit: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A uniformly random unit vector perpendicular to ``unit``."""
    gaussian = rng.normal(size=unit.shape[0])
    perpendicular = gaussian - float(gaussian @ unit) * unit
    norm = math.sqrt(float((perpendicular * perpendicular).sum()))
    if norm <= EPS:  # pragma: no cover - measure-zero draw
        return _deterministic_perpendicular(unit)
    return perpendicular / norm
