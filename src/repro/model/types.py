"""Shared enums and small value types for the robot model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Phase(enum.Enum):
    """The phase a robot is currently in.

    The OBLOT activity cycle is Look-Compute-Move; between cycles a robot
    is idle (inactive).  The Look phase is instantaneous, so it never
    appears as a standing state: a robot goes from IDLE directly to
    COMPUTING at its activation time.
    """

    IDLE = "idle"
    COMPUTING = "computing"
    MOVING = "moving"

    def is_active(self) -> bool:
        """True for the phases inside an activity interval."""
        return self is not Phase.IDLE

    def is_motile(self) -> bool:
        """True when the robot is capable of moving (the Move phase)."""
        return self is Phase.MOVING


class SchedulerClass(enum.Enum):
    """The synchronisation models discussed in the paper (Section 2.3.1)."""

    FSYNC = "fsync"
    SSYNC = "ssync"
    K_NESTA = "k-nesta"
    K_ASYNC = "k-async"
    ASYNC = "async"
    SCRIPTED = "scripted"


@dataclass(frozen=True)
class Activation:
    """One Look-Compute-Move activity interval, as issued by a scheduler.

    ``look_time`` is the instant of the (instantaneous) Look phase and the
    start of the activity interval.  The Compute phase lasts
    ``compute_duration``; the Move phase starts right after it and lasts
    ``move_duration``.  ``progress_fraction`` is the adversarial choice of
    how much of the planned trajectory is actually realised (xi-rigid
    motion: the engine clamps it to at least the motion model's xi).
    """

    robot_id: int
    look_time: float
    compute_duration: float = 0.0
    move_duration: float = 1.0
    progress_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.look_time < 0.0:
            raise ValueError("activation look_time must be non-negative")
        if self.compute_duration < 0.0 or self.move_duration < 0.0:
            raise ValueError("activation phase durations must be non-negative")
        if not 0.0 < self.progress_fraction <= 1.0:
            raise ValueError("progress_fraction must lie in (0, 1]")

    @property
    def move_start_time(self) -> float:
        """Instant the Move phase begins."""
        return self.look_time + self.compute_duration

    @property
    def end_time(self) -> float:
        """Instant the activity interval ends."""
        return self.move_start_time + self.move_duration

    def overlaps(self, other: "Activation") -> bool:
        """True when the two activity intervals overlap in time."""
        return self.look_time < other.end_time and other.look_time < self.end_time

    def contains(self, other: "Activation") -> bool:
        """True when ``other``'s interval is nested inside this one."""
        return self.look_time <= other.look_time and other.end_time <= self.end_time

    def starts_within(self, other: "Activation") -> bool:
        """True when this activation *starts* during ``other``'s interval.

        The k-Async constraint bounds, for every activity interval of a
        robot, the number of activations of any other robot that start
        within it.
        """
        return other.look_time <= self.look_time < other.end_time


@dataclass
class ActivationRecord:
    """What actually happened during one executed activation (engine output)."""

    activation: Activation
    origin: "object" = None  # Point; typed loosely to avoid an import cycle
    target: "object" = None
    destination: "object" = None
    neighbours_seen: int = 0
    moved_distance: float = 0.0

    @property
    def robot_id(self) -> int:
        """Robot this record belongs to."""
        return self.activation.robot_id
