"""Configurations: the multiset of robot positions at one instant.

A :class:`Configuration` couples robot positions with the visibility
range and offers the geometric and graph-theoretic measures the paper's
analysis is phrased in: visibility graph and its connectivity, convex
hull perimeter/diameter, smallest bounding circle, and the cohesion
predicate relative to an earlier configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geometry.hull import ConvexHull
from ..geometry.minbox import BoundingBox
from ..geometry.point import Point, PointLike, centroid, max_pairwise_distance, points_to_array
from ..geometry.sec import smallest_enclosing_circle
from ..geometry.tolerances import EPS
from .visibility import (
    Edge,
    broken_edges,
    connected_components,
    edges_preserved,
    is_connected,
    strong_visibility_edges,
    visibility_edges,
)


@dataclass(frozen=True)
class Configuration:
    """Positions of all robots at one instant, plus the visibility range."""

    positions: tuple
    visibility_range: float

    def __post_init__(self) -> None:
        positions = self.positions
        # Point.of is the identity on Point inputs; skip rebuilding the
        # tuple when there is nothing to convert (the common case when an
        # engine hands back its own observed positions).
        if type(positions) is not tuple or not all(
            type(p) is Point for p in positions
        ):
            object.__setattr__(
                self, "positions", tuple(Point.of(p) for p in positions)
            )
        if self.visibility_range <= 0.0:
            raise ValueError("visibility range must be positive")

    @staticmethod
    def of(positions: Sequence[PointLike], visibility_range: float) -> "Configuration":
        """Build a configuration from any point-like sequence."""
        return Configuration(tuple(positions), float(visibility_range))

    # -- basics -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.positions)

    def __getitem__(self, index: int) -> Point:
        return self.positions[index]

    def as_array(self) -> np.ndarray:
        """Positions as an ``(n, 2)`` numpy array."""
        return points_to_array(self.positions)

    def with_positions(self, positions: Sequence[PointLike]) -> "Configuration":
        """A configuration with the same range but new positions."""
        return Configuration.of(positions, self.visibility_range)

    def translated(self, offset: PointLike) -> "Configuration":
        """The whole configuration translated by ``offset``."""
        offset = Point.of(offset)
        return self.with_positions([p + offset for p in self.positions])

    def scaled(self, factor: float, about: Optional[PointLike] = None) -> "Configuration":
        """The configuration scaled about ``about`` (default: its centroid)."""
        center = Point.of(about) if about is not None else centroid(self.positions)
        return self.with_positions([center + (p - center) * factor for p in self.positions])

    # -- visibility graph ---------------------------------------------------------
    def edges(self) -> Set[Edge]:
        """Edges of the visibility graph."""
        return visibility_edges(self.positions, self.visibility_range)

    def strong_edges(self) -> Set[Edge]:
        """Edges of the strong-visibility graph (separation at most V/2)."""
        return strong_visibility_edges(self.positions, self.visibility_range)

    def is_connected(self) -> bool:
        """True when the visibility graph is connected."""
        return is_connected(self.positions, self.visibility_range)

    def components(self) -> List[Set[int]]:
        """Connected components of the visibility graph."""
        return connected_components(len(self.positions), self.edges())

    def preserves_edges_of(self, other: "Configuration") -> bool:
        """Cohesion check: every visibility edge of ``other`` is an edge here."""
        return edges_preserved(other.edges(), self.positions, self.visibility_range)

    def broken_edges_of(self, other: "Configuration") -> Set[Edge]:
        """The visibility edges of ``other`` that are broken here."""
        return broken_edges(other.edges(), self.positions, self.visibility_range)

    def degree(self, index: int) -> int:
        """Number of robots visible from robot ``index``."""
        return sum(1 for (i, j) in self.edges() if i == index or j == index)

    # -- geometric measures --------------------------------------------------------
    def hull(self) -> ConvexHull:
        """Convex hull of the robot positions."""
        return ConvexHull.of(self.positions)

    def hull_diameter(self) -> float:
        """Diameter of the convex hull (the paper's convergence measure)."""
        return max_pairwise_distance(list(self.positions))

    def hull_perimeter(self) -> float:
        """Perimeter of the convex hull."""
        return self.hull().perimeter()

    def hull_radius(self) -> float:
        """Radius of the smallest circle enclosing all robots."""
        return smallest_enclosing_circle(self.positions).radius

    def bounding_box(self) -> BoundingBox:
        """Minimal axis-aligned bounding box."""
        return BoundingBox.of(self.positions)

    def centroid(self) -> Point:
        """Centre of gravity of the configuration."""
        return centroid(self.positions)

    def min_pairwise_distance(self) -> float:
        """Smallest separation between distinct robots (collision measure)."""
        from ..geometry.point import min_pairwise_distance

        return min_pairwise_distance(self.positions)

    def within_epsilon(self, epsilon: float) -> bool:
        """Point-Convergence check: every pairwise separation at most ``epsilon``."""
        return self.hull_diameter() <= epsilon

    def multiplicity_points(self, *, eps: float = 1e-12) -> List[Tuple[Point, int]]:
        """Positions occupied by more than one robot, with their counts."""
        groups: List[Tuple[Point, int]] = []
        for p in self.positions:
            for i, (q, count) in enumerate(groups):
                if q.distance_to(p) <= eps:
                    groups[i] = (q, count + 1)
                    break
            else:
                groups.append((p, 1))
        return [(p, c) for p, c in groups if c > 1]
