"""Snapshots: what a robot perceives during its Look phase.

A snapshot is expressed in the observing robot's private coordinate
system: the observer sits at the origin and every visible robot appears as
a relative position.  The private frame may be arbitrarily rotated,
reflected and (optionally) scaled, and the perceived positions may carry
measurement error.  Algorithms only ever see a :class:`Snapshot`; they
return a destination expressed in the same private coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.point import Point, PointLike
from ..geometry.tolerances import EPS
from ..geometry.transforms import LocalFrame
from .errors import PerceptionModel


@dataclass(frozen=True)
class Snapshot:
    """The input of one Compute phase.

    ``neighbours`` are the perceived relative positions of the *other*
    visible robots (the observer itself is not included; co-located robots
    collapse to a single perceived position unless ``multiplicities`` is
    provided).  ``visibility_range`` carries the common range ``V`` only
    when the engine was configured to reveal it (the paper's algorithm
    never needs it, Ando et al.'s does).  ``k_bound`` carries the
    asynchrony bound the system is promised to respect, for algorithms
    whose motion rule scales with ``1/k``.
    """

    neighbours: tuple
    visibility_range: Optional[float] = None
    k_bound: Optional[int] = None
    multiplicities: Optional[tuple] = None
    time: float = 0.0
    robot_id: Optional[int] = None

    def __post_init__(self) -> None:
        neighbours = self.neighbours
        if not (
            isinstance(neighbours, tuple)
            and all(type(p) is Point for p in neighbours)
        ):
            object.__setattr__(
                self, "neighbours", tuple(Point.of(p) for p in neighbours)
            )
        if self.multiplicities is not None:
            object.__setattr__(self, "multiplicities", tuple(int(m) for m in self.multiplicities))
            if len(self.multiplicities) != len(self.neighbours):
                raise ValueError("multiplicities must match neighbours")

    # -- basic queries -------------------------------------------------------
    def has_neighbours(self) -> bool:
        """True when at least one other robot is visible."""
        return len(self.neighbours) > 0

    def neighbour_count(self) -> int:
        """Number of perceived neighbour positions."""
        return len(self.neighbours)

    @cached_property
    def norms(self) -> tuple:
        """Perceived distance of each neighbour, computed once per snapshot.

        Every Compute phase reads the neighbour norms several times (the
        range bound, the distant/close split, the direction scaling); this
        caches the single pass.  Values are exactly ``p.norm()`` per
        neighbour.
        """
        return tuple(math.hypot(p.x, p.y) for p in self.neighbours)

    def distances(self) -> List[float]:
        """Perceived distances to each neighbour."""
        return list(self.norms)

    def farthest_distance(self) -> float:
        """Perceived distance to the farthest neighbour (0 with no neighbours).

        This is the paper's tentative lower bound ``V_Y`` on the true
        visibility range.
        """
        if not self.neighbours:
            return 0.0
        return max(self.norms)

    def farthest_neighbour(self) -> Optional[Point]:
        """Perceived position of the farthest neighbour."""
        if not self.neighbours:
            return None
        norms = self.norms
        return self.neighbours[max(range(len(norms)), key=norms.__getitem__)]

    def nearest_distance(self) -> float:
        """Perceived distance to the nearest non-coincident neighbour."""
        positive = [r for r in self.norms if r > EPS]
        return min(positive) if positive else 0.0

    def with_self(self) -> List[Point]:
        """Neighbour positions plus the observer's own (origin) position."""
        return [Point.origin(), *self.neighbours]

    def distant_neighbours(self, close_fraction: float = 0.5) -> List[Point]:
        """Neighbours farther than ``close_fraction * V_Y`` (the paper's *distant* set).

        By the paper's definition the farthest neighbour is always distant,
        so the returned list is non-empty whenever there are neighbours.
        """
        v_y = self.farthest_distance()
        if v_y <= EPS:
            return []
        threshold = close_fraction * v_y
        return [
            p
            for p, r in zip(self.neighbours, self.norms)
            if r > threshold + EPS or r >= v_y - EPS
        ]

    def close_neighbours(self, close_fraction: float = 0.5) -> List[Point]:
        """Neighbours at distance at most ``close_fraction * V_Y``."""
        distant = {(p.x, p.y) for p in self.distant_neighbours(close_fraction)}
        return [p for p in self.neighbours if (p.x, p.y) not in distant]


def _others_as_array(others: Sequence[PointLike]) -> np.ndarray:
    """Coerce the observed positions into an ``(m, 2)`` float array."""
    if isinstance(others, np.ndarray):
        return np.asarray(others, dtype=float).reshape(-1, 2)
    if len(others) == 0:
        return np.zeros((0, 2), dtype=float)
    return np.array([(p[0], p[1]) for p in others], dtype=float)


#: Below this many visible robots the coincidence certificate runs as a
#: scalar all-pairs scan instead of the lexsort pipeline.
_COLLAPSE_SCALAR_MAX = 32


def _collapse_coincident_array(
    visible: np.ndarray, eps: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Collapse coincident rows of an ``(m, 2)`` array, seed semantics.

    The generic case — no two visible robots within ``eps`` of each other
    — is certified by one lexsort: if all x-gaps between lexically
    adjacent points exceed ``eps``, and within every run of x-close
    points all sorted y-gaps do too, no pair can be within ``eps``
    (1D: any two values within ``eps`` leave an adjacent sorted gap of at
    most ``eps``), so nothing collapses and the quadratic scan is skipped
    entirely.  Only when the sort finds candidate near-duplicates does
    the exact first-representative scan run — over what is then a tiny
    cluster-bearing set — preserving the object path's semantics
    (each point joins the first earlier representative within ``eps``).
    """
    m = len(visible)
    counts = np.ones(m, dtype=np.int64)
    if m <= 1:
        return visible, counts
    if m <= _COLLAPSE_SCALAR_MAX:
        # Typical snapshots are degree-sized; a scalar all-pairs scan with
        # a slightly widened squared-distance guard (any pair the exact
        # hypot test could collapse is certainly flagged) beats the numpy
        # certificate's fixed overhead by an order of magnitude.  Flagged
        # sets still go through the exact scan, so the output is
        # unchanged in every case.
        guard = (eps * (1.0 + 1e-9)) ** 2
        rows = visible.tolist()
        for i in range(m):
            xi, yi = rows[i]
            for xj, yj in rows[i + 1 :]:
                dx = xj - xi
                dy = yj - yi
                if dx * dx + dy * dy <= guard:
                    return _collapse_coincident_scan(visible, eps)
        return visible, counts
    order = np.lexsort((visible[:, 1], visible[:, 0]))
    xs = visible[order, 0]
    x_close = np.diff(xs) <= eps
    if x_close.any():
        # Check y-separation inside each run of x-close points.
        suspicious = False
        for run in np.split(order, np.flatnonzero(~x_close) + 1):
            if len(run) < 2:
                continue
            ys = np.sort(visible[run, 1])
            if (np.diff(ys) <= eps).any():
                suspicious = True
                break
        if suspicious:
            return _collapse_coincident_scan(visible, eps)
    return visible, counts


def _collapse_coincident_scan(
    visible: np.ndarray, eps: float
) -> "tuple[np.ndarray, np.ndarray]":
    """The first-representative collapse scan (exact object-path semantics)."""
    kept: List[int] = []
    counts: List[int] = []
    for i in range(len(visible)):
        v = visible[i]
        for slot, j in enumerate(kept):
            du = visible[j] - v
            if math.hypot(du[0], du[1]) <= eps:
                counts[slot] += 1
                break
        else:
            kept.append(i)
            counts.append(1)
    return visible[kept], np.asarray(counts, dtype=np.int64)


def build_snapshot(
    observer_position: PointLike,
    others: Sequence[PointLike],
    visibility_range: float,
    *,
    frame: Optional[LocalFrame] = None,
    perception: Optional[PerceptionModel] = None,
    rng: Optional[np.random.Generator] = None,
    reveal_range: bool = False,
    k_bound: Optional[int] = None,
    multiplicity_detection: bool = False,
    time: float = 0.0,
    robot_id: Optional[int] = None,
    coincidence_eps: float = 1e-12,
    method: str = "array",
) -> Snapshot:
    """Construct the snapshot an observer would take of ``others``.

    Visibility filtering uses the *true* positions and the true range
    ``V`` (sensing reach is physical); the reported relative positions are
    then passed through the private ``frame`` and the ``perception`` model.
    Robots co-located with the observer are not reported (they are
    indistinguishable from the observer itself without multiplicity
    detection); co-located other robots collapse into a single entry
    unless ``multiplicity_detection`` is set.

    ``method`` selects the implementation: ``"array"`` (default) runs the
    whole pipeline — visibility mask, coincidence collapse, frame and
    perception transforms — as batched numpy expressions; ``"object"`` is
    the retained per-Point reference path.  Both produce identical
    snapshots (see the equivalence property tests); ``others`` may be an
    ``(m, 2)`` array on either path.
    """
    if method == "object":
        return _build_snapshot_objects(
            observer_position,
            others,
            visibility_range,
            frame=frame,
            perception=perception,
            rng=rng,
            reveal_range=reveal_range,
            k_bound=k_bound,
            multiplicity_detection=multiplicity_detection,
            time=time,
            robot_id=robot_id,
            coincidence_eps=coincidence_eps,
        )
    if method != "array":
        raise ValueError(f"unknown snapshot method {method!r}")
    observer = Point.of(observer_position)
    perception = perception or PerceptionModel.exact()

    arr = _others_as_array(others)
    if len(arr):
        relative = arr - np.array((observer.x, observer.y), dtype=float)
        distance = np.hypot(relative[:, 0], relative[:, 1])
        keep = (distance > coincidence_eps) & (distance <= visibility_range + EPS)
        visible = relative[keep]
    else:
        visible = np.zeros((0, 2), dtype=float)

    collapsed, counts = _collapse_coincident_array(visible, coincidence_eps)
    local = frame.to_local_array(collapsed) if frame is not None else collapsed
    perceived = perception.perceive_array(local, rng)

    return Snapshot(
        neighbours=tuple(Point(float(x), float(y)) for x, y in perceived),
        visibility_range=visibility_range if reveal_range else None,
        k_bound=k_bound,
        multiplicities=tuple(int(c) for c in counts) if multiplicity_detection else None,
        time=time,
        robot_id=robot_id,
    )


def _build_snapshot_objects(
    observer_position: PointLike,
    others: Sequence[PointLike],
    visibility_range: float,
    *,
    frame: Optional[LocalFrame] = None,
    perception: Optional[PerceptionModel] = None,
    rng: Optional[np.random.Generator] = None,
    reveal_range: bool = False,
    k_bound: Optional[int] = None,
    multiplicity_detection: bool = False,
    time: float = 0.0,
    robot_id: Optional[int] = None,
    coincidence_eps: float = 1e-12,
) -> Snapshot:
    """The per-Point reference implementation of :func:`build_snapshot`.

    Retained as the object path: an O(m) Point loop for visibility, the
    quadratic first-representative collapse, and per-vector frame and
    perception transforms.  The equivalence property suite pins the array
    path to this one; it also serves as the pre-vectorization baseline in
    ``benchmarks/bench_engine.py``.
    """
    observer = Point.of(observer_position)
    perception = perception or PerceptionModel.exact()

    visible: List[Point] = []
    for p in others:
        p = Point.of(p)
        d = observer.distance_to(p)
        if d <= coincidence_eps:
            continue
        if d <= visibility_range + EPS:
            visible.append(p - observer)

    # Collapse coincident perceived robots (no multiplicity detection by default).
    collapsed: List[Point] = []
    counts: List[int] = []
    for v in visible:
        for i, u in enumerate(collapsed):
            if u.distance_to(v) <= coincidence_eps:
                counts[i] += 1
                break
        else:
            collapsed.append(v)
            counts.append(1)

    perceived: List[Point] = []
    for v in collapsed:
        local = frame.to_local(v) if frame is not None else v
        perceived.append(perception.perceive_vector(local, rng))

    return Snapshot(
        neighbours=tuple(perceived),
        visibility_range=visibility_range if reveal_range else None,
        k_bound=k_bound,
        multiplicities=tuple(counts) if multiplicity_detection else None,
        time=time,
        robot_id=robot_id,
    )
