"""Snapshots: what a robot perceives during its Look phase.

A snapshot is expressed in the observing robot's private coordinate
system: the observer sits at the origin and every visible robot appears as
a relative position.  The private frame may be arbitrarily rotated,
reflected and (optionally) scaled, and the perceived positions may carry
measurement error.  Algorithms only ever see a :class:`Snapshot`; they
return a destination expressed in the same private coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.point import Point, PointLike
from ..geometry.tolerances import EPS
from ..geometry.transforms import LocalFrame
from .errors import PerceptionModel


@dataclass(frozen=True)
class Snapshot:
    """The input of one Compute phase.

    ``neighbours`` are the perceived relative positions of the *other*
    visible robots (the observer itself is not included; co-located robots
    collapse to a single perceived position unless ``multiplicities`` is
    provided).  ``visibility_range`` carries the common range ``V`` only
    when the engine was configured to reveal it (the paper's algorithm
    never needs it, Ando et al.'s does).  ``k_bound`` carries the
    asynchrony bound the system is promised to respect, for algorithms
    whose motion rule scales with ``1/k``.
    """

    neighbours: tuple
    visibility_range: Optional[float] = None
    k_bound: Optional[int] = None
    multiplicities: Optional[tuple] = None
    time: float = 0.0
    robot_id: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "neighbours", tuple(Point.of(p) for p in self.neighbours)
        )
        if self.multiplicities is not None:
            object.__setattr__(self, "multiplicities", tuple(int(m) for m in self.multiplicities))
            if len(self.multiplicities) != len(self.neighbours):
                raise ValueError("multiplicities must match neighbours")

    # -- basic queries -------------------------------------------------------
    def has_neighbours(self) -> bool:
        """True when at least one other robot is visible."""
        return len(self.neighbours) > 0

    def neighbour_count(self) -> int:
        """Number of perceived neighbour positions."""
        return len(self.neighbours)

    def distances(self) -> List[float]:
        """Perceived distances to each neighbour."""
        return [p.norm() for p in self.neighbours]

    def farthest_distance(self) -> float:
        """Perceived distance to the farthest neighbour (0 with no neighbours).

        This is the paper's tentative lower bound ``V_Y`` on the true
        visibility range.
        """
        if not self.neighbours:
            return 0.0
        return max(p.norm() for p in self.neighbours)

    def farthest_neighbour(self) -> Optional[Point]:
        """Perceived position of the farthest neighbour."""
        if not self.neighbours:
            return None
        return max(self.neighbours, key=lambda p: p.norm())

    def nearest_distance(self) -> float:
        """Perceived distance to the nearest non-coincident neighbour."""
        positive = [p.norm() for p in self.neighbours if p.norm() > EPS]
        return min(positive) if positive else 0.0

    def with_self(self) -> List[Point]:
        """Neighbour positions plus the observer's own (origin) position."""
        return [Point.origin(), *self.neighbours]

    def distant_neighbours(self, close_fraction: float = 0.5) -> List[Point]:
        """Neighbours farther than ``close_fraction * V_Y`` (the paper's *distant* set).

        By the paper's definition the farthest neighbour is always distant,
        so the returned list is non-empty whenever there are neighbours.
        """
        v_y = self.farthest_distance()
        if v_y <= EPS:
            return []
        threshold = close_fraction * v_y
        return [p for p in self.neighbours if p.norm() > threshold + EPS or p.norm() >= v_y - EPS]

    def close_neighbours(self, close_fraction: float = 0.5) -> List[Point]:
        """Neighbours at distance at most ``close_fraction * V_Y``."""
        distant = {(p.x, p.y) for p in self.distant_neighbours(close_fraction)}
        return [p for p in self.neighbours if (p.x, p.y) not in distant]


def build_snapshot(
    observer_position: PointLike,
    others: Sequence[PointLike],
    visibility_range: float,
    *,
    frame: Optional[LocalFrame] = None,
    perception: Optional[PerceptionModel] = None,
    rng: Optional[np.random.Generator] = None,
    reveal_range: bool = False,
    k_bound: Optional[int] = None,
    multiplicity_detection: bool = False,
    time: float = 0.0,
    robot_id: Optional[int] = None,
    coincidence_eps: float = 1e-12,
) -> Snapshot:
    """Construct the snapshot an observer would take of ``others``.

    Visibility filtering uses the *true* positions and the true range
    ``V`` (sensing reach is physical); the reported relative positions are
    then passed through the private ``frame`` and the ``perception`` model.
    Robots co-located with the observer are not reported (they are
    indistinguishable from the observer itself without multiplicity
    detection); co-located other robots collapse into a single entry
    unless ``multiplicity_detection`` is set.
    """
    observer = Point.of(observer_position)
    perception = perception or PerceptionModel.exact()

    visible: List[Point] = []
    for p in others:
        p = Point.of(p)
        d = observer.distance_to(p)
        if d <= coincidence_eps:
            continue
        if d <= visibility_range + EPS:
            visible.append(p - observer)

    # Collapse coincident perceived robots (no multiplicity detection by default).
    collapsed: List[Point] = []
    counts: List[int] = []
    for v in visible:
        for i, u in enumerate(collapsed):
            if u.distance_to(v) <= coincidence_eps:
                counts[i] += 1
                break
        else:
            collapsed.append(v)
            counts.append(1)

    perceived: List[Point] = []
    for v in collapsed:
        local = frame.to_local(v) if frame is not None else v
        perceived.append(perception.perceive_vector(local, rng))

    return Snapshot(
        neighbours=tuple(perceived),
        visibility_range=visibility_range if reveal_range else None,
        k_bound=k_bound,
        multiplicities=tuple(counts) if multiplicity_detection else None,
        time=time,
        robot_id=robot_id,
    )
