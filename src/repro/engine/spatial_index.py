"""A uniform spatial hash grid for exact neighbour-candidate queries.

Each Look phase must find every robot within the visibility range ``V``
of the observer.  The dense path interpolates and distance-filters all
``n`` robots; this index buckets robots into square cells of side at
least ``V`` so a query only has to examine the 3x3 block of cells around
the observer — an *exact* candidate set, never a lossy one:

* an **idle** robot occupies the single cell containing its committed
  position;
* a **moving** robot occupies every cell overlapped by the axis-aligned
  bounding box of its realised trajectory segment, so wherever along the
  segment it is observed, the cell containing that point is registered.

Because the cell side is at least ``V`` plus the visibility tolerance,
any robot within perception reach of an observer lies in a cell at most
one step away from the observer's cell in each axis; querying the 3x3
block therefore returns a superset of the true visible set, and the
caller's exact distance filter does the rest.  The engine falls back to
the dense path for small swarms (the constant-factor bookkeeping beats
the O(n) scan only once n is large enough) and for unlimited-visibility
algorithms (``V = inf`` cannot be bucketed).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..geometry.tolerances import EPS

Cell = Tuple[int, int]

# Below this swarm size the dense vectorized O(n) scan wins (a single
# numpy interpolation pass is cheap; the grid's per-Look bucket unions
# only pay off once n is well into the hundreds); the simulator uses this
# as the auto-enable threshold for the grid.
GRID_MIN_ROBOTS = 512


class UniformGridIndex:
    """Uniform hash grid over the plane with incremental per-robot updates."""

    __slots__ = ("cell_size", "_cells", "_keys")

    def __init__(self, visibility_range: float) -> None:
        if not math.isfinite(visibility_range) or visibility_range <= 0.0:
            raise ValueError("grid needs a positive, finite visibility range")
        # The visibility filter accepts distances up to V + EPS, so the cell
        # side must be at least that for the 3x3-block guarantee to hold on
        # the tolerance boundary as well.
        self.cell_size = visibility_range + 2.0 * EPS
        self._cells: Dict[Cell, Set[int]] = {}
        self._keys: Dict[int, List[Cell]] = {}

    # -- cell arithmetic -----------------------------------------------------------
    def cell_of(self, x: float, y: float) -> Cell:
        """The cell containing the point ``(x, y)``."""
        return (int(math.floor(x / self.cell_size)), int(math.floor(y / self.cell_size)))

    def _bbox_cells(self, x0: float, y0: float, x1: float, y1: float) -> List[Cell]:
        cx0, cy0 = self.cell_of(min(x0, x1), min(y0, y1))
        cx1, cy1 = self.cell_of(max(x0, x1), max(y0, y1))
        return [(cx, cy) for cx in range(cx0, cx1 + 1) for cy in range(cy0, cy1 + 1)]

    # -- incremental maintenance ---------------------------------------------------
    def _assign(self, robot_id: int, cells: List[Cell]) -> None:
        old = self._keys.get(robot_id)
        if old is not None:
            for key in old:
                bucket = self._cells.get(key)
                if bucket is not None:
                    bucket.discard(robot_id)
                    if not bucket:
                        del self._cells[key]
        for key in cells:
            self._cells.setdefault(key, set()).add(robot_id)
        self._keys[robot_id] = cells

    def settle(self, robot_id: int, x: float, y: float) -> None:
        """Register a robot at rest at ``(x, y)`` (one cell)."""
        self._assign(robot_id, [self.cell_of(x, y)])

    def begin_move(self, robot_id: int, x0: float, y0: float, x1: float, y1: float) -> None:
        """Register a robot moving along the segment ``(x0,y0) -> (x1,y1)``.

        The robot is placed in every cell of the segment's bounding box so
        a Look at any instant of the move finds it.
        """
        self._assign(robot_id, self._bbox_cells(x0, y0, x1, y1))

    def remove(self, robot_id: int) -> None:
        """Drop a robot from the index entirely."""
        self._assign(robot_id, [])
        del self._keys[robot_id]

    # -- queries ---------------------------------------------------------------------
    def candidates(self, x: float, y: float, *, exclude: Optional[int] = None) -> np.ndarray:
        """Ids of all robots in the 3x3 cell block around ``(x, y)``, ascending.

        This is a superset of every robot within ``cell_size`` of the
        point; ``exclude`` (typically the observer itself) is omitted.
        """
        cx, cy = self.cell_of(x, y)
        found: Set[int] = set()
        cells = self._cells
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = cells.get((cx + dx, cy + dy))
                if bucket:
                    found.update(bucket)
        if exclude is not None:
            found.discard(exclude)
        if not found:
            return np.empty(0, dtype=np.intp)
        out = np.fromiter(found, dtype=np.intp, count=len(found))
        out.sort()
        return out

    def cells_of(self, robot_id: int) -> List[Cell]:
        """The cells a robot currently occupies (for tests and debugging)."""
        return list(self._keys.get(robot_id, []))

    def __len__(self) -> int:
        return len(self._keys)
