"""A uniform spatial hash grid for exact neighbour-candidate queries.

Each Look phase must find every robot within the visibility range ``V``
of the observer.  The dense path interpolates and distance-filters all
``n`` robots; this index buckets robots into cube cells of side at
least ``V`` so a query only has to examine the 3^d block of cells around
the observer — an *exact* candidate set, never a lossy one:

* an **idle** robot occupies the single cell containing its committed
  position;
* a **moving** robot occupies every cell overlapped by the axis-aligned
  bounding box of its realised trajectory segment, so wherever along the
  segment it is observed, the cell containing that point is registered.

Because the cell side is at least ``V`` plus the visibility tolerance,
any robot within perception reach of an observer lies in a cell at most
one step away from the observer's cell in each axis; querying the 3^d
block (3x3 in the plane, 3x3x3 in 3-space) therefore returns a superset
of the true visible set, and the caller's exact distance filter does the
rest.  The grid is dimension-generic: the planar engine builds it with
``dim=2`` and the :mod:`repro.spatial3d` round engine with ``dim=3`` —
same bucketing, same exactness argument, same incremental maintenance.
Both engines fall back to the dense path for small swarms (the
constant-factor bookkeeping beats the O(n) scan only once n is large
enough) and for unlimited-visibility algorithms (``V = inf`` cannot be
bucketed).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..geometry.tolerances import EPS

Cell = Tuple[int, ...]

# Below this swarm size the dense vectorized O(n) scan wins (a single
# numpy interpolation pass is cheap; the grid's per-Look bucket unions
# only pay off once n is well into the hundreds).  The planar engines
# auto-enable the grid at GRID_MIN_ROBOTS; 3D runs pay for 27 bucket
# lookups per Look instead of 9, which pushes the measured crossover to
# around n ~ 2000 (see benchmarks/bench_grid_threshold.py and
# docs/engine-performance.md), hence the separate 3D threshold.  Both are
# measured on one machine — override per run with
# ``SimulationConfig.spatial_index`` / ``Simulation3Config.spatial_index``.
GRID_MIN_ROBOTS = 512
GRID_MIN_ROBOTS_3D = 2048


def grid_auto_threshold(dim: int) -> int:
    """The swarm size at which a ``dim``-dimensional run auto-enables the grid."""
    return GRID_MIN_ROBOTS if dim <= 2 else GRID_MIN_ROBOTS_3D


class UniformGridIndex:
    """Uniform hash grid over d-space with incremental per-robot updates.

    Coordinates are passed unpacked — ``settle(i, x, y)`` in the plane,
    ``settle(i, x, y, z)`` in 3-space — so the planar engine's existing
    call sites read the same as before the grid went dimension-generic.
    """

    __slots__ = ("cell_size", "dim", "_cells", "_keys", "_offsets")

    def __init__(self, visibility_range: float, dim: int = 2) -> None:
        if not math.isfinite(visibility_range) or visibility_range <= 0.0:
            raise ValueError("grid needs a positive, finite visibility range")
        if dim < 1:
            raise ValueError("grid dimension must be at least 1")
        # The visibility filter accepts distances up to V + EPS, so the cell
        # side must be at least that for the 3^d-block guarantee to hold on
        # the tolerance boundary as well.
        self.cell_size = visibility_range + 2.0 * EPS
        self.dim = dim
        self._cells: Dict[Cell, Set[int]] = {}
        self._keys: Dict[int, List[Cell]] = {}
        self._offsets: Tuple[Cell, ...] = tuple(
            itertools.product((-1, 0, 1), repeat=dim)
        )

    # -- cell arithmetic -----------------------------------------------------------
    def cell_of(self, *coords: float) -> Cell:
        """The cell containing the point with the given coordinates."""
        if len(coords) != self.dim:
            raise ValueError(f"expected {self.dim} coordinates, got {len(coords)}")
        size = self.cell_size
        return tuple(int(math.floor(c / size)) for c in coords)

    def _bbox_cells(self, lo: Cell, hi: Cell) -> List[Cell]:
        return list(itertools.product(*(range(a, b + 1) for a, b in zip(lo, hi))))

    # -- incremental maintenance ---------------------------------------------------
    def _assign(self, robot_id: int, cells: List[Cell]) -> None:
        old = self._keys.get(robot_id)
        if old is not None:
            for key in old:
                bucket = self._cells.get(key)
                if bucket is not None:
                    bucket.discard(robot_id)
                    if not bucket:
                        del self._cells[key]
        for key in cells:
            self._cells.setdefault(key, set()).add(robot_id)
        self._keys[robot_id] = cells

    def settle(self, robot_id: int, *coords: float) -> None:
        """Register a robot at rest at the given point (one cell)."""
        self._assign(robot_id, [self.cell_of(*coords)])

    def begin_move(self, robot_id: int, *coords: float) -> None:
        """Register a robot moving along the segment ``origin -> destination``.

        ``coords`` is the origin followed by the destination (``x0, y0,
        x1, y1`` in the plane; six coordinates in 3-space).  The robot is
        placed in every cell of the segment's bounding box so a Look at
        any instant of the move finds it.
        """
        d = self.dim
        if len(coords) != 2 * d:
            raise ValueError(f"expected {2 * d} coordinates, got {len(coords)}")
        origin, destination = coords[:d], coords[d:]
        lo = self.cell_of(*(min(a, b) for a, b in zip(origin, destination)))
        hi = self.cell_of(*(max(a, b) for a, b in zip(origin, destination)))
        self._assign(robot_id, self._bbox_cells(lo, hi))

    def remove(self, robot_id: int) -> None:
        """Drop a robot from the index entirely."""
        self._assign(robot_id, [])
        del self._keys[robot_id]

    # -- queries ---------------------------------------------------------------------
    def candidates(self, *coords: float, exclude: Optional[int] = None) -> np.ndarray:
        """Ids of all robots in the 3^d cell block around the point, ascending.

        This is a superset of every robot within ``cell_size`` of the
        point; ``exclude`` (typically the observer itself) is omitted.
        """
        center = self.cell_of(*coords)
        found: Set[int] = set()
        cells = self._cells
        # The 2D and 3D blocks are unrolled: this query runs once per Look
        # on grid-accelerated runs, and the generic tuple arithmetic costs
        # measurably more than the literal loops.
        if self.dim == 2:
            cx, cy = center
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    bucket = cells.get((cx + dx, cy + dy))
                    if bucket:
                        found.update(bucket)
        elif self.dim == 3:
            cx, cy, cz = center
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dz in (-1, 0, 1):
                        bucket = cells.get((cx + dx, cy + dy, cz + dz))
                        if bucket:
                            found.update(bucket)
        else:
            for offset in self._offsets:
                bucket = cells.get(tuple(c + o for c, o in zip(center, offset)))
                if bucket:
                    found.update(bucket)
        if exclude is not None:
            found.discard(exclude)
        if not found:
            return np.empty(0, dtype=np.intp)
        out = np.fromiter(found, dtype=np.intp, count=len(found))
        out.sort()
        return out

    def cells_of(self, robot_id: int) -> List[Cell]:
        """The cells a robot currently occupies (for tests and debugging)."""
        return list(self._keys.get(robot_id, []))

    def __len__(self) -> int:
        return len(self._keys)


# Side length of a sharded-grid block, in cells.  Two cells per axis keeps
# a block's 3^d-adjacent candidate array within one cache-sized chunk for
# the densities the mega-swarm workloads produce (a handful of robots per
# cell) while still amortizing the candidate-array build over all robots
# of the block.
BLOCK_CELLS = 2


class ShardedGridIndex:
    """A batch-built uniform grid sharded into contiguous cell blocks.

    :class:`UniformGridIndex` is incremental: robots settle and begin
    moves one at a time, and every Look pays a 3^d dict-bucket union.
    The round fast path has no use for that — all robots of a round Look
    at the *same* committed positions — so this index is built in one
    vectorized pass over the ``(n, d)`` committed array and queried
    through *block-local candidate arrays* in the PANDA style: cells are
    grouped into contiguous ``BLOCK_CELLS``-wide blocks, every robot of a
    block shares one lazily built candidate array (the members of the
    3^d adjacent blocks, ascending), and query batches therefore touch
    cache-sized chunks instead of per-robot set unions.

    Exactness: a robot in block ``b`` occupies cells in
    ``[2b, 2b + 1]`` per axis, so the 3^1 cell window of any of its cells
    lies within ``[2b - 1, 2b + 2]`` — covered by blocks ``b - 1 .. b + 1``.
    The 3^d adjacent *blocks* therefore contain every robot within
    ``cell_size`` of any member, and the caller's exact distance filter
    (which also drops the member itself at distance zero) does the rest.

    The ``(runs, n, d)`` replicate-batching mode (:meth:`from_replicates`)
    bins many same-shape replicates in the *same* vectorized pass with
    run-isolated block keys, so sweeps of many seeds over one workload
    amortize the binning into a single tensor step.
    """

    __slots__ = (
        "cell_size",
        "dim",
        "n",
        "runs",
        "_slot_of_robot",
        "_members",
        "_coords",
        "_span",
        "_keys",
        "_key_to_slot",
        "_candidate_cache",
    )

    def __init__(
        self,
        positions: np.ndarray,
        cell_size: float,
        *,
        run_ids: Optional[np.ndarray] = None,
        runs: int = 1,
    ) -> None:
        arr = np.asarray(positions, dtype=float)
        if arr.ndim != 2:
            raise ValueError("positions must be an (n, d) array")
        if not math.isfinite(cell_size) or cell_size <= 0.0:
            raise ValueError("sharded grid needs a positive, finite cell size")
        self.cell_size = float(cell_size)
        self.dim = int(arr.shape[1])
        self.n = int(arr.shape[0])
        self.runs = int(runs)
        if self.n == 0:
            self._slot_of_robot = np.empty(0, dtype=np.intp)
            self._members: List[np.ndarray] = []
            self._coords = np.empty((0, self.dim + 1), dtype=np.int64)
            self._span = np.ones(self.dim, dtype=np.int64)
            self._keys = np.empty(0, dtype=np.int64)
            self._key_to_slot: Dict[int, int] = {}
            self._candidate_cache: Dict[int, np.ndarray] = {}
            return
        cells = np.floor(arr / self.cell_size).astype(np.int64)
        blocks = (cells - cells.min(axis=0)) // BLOCK_CELLS
        span = blocks.max(axis=0) + 1
        if run_ids is None:
            key = np.zeros(self.n, dtype=np.int64)
        else:
            key = np.asarray(run_ids, dtype=np.int64).copy()
        for axis in range(self.dim):
            key = key * span[axis] + blocks[:, axis]
        order = np.argsort(key, kind="stable")
        sorted_keys = key[order]
        uniq, starts = np.unique(sorted_keys, return_index=True)
        bounds = np.append(starts, self.n)
        members = [order[bounds[s] : bounds[s + 1]] for s in range(len(uniq))]
        # Stable sort over ascending robot ids keeps each block's member
        # array ascending, which the candidate arrays inherit.
        self._members = members
        self._keys = uniq
        self._key_to_slot = {int(k): s for s, k in enumerate(uniq)}
        slot_of_robot = np.empty(self.n, dtype=np.intp)
        for s, m in enumerate(members):
            slot_of_robot[m] = s
        self._slot_of_robot = slot_of_robot
        first = order[starts]
        coords = np.empty((len(uniq), self.dim + 1), dtype=np.int64)
        coords[:, 0] = 0 if run_ids is None else np.asarray(run_ids, dtype=np.int64)[first]
        coords[:, 1:] = blocks[first]
        self._coords = coords
        self._span = span
        self._candidate_cache = {}

    @classmethod
    def from_replicates(cls, positions: np.ndarray, cell_size: float) -> "ShardedGridIndex":
        """Bin a ``(runs, n, d)`` replicate tensor in one vectorized pass.

        Robots are addressed by their *flat* index ``run * n + i``; block
        keys carry the run id, so candidate arrays and neighbour pairs
        never cross replicate boundaries even when two runs' positions
        coincide spatially.
        """
        arr = np.asarray(positions, dtype=float)
        if arr.ndim != 3:
            raise ValueError("replicate positions must be a (runs, n, d) tensor")
        runs, n, dim = arr.shape
        flat = arr.reshape(runs * n, dim)
        run_ids = np.repeat(np.arange(runs, dtype=np.int64), n)
        return cls(flat, cell_size, run_ids=run_ids, runs=runs)

    @property
    def n_blocks(self) -> int:
        """Number of non-empty blocks (for tests and the docs tables)."""
        return len(self._members)

    def _candidates_for_slot(self, slot: int) -> np.ndarray:
        cached = self._candidate_cache.get(slot)
        if cached is not None:
            return cached
        run = int(self._coords[slot, 0])
        center = tuple(int(c) for c in self._coords[slot, 1:])
        parts: List[np.ndarray] = []
        key_to_slot = self._key_to_slot
        span = self._span
        for offset in itertools.product((-1, 0, 1), repeat=self.dim):
            coords = tuple(c + o for c, o in zip(center, offset))
            if any(c < 0 or c >= span[axis] for axis, c in enumerate(coords)):
                continue
            key = run
            for axis in range(self.dim):
                key = key * int(span[axis]) + coords[axis]
            neighbour = key_to_slot.get(key)
            if neighbour is not None:
                parts.append(self._members[neighbour])
        out = np.sort(np.concatenate(parts))
        self._candidate_cache[slot] = out
        return out

    def candidates(self, robot_id: int) -> np.ndarray:
        """Ascending ids of every robot in the 3^d blocks around ``robot_id``.

        A superset of all robots within ``cell_size`` — *including the
        robot itself*, which the caller's coincidence filter drops at
        distance zero (the round fast path filters exactly as the dense
        snapshot build does).
        """
        return self._candidates_for_slot(int(self._slot_of_robot[robot_id]))

    def warm_candidates(self) -> None:
        """Fill the candidate cache for *every* slot in one vectorized pass.

        Bulk consumers (the replicate round pipeline queries nearly every
        slot each round) would otherwise pay the per-slot Python build of
        :meth:`_candidates_for_slot` thousands of times per grid.  Block
        adjacency for all slots resolves through one ``searchsorted`` per
        offset, and one ``lexsort`` orders every slot's candidates by
        ascending robot id — the same arrays the per-slot build produces.
        """
        n_slots = len(self._members)
        if n_slots == 0 or len(self._candidate_cache) == n_slots:
            return
        sizes = np.fromiter(
            (len(m) for m in self._members), dtype=np.int64, count=n_slots
        )
        block_starts = np.zeros(n_slots + 1, dtype=np.int64)
        np.cumsum(sizes, out=block_starts[1:])
        flat_members = np.concatenate(self._members)
        keys = self._keys
        coords = self._coords
        span_ints = [int(s) for s in self._span]
        owner_blocks: List[np.ndarray] = []
        source_blocks: List[np.ndarray] = []
        for offset in itertools.product((-1, 0, 1), repeat=self.dim):
            valid = np.ones(n_slots, dtype=bool)
            neighbour_key = coords[:, 0].copy()
            for axis in range(self.dim):
                shifted = coords[:, axis + 1] + offset[axis]
                valid &= (shifted >= 0) & (shifted < span_ints[axis])
                neighbour_key = neighbour_key * span_ints[axis] + shifted
            idx = np.searchsorted(keys, neighbour_key)
            idx[idx >= n_slots] = 0
            found = valid & (keys[idx] == neighbour_key)
            owner_blocks.append(np.flatnonzero(found))
            source_blocks.append(idx[found])
        owners = np.concatenate(owner_blocks)
        sources = np.concatenate(source_blocks)
        counts = sizes[sources]
        total = int(counts.sum())
        bounds = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        pair_of = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        local = np.arange(total, dtype=np.int64) - bounds[pair_of]
        elements = flat_members[block_starts[sources][pair_of] + local]
        slot_tag = owners[pair_of]
        order = np.lexsort((elements, slot_tag))
        sorted_elements = np.ascontiguousarray(elements[order])
        per_slot = np.bincount(slot_tag, minlength=n_slots)
        slot_bounds = np.zeros(n_slots + 1, dtype=np.int64)
        np.cumsum(per_slot, out=slot_bounds[1:])
        cache = self._candidate_cache
        lo = slot_bounds[:-1].tolist()
        hi = slot_bounds[1:].tolist()
        for slot in range(n_slots):
            if slot not in cache:
                cache[slot] = sorted_elements[lo[slot] : hi[slot]]

    def neighbour_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """All grid-local pairs ``(i, j)`` with ``i < j``, each exactly once.

        Covers every pair at distance ``<= cell_size`` (a pair that close
        differs by at most one cell — hence at most one block — per
        axis).  Block adjacency is resolved for *all* blocks at once: each
        lexicographically-positive offset pairs every block with the
        neighbour at that offset via one ``searchsorted`` over the sorted
        block keys, so each unordered block pair is visited exactly once
        and no per-block Python work remains.  Callers computing a minimum
        must verify the found minimum is ``<= cell_size`` and rebuild with
        a doubled cell size otherwise (see
        :func:`repro.engine.metrics.min_pairwise_distance_grid`).
        """
        members = self._members
        n_slots = len(members)
        empty = np.empty(0, dtype=np.intp)
        if n_slots == 0:
            return empty, empty
        sizes = np.fromiter((len(m) for m in members), dtype=np.int64, count=n_slots)
        block_starts = np.zeros(n_slots + 1, dtype=np.int64)
        np.cumsum(sizes, out=block_starts[1:])
        flat_members = np.concatenate(members)
        keys = self._keys
        coords = self._coords
        span_ints = [int(s) for s in self._span]
        zero = (0,) * self.dim
        left_blocks: List[np.ndarray] = []
        right_blocks: List[np.ndarray] = []
        for offset in itertools.product((-1, 0, 1), repeat=self.dim):
            if offset <= zero:
                # Half neighbourhood: of an unordered block pair's two
                # offsets exactly one is lexicographically positive.
                continue
            valid = np.ones(n_slots, dtype=bool)
            neighbour_key = coords[:, 0].copy()
            for axis in range(self.dim):
                shifted = coords[:, axis + 1] + offset[axis]
                # Bounds-check before the key fold: an out-of-range
                # coordinate would alias a key in another row or run.
                valid &= (shifted >= 0) & (shifted < span_ints[axis])
                neighbour_key = neighbour_key * span_ints[axis] + shifted
            idx = np.searchsorted(keys, neighbour_key)
            idx[idx >= n_slots] = 0
            found = valid & (keys[idx] == neighbour_key)
            left_blocks.append(np.flatnonzero(found))
            right_blocks.append(idx[found])
        chunks_i: List[np.ndarray] = []
        chunks_j: List[np.ndarray] = []
        ls = np.concatenate(left_blocks) if left_blocks else np.empty(0, np.int64)
        if len(ls):
            rs = np.concatenate(right_blocks)
            a = sizes[ls]
            b = sizes[rs]
            counts = a * b
            total = int(counts.sum())
            if total:
                bounds = np.zeros(len(counts) + 1, dtype=np.int64)
                np.cumsum(counts, out=bounds[1:])
                pair_of = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
                local = np.arange(total, dtype=np.int64) - bounds[pair_of]
                b_rep = b[pair_of]
                left = flat_members[block_starts[ls][pair_of] + local // b_rep]
                right = flat_members[block_starts[rs][pair_of] + local % b_rep]
                chunks_i.append(np.minimum(left, right))
                chunks_j.append(np.maximum(left, right))
        big = np.flatnonzero(sizes > 1)
        if len(big):
            a = sizes[big]
            counts = a * a
            total = int(counts.sum())
            bounds = np.zeros(len(counts) + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            pair_of = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
            local = np.arange(total, dtype=np.int64) - bounds[pair_of]
            a_rep = a[pair_of]
            base = block_starts[big][pair_of]
            left = flat_members[base + local // a_rep]
            right = flat_members[base + local % a_rep]
            keep = left < right
            chunks_i.append(left[keep])
            chunks_j.append(right[keep])
        if not chunks_i:
            return empty, empty
        return np.concatenate(chunks_i), np.concatenate(chunks_j)
