"""A uniform spatial hash grid for exact neighbour-candidate queries.

Each Look phase must find every robot within the visibility range ``V``
of the observer.  The dense path interpolates and distance-filters all
``n`` robots; this index buckets robots into cube cells of side at
least ``V`` so a query only has to examine the 3^d block of cells around
the observer — an *exact* candidate set, never a lossy one:

* an **idle** robot occupies the single cell containing its committed
  position;
* a **moving** robot occupies every cell overlapped by the axis-aligned
  bounding box of its realised trajectory segment, so wherever along the
  segment it is observed, the cell containing that point is registered.

Because the cell side is at least ``V`` plus the visibility tolerance,
any robot within perception reach of an observer lies in a cell at most
one step away from the observer's cell in each axis; querying the 3^d
block (3x3 in the plane, 3x3x3 in 3-space) therefore returns a superset
of the true visible set, and the caller's exact distance filter does the
rest.  The grid is dimension-generic: the planar engine builds it with
``dim=2`` and the :mod:`repro.spatial3d` round engine with ``dim=3`` —
same bucketing, same exactness argument, same incremental maintenance.
Both engines fall back to the dense path for small swarms (the
constant-factor bookkeeping beats the O(n) scan only once n is large
enough) and for unlimited-visibility algorithms (``V = inf`` cannot be
bucketed).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..geometry.tolerances import EPS

Cell = Tuple[int, ...]

# Below this swarm size the dense vectorized O(n) scan wins (a single
# numpy interpolation pass is cheap; the grid's per-Look bucket unions
# only pay off once n is well into the hundreds).  The planar engines
# auto-enable the grid at GRID_MIN_ROBOTS; 3D runs pay for 27 bucket
# lookups per Look instead of 9, which pushes the measured crossover to
# around n ~ 2000 (see benchmarks/bench_grid_threshold.py and
# docs/engine-performance.md), hence the separate 3D threshold.  Both are
# measured on one machine — override per run with
# ``SimulationConfig.spatial_index`` / ``Simulation3Config.spatial_index``.
GRID_MIN_ROBOTS = 512
GRID_MIN_ROBOTS_3D = 2048


def grid_auto_threshold(dim: int) -> int:
    """The swarm size at which a ``dim``-dimensional run auto-enables the grid."""
    return GRID_MIN_ROBOTS if dim <= 2 else GRID_MIN_ROBOTS_3D


class UniformGridIndex:
    """Uniform hash grid over d-space with incremental per-robot updates.

    Coordinates are passed unpacked — ``settle(i, x, y)`` in the plane,
    ``settle(i, x, y, z)`` in 3-space — so the planar engine's existing
    call sites read the same as before the grid went dimension-generic.
    """

    __slots__ = ("cell_size", "dim", "_cells", "_keys", "_offsets")

    def __init__(self, visibility_range: float, dim: int = 2) -> None:
        if not math.isfinite(visibility_range) or visibility_range <= 0.0:
            raise ValueError("grid needs a positive, finite visibility range")
        if dim < 1:
            raise ValueError("grid dimension must be at least 1")
        # The visibility filter accepts distances up to V + EPS, so the cell
        # side must be at least that for the 3^d-block guarantee to hold on
        # the tolerance boundary as well.
        self.cell_size = visibility_range + 2.0 * EPS
        self.dim = dim
        self._cells: Dict[Cell, Set[int]] = {}
        self._keys: Dict[int, List[Cell]] = {}
        self._offsets: Tuple[Cell, ...] = tuple(
            itertools.product((-1, 0, 1), repeat=dim)
        )

    # -- cell arithmetic -----------------------------------------------------------
    def cell_of(self, *coords: float) -> Cell:
        """The cell containing the point with the given coordinates."""
        if len(coords) != self.dim:
            raise ValueError(f"expected {self.dim} coordinates, got {len(coords)}")
        size = self.cell_size
        return tuple(int(math.floor(c / size)) for c in coords)

    def _bbox_cells(self, lo: Cell, hi: Cell) -> List[Cell]:
        return list(itertools.product(*(range(a, b + 1) for a, b in zip(lo, hi))))

    # -- incremental maintenance ---------------------------------------------------
    def _assign(self, robot_id: int, cells: List[Cell]) -> None:
        old = self._keys.get(robot_id)
        if old is not None:
            for key in old:
                bucket = self._cells.get(key)
                if bucket is not None:
                    bucket.discard(robot_id)
                    if not bucket:
                        del self._cells[key]
        for key in cells:
            self._cells.setdefault(key, set()).add(robot_id)
        self._keys[robot_id] = cells

    def settle(self, robot_id: int, *coords: float) -> None:
        """Register a robot at rest at the given point (one cell)."""
        self._assign(robot_id, [self.cell_of(*coords)])

    def begin_move(self, robot_id: int, *coords: float) -> None:
        """Register a robot moving along the segment ``origin -> destination``.

        ``coords`` is the origin followed by the destination (``x0, y0,
        x1, y1`` in the plane; six coordinates in 3-space).  The robot is
        placed in every cell of the segment's bounding box so a Look at
        any instant of the move finds it.
        """
        d = self.dim
        if len(coords) != 2 * d:
            raise ValueError(f"expected {2 * d} coordinates, got {len(coords)}")
        origin, destination = coords[:d], coords[d:]
        lo = self.cell_of(*(min(a, b) for a, b in zip(origin, destination)))
        hi = self.cell_of(*(max(a, b) for a, b in zip(origin, destination)))
        self._assign(robot_id, self._bbox_cells(lo, hi))

    def remove(self, robot_id: int) -> None:
        """Drop a robot from the index entirely."""
        self._assign(robot_id, [])
        del self._keys[robot_id]

    # -- queries ---------------------------------------------------------------------
    def candidates(self, *coords: float, exclude: Optional[int] = None) -> np.ndarray:
        """Ids of all robots in the 3^d cell block around the point, ascending.

        This is a superset of every robot within ``cell_size`` of the
        point; ``exclude`` (typically the observer itself) is omitted.
        """
        center = self.cell_of(*coords)
        found: Set[int] = set()
        cells = self._cells
        # The 2D and 3D blocks are unrolled: this query runs once per Look
        # on grid-accelerated runs, and the generic tuple arithmetic costs
        # measurably more than the literal loops.
        if self.dim == 2:
            cx, cy = center
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    bucket = cells.get((cx + dx, cy + dy))
                    if bucket:
                        found.update(bucket)
        elif self.dim == 3:
            cx, cy, cz = center
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dz in (-1, 0, 1):
                        bucket = cells.get((cx + dx, cy + dy, cz + dz))
                        if bucket:
                            found.update(bucket)
        else:
            for offset in self._offsets:
                bucket = cells.get(tuple(c + o for c, o in zip(center, offset)))
                if bucket:
                    found.update(bucket)
        if exclude is not None:
            found.discard(exclude)
        if not found:
            return np.empty(0, dtype=np.intp)
        out = np.fromiter(found, dtype=np.intp, count=len(found))
        out.sort()
        return out

    def cells_of(self, robot_id: int) -> List[Cell]:
        """The cells a robot currently occupies (for tests and debugging)."""
        return list(self._keys.get(robot_id, []))

    def __len__(self) -> int:
        return len(self._keys)
