"""Shared-memory process fan-out for the replicate-batched decide core.

The replicate engine (:mod:`repro.engine.replicate`) reduces each round to
one vectorized perception pre-pass plus a scalar per-activation KKNPS
core (:func:`kknps_destination_segment`).  At mega scale the scalar core
dominates the round — `benchmarks/bench_engine.py --mega` records the
per-phase split — and it is embarrassingly parallel: every activation
reads a disjoint slice of the flat perceived arrays and writes one output
row.  :class:`FanoutPool` parcels those slices across worker processes
through ``multiprocessing.shared_memory`` views, so nothing but slice
bounds and a few per-lane constants crosses the pipe.

Determinism: workers run the *same* ``kknps_destination_segment`` over
disjoint activation ranges of the same arrays, so the merged output is
bit-identical to the inline loop regardless of worker count or scheduling
order.  The pool never touches an RNG.

The auto-enable threshold :data:`REPLICATE_FANOUT_MIN_ROBOTS` comes from
the per-phase mega timings: below ~10^5 robots per round the decide core
costs less than the IPC round trip plus the shared-memory copies, so the
pool only pays for itself on mega-swarm rounds.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.tolerances import EPS

def _fanout_min_robots_default() -> int:
    """Resolve the fan-out auto-enable threshold, honouring the env override.

    ``REPRO_REPLICATE_FANOUT_MIN_ROBOTS`` lets deployments recalibrate the
    crossover without a code change (the shipped default comes from the
    per-phase mega timings; see ``benchmarks/BENCH_engine.json``,
    ``replicates.fanout_min_robots``).  Invalid or non-positive values
    fall back to the calibrated default.
    """
    raw = os.environ.get("REPRO_REPLICATE_FANOUT_MIN_ROBOTS", "")
    try:
        value = int(raw)
    except ValueError:
        return 100_000
    return value if value > 0 else 100_000


#: Robots-per-round (lanes x n) below which the process fan-out costs more
#: than it saves.  Calibrated from the per-phase mega timings recorded by
#: ``benchmarks/bench_engine.py`` (decide-core share of the round wall
#: time crosses the IPC+copy overhead around 10^5 robots); overridable
#: via the ``REPRO_REPLICATE_FANOUT_MIN_ROBOTS`` environment variable.
REPLICATE_FANOUT_MIN_ROBOTS = _fanout_min_robots_default()

#: One lane's algorithm constants, in the order the core consumes them:
#: ``(close_fraction, distance_error_tolerance, alpha, radius_divisor,
#: shrink)``.
LaneConsts = Tuple[float, float, float, float, float]


def fanout_auto_workers() -> int:
    """Default worker count for an auto-enabled fan-out pool."""
    return max(2, min(4, (os.cpu_count() or 2) - 1))


def kknps_destination_segment(
    px: np.ndarray,
    py: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    lane_of: np.ndarray,
    lane_consts: Sequence[LaneConsts],
    lo: int,
    hi: int,
    out: np.ndarray,
) -> None:
    """Local-frame KKNPS destinations for activations ``lo..hi`` (exclusive).

    ``px``/``py`` are the flat perceived neighbour coordinates of *all*
    activations; activation ``a`` owns rows ``starts[a]:ends[a]``.  The
    body is a faithful scalar transcription of
    :meth:`repro.algorithms.kknps.KKNPSAlgorithm.compute_relative` (same
    ``math.hypot`` norms, same distant classification, same
    half-plane/extreme-direction helpers), so each output row is
    bit-identical to what the serial fast tier computes for the same
    perceived rows.  Pure function of its inputs — safe to run over
    disjoint ranges in any number of processes.
    """
    if hi <= lo:
        return
    starts_l = starts.tolist()
    ends_l = ends.tolist()
    lane_l = lane_of.tolist()
    # All rows this slice touches, hoisted into plain lists once; the norms
    # come from the same ``math.hypot`` the serial tier applies per row
    # (``np.hypot`` is not bit-identical to it on every platform).
    row_lo = starts_l[lo]
    row_hi = ends_l[hi - 1]
    pxl = px[row_lo:row_hi].tolist()
    pyl = py[row_lo:row_hi].tolist()
    norms_all = list(map(math.hypot, pxl, pyl))
    atan2 = math.atan2
    pi_gate = math.pi + EPS
    two_pi = 2.0 * math.pi
    # Accumulate into plain lists and write the slice once at the end —
    # per-activation numpy scalar stores cost more than the arithmetic.
    out_x = [0.0] * (hi - lo)
    out_y = [0.0] * (hi - lo)
    for a in range(lo, hi):
        s = starts_l[a] - row_lo
        e = ends_l[a] - row_lo
        if s == e:
            continue
        close_fraction, tol, alpha, divisor, shrink = lane_consts[lane_l[a]]
        norms = norms_all[s:e]
        v_raw = max(norms)
        v_y = v_raw
        if tol > 0.0:
            v_y = v_raw / (1.0 + tol)
        if v_y <= EPS:
            continue
        # ``norms[k] > threshold + EPS`` with the sum hoisted (same float
        # every iteration).
        threshold_eps = close_fraction * v_raw + EPS
        distant = [k for k, nk in enumerate(norms) if nk > threshold_eps]
        if not distant:
            distant = [max(range(len(norms)), key=norms.__getitem__)]
        directions: List[Tuple[float, float]] = []
        for k in distant:
            nk = norms[k]
            if nk > EPS:
                directions.append((pxl[s + k] / nk, pyl[s + k] / nk))
        if not directions:
            continue
        if len(directions) == 1:
            # A single direction's maximum gap is the full circle, which
            # always clears the half-plane gate.
            radius = alpha * v_y / divisor * shrink
            if radius <= EPS:
                continue
            out_x[a - lo] = directions[0][0] * radius
            out_y[a - lo] = directions[0][1] * radius
            continue
        # Inline ``max_angular_gap`` over the atan2 angles: atan2 lands in
        # [-pi, pi], where ``normalize_angle_positive`` reduces to a bare
        # ``+ 2*pi`` for negatives (``math.fmod`` is exact below one
        # period), so the listcomp below is bit-identical to it.
        angles = [atan2(dy, dx) for dx, dy in directions]
        normalized = [t + two_pi if t < 0.0 else t for t in angles]
        order = sorted(range(len(normalized)), key=normalized.__getitem__)
        best_gap = -1.0
        gap_i = gap_j = order[0]
        last = len(order) - 1
        for idx in range(last + 1):
            i2 = order[idx]
            if idx == last:
                j2 = order[0]
                gap = normalized[j2] - normalized[i2] + two_pi
            else:
                j2 = order[idx + 1]
                gap = normalized[j2] - normalized[i2]
            if gap > best_gap:
                best_gap = gap
                gap_i = i2
                gap_j = j2
        if not best_gap > pi_gate:
            # The distant directions do not fit in an open half-plane:
            # the robot stays put (compute_relative returns the origin).
            continue
        radius = alpha * v_y / divisor * shrink
        if radius <= EPS:
            continue
        # extreme_directions(directions) == (j, i) of the max gap's (i, j).
        ix, iy = directions[gap_j]
        jx, jy = directions[gap_i]
        cix, ciy = ix * radius, iy * radius
        cjx, cjy = jx * radius, jy * radius
        out_x[a - lo] = (cix + cjx) / 2.0
        out_y[a - lo] = (ciy + cjy) / 2.0
    out[lo:hi, 0] = out_x
    out[lo:hi, 1] = out_y


def kknps_destinations_all(
    px: np.ndarray,
    py: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    lane_of: np.ndarray,
    lane_consts: Sequence[LaneConsts],
    out: np.ndarray,
) -> None:
    """All activations' local KKNPS destinations, batched over the flat rows.

    Value-identical to :func:`kknps_destination_segment` over ``0..acts``:
    the per-row norms still come from ``math.hypot`` (``np.hypot`` is not
    bit-identical to it everywhere), while everything built on them —
    per-activation maxima (picks, no arithmetic), the distant threshold,
    the unit directions, the radius — uses elementwise ufuncs in the same
    operation order as the scalar core, which numpy evaluates with the
    same IEEE arithmetic.  Only the angular-gap scan (a sort over each
    activation's few distant directions) stays scalar, and activations
    whose distant set is empty take the scalar core verbatim for its
    argmax fallback.
    """
    acts = len(starts)
    rows = len(px)
    if acts == 0:
        return
    if rows == 0:
        return
    counts = ends - starts
    norms_all = np.fromiter(
        map(math.hypot, px.tolist(), py.tolist()), dtype=np.float64, count=rows
    )
    nonempty = counts > 0
    safe_starts = np.minimum(starts, rows - 1)
    v_raw = np.maximum.reduceat(norms_all, safe_starts)
    consts = np.asarray(lane_consts, dtype=np.float64)[lane_of]
    close_fraction = consts[:, 0]
    tol = consts[:, 1]
    # x / 1.0 is exactly x, so the unconditional division matches the
    # scalar core's ``if tol > 0.0`` guard bit for bit.
    v_y = v_raw / (1.0 + tol)
    active = nonempty & (v_y > EPS)
    threshold_eps = close_fraction * v_raw + EPS
    row_act = np.repeat(np.arange(acts, dtype=np.int64), counts)
    distant_mask = norms_all > threshold_eps[row_act]
    distant_count = np.bincount(row_act[distant_mask], minlength=acts)
    valid_mask = distant_mask & (norms_all > EPS)
    valid_rows = np.flatnonzero(valid_mask)
    vcount = np.bincount(row_act[valid_rows], minlength=acts)
    # Same operation order as the scalar ``alpha * v_y / divisor * shrink``.
    radius = consts[:, 2] * v_y / consts[:, 3] * consts[:, 4]
    # Unit directions of the valid distant rows, in the scalar core's
    # enumeration order (ascending row index within each activation).
    ux = px[valid_rows] / norms_all[valid_rows]
    uy = py[valid_rows] / norms_all[valid_rows]
    vstarts = np.zeros(acts + 1, dtype=np.int64)
    np.cumsum(vcount, out=vstarts[1:])
    single = active & (distant_count > 0) & (vcount == 1) & (radius > EPS)
    if single.any():
        first = vstarts[:-1][single]
        out[single, 0] = ux[first] * radius[single]
        out[single, 1] = uy[first] * radius[single]
    fallback = np.flatnonzero(active & (distant_count == 0))
    for a in fallback.tolist():
        # Every distant candidate filtered out: the scalar core promotes
        # the overall-farthest neighbour; reuse it verbatim.
        kknps_destination_segment(
            px, py, starts, ends, lane_of, lane_consts, a, a + 1, out
        )
    multi_mask = active & (vcount >= 2)
    multi = np.flatnonzero(multi_mask)
    if not len(multi):
        return
    pi_gate = math.pi + EPS
    two_pi = 2.0 * math.pi
    # The angular-gap scan, batched.  Per activation the scalar core sorts
    # its directions by normalised angle (a stable sort — lexsort likewise),
    # walks consecutive gaps plus the wrap-around gap last, and keeps the
    # FIRST gap strictly exceeding the running best, i.e. the first
    # occurrence of the maximum in that scan order.  Every step below is a
    # pick or the same left-to-right subtraction, so the selected
    # directions — and the midpoint arithmetic on them — are identical.
    vact = np.repeat(np.arange(acts, dtype=np.int64), vcount)
    m_rows = np.flatnonzero(multi_mask[vact])
    m_act = vact[m_rows]
    angles = np.fromiter(
        map(math.atan2, uy[m_rows].tolist(), ux[m_rows].tolist()),
        dtype=np.float64,
        count=len(m_rows),
    )
    # atan2 lands in [-pi, pi], where ``normalize_angle_positive`` reduces
    # to a bare ``+ 2*pi`` for negatives (``math.fmod`` is exact below one
    # period).
    normalized = np.where(angles < 0.0, angles + two_pi, angles)
    order = np.lexsort((normalized, m_act))
    sn = normalized[order]
    seg_counts = vcount[multi]
    bounds = np.zeros(len(multi) + 1, dtype=np.int64)
    np.cumsum(seg_counts, out=bounds[1:])
    seg_lo = bounds[:-1]
    seg_hi = bounds[1:]
    gaps = np.empty(len(m_rows), dtype=np.float64)
    gaps[:-1] = sn[1:] - sn[:-1]
    gaps[seg_hi - 1] = (sn[seg_lo] - sn[seg_hi - 1]) + two_pi
    seg_of = np.repeat(np.arange(len(multi)), seg_counts)
    best_gap = np.maximum.reduceat(gaps, seg_lo)
    position = np.arange(len(m_rows), dtype=np.int64)
    first_best = np.minimum.reduceat(
        np.where(gaps == best_gap[seg_of], position, len(m_rows)), seg_lo
    )
    chosen = np.flatnonzero((best_gap > pi_gate) & (radius[multi] > EPS))
    if not len(chosen):
        return
    p_i = first_best[chosen]
    p_j = np.where(p_i == seg_hi[chosen] - 1, seg_lo[chosen], p_i + 1)
    rows_sorted = m_rows[order]
    row_i = rows_sorted[p_i]
    row_j = rows_sorted[p_j]
    r = radius[multi[chosen]]
    cix = ux[row_j] * r
    ciy = uy[row_j] * r
    cjx = ux[row_i] * r
    cjy = uy[row_i] * r
    out[multi[chosen], 0] = (cix + cjx) / 2.0
    out[multi[chosen], 1] = (ciy + cjy) / 2.0


def _untrack(handle: shared_memory.SharedMemory) -> None:
    """Detach an *attached* segment from this process's resource tracker.

    Before Python 3.13 attaching registers the segment just like creating
    it, so worker exit would try to unlink blocks the master already
    unlinked (spurious leak warnings at shutdown).  The master is the sole
    owner; workers must not track.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(handle._name, "shared_memory")
    except Exception:
        pass  # tracking internals shifted (3.13+ has track=False instead)


def _worker_main(inbox, outbox) -> None:
    """Fan-out worker: attach the round's shared arrays, decide a slice."""
    while True:
        task = inbox.get()
        if task is None:
            break
        (names, rows, acts, lane_consts, lo, hi) = task
        handles = [shared_memory.SharedMemory(name=name) for name in names]
        for handle in handles:
            _untrack(handle)
        views: List[np.ndarray] = []
        try:
            shapes = [(rows,), (rows,), (acts,), (acts,), (acts,), (acts, 2)]
            dtypes = [np.float64, np.float64, np.int64, np.int64, np.int64, np.float64]
            for handle, shape, dtype in zip(handles, shapes, dtypes):
                views.append(np.ndarray(shape, dtype=dtype, buffer=handle.buf))
            px, py, starts, ends, lane_of, out = views
            kknps_destination_segment(
                px, py, starts, ends, lane_of, lane_consts, lo, hi, out
            )
            outbox.put((lo, hi, None))
        except BaseException as error:  # surface in the master, don't hang it
            outbox.put((lo, hi, error))
        finally:
            del views
            px = py = starts = ends = lane_of = out = None
            for handle in handles:
                handle.close()


class FanoutPool:
    """A persistent pool deciding activation slices over shared memory.

    Workers start lazily on the first :meth:`compute` call and survive
    across rounds (the per-round cost is the shared-memory copy plus one
    queue message per worker).  Always :meth:`close` the pool — the
    replicate engine does so in a ``finally``.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = fanout_auto_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError("fan-out pool needs at least one worker")
        self._processes: List[multiprocessing.Process] = []
        self._inbox: Optional[multiprocessing.Queue] = None
        self._outbox: Optional[multiprocessing.Queue] = None

    def _ensure_started(self) -> None:
        if self._processes:
            return
        self._inbox = multiprocessing.Queue()
        self._outbox = multiprocessing.Queue()
        for _ in range(self.workers):
            process = multiprocessing.Process(
                target=_worker_main, args=(self._inbox, self._outbox), daemon=True
            )
            process.start()
            self._processes.append(process)

    def compute(
        self,
        px: np.ndarray,
        py: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        lane_of: np.ndarray,
        lane_consts: Sequence[LaneConsts],
    ) -> np.ndarray:
        """All activations' local destinations, fanned across the pool."""
        acts = len(starts)
        out = np.zeros((acts, 2), dtype=np.float64)
        if acts == 0:
            return out
        self._ensure_started()
        rows = len(px)
        sources = (
            np.ascontiguousarray(px, dtype=np.float64),
            np.ascontiguousarray(py, dtype=np.float64),
            np.ascontiguousarray(starts, dtype=np.int64),
            np.ascontiguousarray(ends, dtype=np.int64),
            np.ascontiguousarray(lane_of, dtype=np.int64),
            out,
        )
        blocks: List[shared_memory.SharedMemory] = []
        try:
            for source in sources:
                block = shared_memory.SharedMemory(
                    create=True, size=max(1, source.nbytes)
                )
                view = np.ndarray(source.shape, dtype=source.dtype, buffer=block.buf)
                view[...] = source
                del view
                blocks.append(block)
            names = [block.name for block in blocks]
            bounds = np.linspace(0, acts, self.workers + 1).astype(int)
            dispatched = 0
            for w in range(self.workers):
                lo, hi = int(bounds[w]), int(bounds[w + 1])
                if lo == hi:
                    continue
                self._inbox.put((names, rows, acts, tuple(lane_consts), lo, hi))
                dispatched += 1
            for _ in range(dispatched):
                lo, hi, error = self._outbox.get()
                if error is not None:
                    raise error
            shared_out = np.ndarray(
                (acts, 2), dtype=np.float64, buffer=blocks[5].buf
            )
            out[...] = shared_out
            del shared_out
            return out
        finally:
            for block in blocks:
                block.close()
                block.unlink()

    def close(self) -> None:
        """Stop every worker and release the queues."""
        if not self._processes:
            return
        for _ in self._processes:
            self._inbox.put(None)
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
        self._processes = []
        self._inbox = None
        self._outbox = None
