"""The event-driven continuous-time simulator of the OBLOT model.

The simulator realises exactly the semantics the paper's proofs reason
about:

* activations are issued by a scheduler and processed in global
  ``look_time`` order;
* the Look phase is instantaneous: a robot snapshots the positions of all
  robots within the visibility range *at that instant*, including robots
  that are mid-move (their positions are interpolated along their realised
  trajectories);
* the Compute phase runs the algorithm on the snapshot (expressed in a
  private, possibly distorted, coordinate frame) and yields a destination;
* the Move phase translates the robot along a straight line toward the
  destination; the scheduler's progress fraction (clamped to the motion
  model's xi) and the motion-error model determine the realised endpoint.

Cohesion (preservation of the initial visibility edges) and hull-based
congregation measures are sampled at every processed activation.
"""

from __future__ import annotations

import heapq
import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.point import Point, PointLike
from ..geometry.transforms import LocalFrame, random_frame
from ..model.configuration import Configuration
from ..model.errors import MotionModel, PerceptionModel
from ..model.robot import Robot
from ..model.snapshot import build_snapshot
from ..model.types import Activation, ActivationRecord
from ..algorithms.base import ConvergenceAlgorithm
from ..schedulers.base import Scheduler
from .convergence import ConvergenceSummary, summarize
from .metrics import MetricsCollector, MetricsSample
from .recorder import TrajectoryRecorder


@dataclass
class SimulationConfig:
    """Everything about a run that is not the configuration, algorithm or scheduler."""

    visibility_range: float = 1.0
    perception: PerceptionModel = field(default_factory=PerceptionModel.exact)
    motion: MotionModel = field(default_factory=MotionModel.rigid)
    seed: int = 0
    max_activations: int = 5000
    max_time: float = math.inf
    convergence_epsilon: float = 1e-3
    stop_at_convergence: bool = True
    use_random_frames: bool = True
    allow_reflection: bool = True
    reveal_visibility_range: Optional[bool] = None
    k_bound: Optional[int] = None
    multiplicity_detection: bool = False
    record_every: int = 1
    record_trajectories: bool = False
    crashed_robots: tuple = ()

    def __post_init__(self) -> None:
        if self.visibility_range <= 0.0:
            raise ValueError("visibility range must be positive")
        if self.max_activations < 1:
            raise ValueError("max_activations must be at least 1")
        if self.convergence_epsilon <= 0.0:
            raise ValueError("convergence_epsilon must be positive")
        if self.record_every < 1:
            raise ValueError("record_every must be at least 1")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    initial_configuration: Configuration
    final_configuration: Configuration
    metrics: MetricsCollector
    activations_processed: int
    activation_counts: Dict[int, int]
    activation_end_times: Dict[int, List[float]]
    records: List[ActivationRecord]
    converged: bool
    convergence_time: Optional[float]
    cohesion_maintained: bool
    final_time: float
    wall_time_seconds: float
    trajectories: Optional[TrajectoryRecorder] = None

    def summary(self, epsilon: float = 1e-3) -> ConvergenceSummary:
        """Convergence summary of the metric history against ``epsilon``."""
        return summarize(self.metrics.samples, epsilon)

    @property
    def final_hull_diameter(self) -> float:
        """Hull diameter of the final configuration."""
        return self.final_configuration.hull_diameter()

    @property
    def initial_hull_diameter(self) -> float:
        """Hull diameter of the initial configuration."""
        return self.initial_configuration.hull_diameter()


class Simulator:
    """Run one algorithm under one scheduler from one initial configuration."""

    def __init__(
        self,
        initial_positions: Sequence[PointLike],
        algorithm: ConvergenceAlgorithm,
        scheduler: Scheduler,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.algorithm = algorithm
        self.scheduler = scheduler
        self.rng = np.random.default_rng(self.config.seed)
        self.robots: List[Robot] = [
            Robot(robot_id=i, position=Point.of(p)) for i, p in enumerate(initial_positions)
        ]
        for crashed_id in self.config.crashed_robots:
            self.robots[crashed_id].crash()
        self.initial_configuration = Configuration.of(
            [r.position for r in self.robots], self.config.visibility_range
        )
        self._time = 0.0
        self._pending: List[tuple] = []
        self._sequence = 0

    # -- EngineView protocol --------------------------------------------------------
    @property
    def time(self) -> float:
        """Current global simulation time."""
        return self._time

    @property
    def n_robots(self) -> int:
        """Number of robots in the run."""
        return len(self.robots)

    def positions(self, at_time: Optional[float] = None) -> List[Point]:
        """Positions of all robots at ``at_time`` (default: the current time)."""
        t = self._time if at_time is None else at_time
        return [r.position_at(t) for r in self.robots]

    # -- internals ---------------------------------------------------------------------
    def _push(self, activation: Activation) -> None:
        heapq.heappush(self._pending, (activation.look_time, self._sequence, activation))
        self._sequence += 1

    def _refill(self) -> bool:
        batch = self.scheduler.next_batch(self)
        if not batch:
            return False
        for activation in batch:
            self._push(activation)
        return True

    def _finalize_completed_moves(self, now: float) -> None:
        for robot in self.robots:
            if robot.is_motile() and robot.move_end_time <= now:
                robot.finish_move()

    def _reveal_range(self) -> bool:
        if self.config.reveal_visibility_range is not None:
            return self.config.reveal_visibility_range
        return self.algorithm.requires_visibility_range

    def _frame_for_look(self) -> Optional[LocalFrame]:
        if not self.config.use_random_frames:
            return None
        return random_frame(self.rng, allow_reflection=self.config.allow_reflection)

    def _effective_range(self) -> float:
        if self.algorithm.assumes_unlimited_visibility:
            return math.inf
        return self.config.visibility_range

    # -- main loop -----------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        started = _time.perf_counter()
        cfg = self.config
        metrics = MetricsCollector(visibility_range=cfg.visibility_range)
        metrics.bind_initial([r.position for r in self.robots])
        recorder = TrajectoryRecorder() if cfg.record_trajectories else None
        if recorder is not None:
            recorder.record_all(0.0, [r.position for r in self.robots])

        self.scheduler.reset(self.n_robots, self.rng)
        records: List[ActivationRecord] = []
        activation_end_times: Dict[int, List[float]] = {r.robot_id: [] for r in self.robots}
        processed = 0
        popped = 0
        converged_time: Optional[float] = None

        metrics.observe(0.0, self.positions(0.0), 0)

        while processed < cfg.max_activations and popped < 100 * cfg.max_activations:
            if not self._pending and not self._refill():
                break
            look_time, _, activation = heapq.heappop(self._pending)
            popped += 1
            if look_time > cfg.max_time:
                break
            self._time = look_time
            robot = self.robots[activation.robot_id]
            self._finalize_completed_moves(look_time)
            if robot.crashed:
                continue
            if robot.is_motile():
                # A scheduler bug: a robot was activated before its previous
                # move ended.  Fail loudly rather than silently corrupting the run.
                raise RuntimeError(
                    f"robot {robot.robot_id} activated at t={look_time} before its move ended "
                    f"at t={robot.move_end_time}"
                )

            robot.begin_activation(look_time)
            other_positions = [
                r.position_at(look_time) for r in self.robots if r.robot_id != robot.robot_id
            ]
            frame = self._frame_for_look()
            snapshot = build_snapshot(
                robot.position,
                other_positions,
                self._effective_range(),
                frame=frame,
                perception=cfg.perception,
                rng=self.rng,
                reveal_range=self._reveal_range(),
                k_bound=cfg.k_bound,
                multiplicity_detection=cfg.multiplicity_detection,
                time=look_time,
                robot_id=robot.robot_id,
            )
            destination_local = self.algorithm.compute(snapshot)
            displacement = (
                frame.to_global(destination_local) if frame is not None else Point.of(destination_local)
            )
            target_global = robot.position + displacement

            move_start = activation.move_start_time
            move_end = activation.end_time
            realized = cfg.motion.realize(
                robot.position, target_global, activation.progress_fraction, self.rng
            )
            origin = robot.position
            robot.begin_move(origin, realized, move_start, move_end)
            activation_end_times[robot.robot_id].append(move_end)

            records.append(
                ActivationRecord(
                    activation=activation,
                    origin=origin,
                    target=target_global,
                    destination=realized,
                    neighbours_seen=snapshot.neighbour_count(),
                    moved_distance=origin.distance_to(realized),
                )
            )
            processed += 1

            if processed % cfg.record_every == 0:
                sample = metrics.observe(look_time, self.positions(look_time), processed)
                if recorder is not None:
                    recorder.record_all(look_time, self.positions(look_time))
                if converged_time is None and sample.hull_diameter <= cfg.convergence_epsilon:
                    converged_time = look_time
                    if cfg.stop_at_convergence:
                        break

        # Let every in-flight move finish, then take the final measurement.
        final_time = max(
            [self._time] + [r.move_end_time for r in self.robots if r.is_motile()]
        )
        self._time = final_time
        self._finalize_completed_moves(final_time + 1e-12)
        for robot in self.robots:
            if robot.is_motile():
                robot.finish_move()
        final_positions = [r.position for r in self.robots]
        final_sample = metrics.observe(final_time, final_positions, processed)
        if recorder is not None:
            recorder.record_all(final_time, final_positions)
        if converged_time is None and final_sample.hull_diameter <= cfg.convergence_epsilon:
            converged_time = final_time

        final_configuration = Configuration.of(final_positions, cfg.visibility_range)
        result = SimulationResult(
            initial_configuration=self.initial_configuration,
            final_configuration=final_configuration,
            metrics=metrics,
            activations_processed=processed,
            activation_counts={r.robot_id: r.activation_count for r in self.robots},
            activation_end_times=activation_end_times,
            records=records,
            converged=converged_time is not None,
            convergence_time=converged_time,
            cohesion_maintained=not metrics.cohesion_ever_violated,
            final_time=final_time,
            wall_time_seconds=_time.perf_counter() - started,
            trajectories=recorder,
        )
        return result


def run_simulation(
    initial_positions: Sequence[PointLike],
    algorithm: ConvergenceAlgorithm,
    scheduler: Scheduler,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(initial_positions, algorithm, scheduler, config).run()
