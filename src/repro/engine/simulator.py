"""The planar front end of the continuous-time simulation kernel.

The event-driven activation pipeline itself — scheduler batches consumed
in global ``look_time`` order, instantaneous Looks over interpolated
kinematic state, phase transitions, spatial-index maintenance, metrics
cadence and stopping rules — lives dimension-generically in
:mod:`repro.engine.kernel`.  This module supplies the planar pieces the
kernel leaves open, realising exactly the semantics the paper's proofs
reason about:

* the Look phase snapshots the positions of all robots within the
  visibility range *at that instant* (robots mid-move are interpolated
  along their realised trajectories) and expresses them in a private,
  possibly distorted, coordinate frame (:func:`build_snapshot`);
* the Compute phase runs the algorithm on the snapshot and yields a
  destination;
* the Move phase translates the robot along a straight line toward the
  destination; the scheduler's progress fraction (clamped to the motion
  model's xi) and the motion-error model determine the realised endpoint.

Cohesion (preservation of the initial visibility edges) and hull-based
congregation measures are sampled at every processed activation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.point import Point, PointLike
from ..geometry.tolerances import EPS
from ..geometry.transforms import LocalFrame, random_frame
from ..model.configuration import Configuration
from ..model.errors import MotionModel, PerceptionModel
from ..model.robot import Robot
from ..model.snapshot import _collapse_coincident_array, build_snapshot
from ..model.types import Activation, ActivationRecord
from ..algorithms.base import ConvergenceAlgorithm
from ..algorithms.kknps import KKNPSAlgorithm
from ..schedulers.base import Scheduler
from .convergence import ConvergenceSummary, summarize
from .decide_batch import collapse_hazard_lanes, perceive_flat
from .kernel import ContinuousKernel, MoveDecision
from .metrics import MetricsCollector
from .recorder import TrajectoryRecorder
from .state import EngineState

#: Cap on the flat candidate-row count a dense (no-shard) whole-round
#: decide may gather: ``activations * (n - 1)`` rows beyond this would
#: allocate more than the round saves, so such rounds stay per-robot.
_DENSE_BATCH_CAP = 4_000_000


@dataclass
class SimulationConfig:
    """Everything about a run that is not the configuration, algorithm or scheduler."""

    visibility_range: float = 1.0
    perception: PerceptionModel = field(default_factory=PerceptionModel.exact)
    motion: MotionModel = field(default_factory=MotionModel.rigid)
    seed: int = 0
    max_activations: int = 5000
    max_time: float = math.inf
    convergence_epsilon: float = 1e-3
    stop_at_convergence: bool = True
    use_random_frames: bool = True
    allow_reflection: bool = True
    reveal_visibility_range: Optional[bool] = None
    k_bound: Optional[int] = None
    multiplicity_detection: bool = False
    record_every: int = 1
    record_trajectories: bool = False
    crashed_robots: tuple = ()
    engine_mode: str = "array"
    spatial_index: Optional[bool] = None
    #: Batched round fast path: None auto-enables it for round-structured
    #: schedulers on the array engine, True forces the attempt (each batch
    #: is still validated), False always uses the per-activation path.
    round_batching: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.visibility_range <= 0.0:
            raise ValueError("visibility range must be positive")
        if self.max_activations < 1:
            raise ValueError("max_activations must be at least 1")
        if self.convergence_epsilon <= 0.0:
            raise ValueError("convergence_epsilon must be positive")
        if self.record_every < 1:
            raise ValueError("record_every must be at least 1")
        if self.engine_mode not in ("array", "object"):
            raise ValueError(f"unknown engine mode {self.engine_mode!r}")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    initial_configuration: Configuration
    final_configuration: Configuration
    metrics: MetricsCollector
    activations_processed: int
    activation_counts: Dict[int, int]
    activation_end_times: Dict[int, List[float]]
    records: List[ActivationRecord]
    converged: bool
    convergence_time: Optional[float]
    cohesion_maintained: bool
    final_time: float
    wall_time_seconds: float
    trajectories: Optional[TrajectoryRecorder] = None

    def summary(self, epsilon: float = 1e-3) -> ConvergenceSummary:
        """Convergence summary of the metric history against ``epsilon``."""
        return summarize(self.metrics.samples, epsilon)

    @property
    def final_hull_diameter(self) -> float:
        """Hull diameter of the final configuration."""
        return self.final_configuration.hull_diameter()

    @property
    def initial_hull_diameter(self) -> float:
        """Hull diameter of the initial configuration."""
        return self.initial_configuration.hull_diameter()


class Simulator(ContinuousKernel):
    """Run one algorithm under one scheduler from one initial configuration.

    A thin planar specialisation of :class:`ContinuousKernel`: the hooks
    below reproduce the 2D Look/Compute/Move semantics (snapshots via
    :func:`build_snapshot`, random 2D local frames, Point-typed records),
    while the shared kernel owns the loop itself.
    """

    def __init__(
        self,
        initial_positions: Sequence[PointLike],
        algorithm: ConvergenceAlgorithm,
        scheduler: Scheduler,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        state = EngineState(initial_positions)
        super().__init__(state, algorithm, scheduler, config or SimulationConfig())
        self.robots: List[Robot] = state.robots
        # Snapshot the initial rows now; the Configuration itself is built
        # on first access.  Replicate bundles of a seed-independent
        # workload share one instance across lanes instead of validating
        # n identical points per lane.
        self._initial_position_rows = state.arrays.position.copy()
        self._initial_configuration: Optional[Configuration] = None
        self._batch_decide_ok: Optional[bool] = None

    @property
    def initial_configuration(self) -> Configuration:
        if self._initial_configuration is None:
            self._initial_configuration = Configuration.of(
                [Point(px, py) for px, py in self._initial_position_rows.tolist()],
                self.config.visibility_range,
            )
        return self._initial_configuration

    @initial_configuration.setter
    def initial_configuration(self, value: Configuration) -> None:
        self._initial_configuration = value

    def positions(self, at_time: Optional[float] = None) -> List[Point]:
        """Positions of all robots at ``at_time`` (default: the current time)."""
        t = self._time if at_time is None else at_time
        return self._state.positions_at_points(t)

    # -- kernel hooks, planar implementations --------------------------------------
    def _look_positions(self, robot_id: int, look_time: float):
        """Candidate Look positions; adds the retained per-Point object path."""
        if self.config.engine_mode == "object":
            return (
                [r.position_at(look_time) for r in self.robots if r.robot_id != robot_id],
                None,
            )
        return super()._look_positions(robot_id, look_time)

    def _reveal_range(self) -> bool:
        if self.config.reveal_visibility_range is not None:
            return self.config.reveal_visibility_range
        return self.algorithm.requires_visibility_range

    def _frame_for_look(self) -> Optional[LocalFrame]:
        if not self.config.use_random_frames:
            return None
        return random_frame(self.rng, allow_reflection=self.config.allow_reflection)

    def _make_metrics(self) -> MetricsCollector:
        """The metrics collector for this run (a seam for benchmark baselines)."""
        return MetricsCollector(visibility_range=self.config.visibility_range)

    def _bind_metrics(self, metrics) -> None:
        metrics.bind_initial([r.position for r in self.robots])

    def _make_recorder(self) -> Optional[TrajectoryRecorder]:
        return TrajectoryRecorder() if self.config.record_trajectories else None

    def _sampled_positions(self, look_time: float, look_all_positions):
        if look_all_positions is not None:
            return look_all_positions
        if self.config.engine_mode == "array":
            return self.positions_array(look_time)
        return self.positions(look_time)

    def _final_observed_positions(self):
        return [r.position for r in self.robots]

    def _decide_move(
        self,
        robot_id: int,
        look_time: float,
        other_positions,
        activation: Activation,
    ) -> MoveDecision:
        cfg = self.config
        robot = self.robots[robot_id]
        frame = self._frame_for_look()
        snapshot = build_snapshot(
            robot.position,
            other_positions,
            self._effective_range(),
            frame=frame,
            perception=cfg.perception,
            rng=self.rng,
            reveal_range=self._reveal_range(),
            k_bound=cfg.k_bound,
            multiplicity_detection=cfg.multiplicity_detection,
            time=look_time,
            robot_id=robot.robot_id,
            method=cfg.engine_mode,
        )
        destination_local = self.algorithm.compute(snapshot)
        displacement = (
            frame.to_global(destination_local) if frame is not None else Point.of(destination_local)
        )
        target_global = robot.position + displacement
        realized = cfg.motion.realize(
            robot.position, target_global, activation.progress_fraction, self.rng
        )
        return MoveDecision(
            target=np.array((target_global.x, target_global.y), dtype=float),
            realized=np.array((realized.x, realized.y), dtype=float),
            neighbours_seen=snapshot.neighbour_count(),
            payload=(target_global, realized),
        )

    def _round_decider(self, look_time: float, committed: np.ndarray, shard):
        """Snapshot-free decide for one validated round (the 2D fast tier).

        Replicates the :func:`build_snapshot` array pipeline inline on the
        round's committed rows — same subtraction, same ``np.hypot``
        filter, same coincidence collapse, frame, perception and motion
        calls in the same RNG order — but skips the Snapshot object and
        hands the perceived array straight to the algorithm's
        ``compute_relative`` float core.  Anything the fast tier cannot
        replicate exactly (object mode, multiplicity detection, an
        algorithm without ``compute_relative``) falls back to the Tier A
        decider, which routes through :meth:`_decide_move` unchanged.
        """
        cfg = self.config
        algorithm = self.algorithm
        if (
            cfg.engine_mode != "array"
            or cfg.multiplicity_detection
            or not hasattr(algorithm, "compute_relative")
        ):
            return super()._round_decider(look_time, committed, shard)
        perception = cfg.perception
        motion = cfg.motion
        rng = self.rng
        limit = self._effective_range() + EPS
        reveal = self._effective_range() if self._reveal_range() else None
        empty = np.zeros((0, 2), dtype=float)

        def decide(robot_id: int, activation: Activation) -> MoveDecision:
            if shard is not None:
                arr = committed[shard.candidates(robot_id)]
            else:
                arr = np.delete(committed, robot_id, axis=0)
            frame = self._frame_for_look()
            row = committed[robot_id]
            if len(arr):
                observer = np.array((float(row[0]), float(row[1])), dtype=float)
                relative = arr - observer
                distance = np.hypot(relative[:, 0], relative[:, 1])
                keep = (distance > 1e-12) & (distance <= limit)
                visible = relative[keep]
            else:
                visible = empty
            collapsed, _ = _collapse_coincident_array(visible, 1e-12)
            local = frame.to_local_array(collapsed) if frame is not None else collapsed
            perceived = perception.perceive_array(local, rng)
            destination_local = algorithm.compute_relative(
                perceived, visibility_range=reveal
            )
            displacement = (
                frame.to_global(destination_local)
                if frame is not None
                else Point.of(destination_local)
            )
            position = Point(float(row[0]), float(row[1]))
            target_global = position + displacement
            realized = motion.realize(
                position, target_global, activation.progress_fraction, rng
            )
            return MoveDecision(
                target=np.array((target_global.x, target_global.y), dtype=float),
                realized=np.array((realized.x, realized.y), dtype=float),
                neighbours_seen=len(collapsed),
                payload=(target_global, realized),
            )

        return decide

    # -- whole-round batched decide ---------------------------------------------------
    def _batch_decide_eligible(self) -> bool:
        """Whether this run's *configuration* admits the whole-round decide.

        Mirrors :func:`repro.engine.replicate.replicate_vector_eligible`
        minus the finite-range requirement (the dense gather handles an
        unlimited range, size-capped per round): the batch is bit-identical
        only when the round draws no RNG outside the private frames and
        the algorithm core is the KKNPS scalar transcription.
        """
        cfg = self.config
        if cfg.engine_mode != "array" or cfg.multiplicity_detection:
            return False
        if type(self.algorithm) is not KKNPSAlgorithm:
            return False
        perception = cfg.perception
        if perception.distance_error > 0.0 and perception.bias == "random":
            return False
        if cfg.motion.max_deviation(1.0) > 0.0:
            return False
        return True

    def _round_batch_ready(self, committed: np.ndarray, shard, entries) -> bool:
        ok = self._batch_decide_ok
        if ok is None:
            ok = self._batch_decide_ok = self._batch_decide_eligible()
        if not ok:
            return False
        n = self.n_robots
        if shard is None and len(entries) * max(0, n - 1) > _DENSE_BATCH_CAP:
            return False
        # A committed pair inside the collapse guard could make the serial
        # tier's coincidence collapse a non-identity; such (vanishingly
        # rare) rounds keep the per-robot path, which is bit-identical.
        return not bool(collapse_hazard_lanes(committed, 1, n)[0])

    def _round_decide_batch(
        self, look_time: float, committed: np.ndarray, shard, executed
    ) -> List[MoveDecision]:
        """One round's decides as a single flat pipeline (the 2D batch tier).

        A single-lane transcription of the replicate engine's vectorized
        Look pipeline (:func:`repro.engine.replicate._advance_vector_group`)
        over this round's executed activations: candidate gather through
        the shard's block-local arrays (or a dense ``np.delete`` gather),
        one relative-offset/distance-filter pass, frames pre-drawn per
        activation in the serial order, draw-free flat perception, one
        :meth:`KKNPSAlgorithm.compute_array_rounds` call, and the
        elementwise frame-back/motion arithmetic — every stage in the
        serial fast tier's operation order, so each decision is
        bit-identical to :meth:`_round_decider`'s per-robot result.
        """
        acts = len(executed)
        if acts == 0:
            return []
        cfg = self.config
        n = self.n_robots
        fids = np.fromiter(
            (a.robot_id for a in executed), dtype=np.intp, count=acts
        )
        if shard is not None:
            shard.warm_candidates()
            slot_list = shard._slot_of_robot[fids].tolist()
            cache = shard._candidate_cache
            candidate_arrays = [cache[slot] for slot in slot_list]
        else:
            base = np.arange(n, dtype=np.intp)
            candidate_arrays = [np.delete(base, rid) for rid in fids.tolist()]
        counts = np.fromiter(
            (c.size for c in candidate_arrays), dtype=np.int64, count=acts
        )
        segment = np.zeros(acts + 1, dtype=np.int64)
        np.cumsum(counts, out=segment[1:])
        candidate_ids = (
            np.concatenate(candidate_arrays)
            if candidate_arrays
            else np.empty(0, dtype=np.intp)
        )
        flat_x = np.ascontiguousarray(committed[:, 0])
        flat_y = np.ascontiguousarray(committed[:, 1])
        # Column-wise mirror of ``arr - observer`` on the serial tier —
        # elementwise identical, half the gather traffic.
        rel_x = flat_x[candidate_ids] - np.repeat(flat_x[fids], counts)
        rel_y = flat_y[candidate_ids] - np.repeat(flat_y[fids], counts)
        distance = np.hypot(rel_x, rel_y)
        limit = self._effective_range() + EPS
        keep = (distance > 1e-12) & (distance <= limit)
        keep_cumulative = np.zeros(len(keep) + 1, dtype=np.int64)
        np.cumsum(keep, out=keep_cumulative[1:])
        vis_counts = keep_cumulative[segment[1:]] - keep_cumulative[segment[:-1]]
        vis_segment = np.zeros(acts + 1, dtype=np.int64)
        np.cumsum(vis_counts, out=vis_segment[1:])
        vx = rel_x[keep]
        vy = rel_y[keep]

        # Private frames: pre-drawn in activation order (the serial tier
        # draws the frame before its empty-candidate check, so every
        # executed activation draws, visible neighbours or not).
        use_frames = cfg.use_random_frames
        if use_frames:
            rng = self.rng
            allow_reflection = cfg.allow_reflection
            rotations = [0.0] * acts
            reflect_l = [False] * acts
            cos_neg = np.empty(acts, dtype=np.float64)
            sin_neg = np.empty(acts, dtype=np.float64)
            cos_pos = np.empty(acts, dtype=np.float64)
            sin_pos = np.empty(acts, dtype=np.float64)
            for a in range(acts):
                rotation = float(rng.uniform(0.0, 2.0 * math.pi))
                reflected = bool(rng.integers(0, 2)) if allow_reflection else False
                rotations[a] = rotation
                reflect_l[a] = reflected
                cos_neg[a] = math.cos(-rotation)
                sin_neg[a] = math.sin(-rotation)
                cos_pos[a] = math.cos(rotation)
                sin_pos[a] = math.sin(rotation)
            reflections = np.asarray(reflect_l, dtype=bool)
            row_cos = np.repeat(cos_neg, vis_counts)
            row_sin = np.repeat(sin_neg, vis_counts)
            local_x = row_cos * vx - row_sin * vy
            local_y = row_sin * vx + row_cos * vy
            local_y = np.where(np.repeat(reflections, vis_counts), -local_y, local_y)
        else:
            local_x, local_y = vx, vy

        perceived_x, perceived_y = perceive_flat(cfg.perception, local_x, local_y)
        destinations = self.algorithm.compute_array_rounds(
            perceived_x, perceived_y, vis_segment[:-1], vis_segment[1:]
        )

        # Frame-back and motion, elementwise in the scalar operation order.
        ldx = np.ascontiguousarray(destinations[:, 0])
        if use_frames:
            ldy = np.where(reflections, -destinations[:, 1], destinations[:, 1])
            # LocalFrame.to_global at unit scale / zero origin, term-for-term
            # (the 0.0 additions normalise -0.0 exactly as Point.rotated does).
            global_dx = (0.0 + cos_pos * ldx - sin_pos * ldy) + 0.0
            global_dy = (0.0 + sin_pos * ldx + cos_pos * ldy) + 0.0
        else:
            global_dx = ldx
            global_dy = np.ascontiguousarray(destinations[:, 1])
        origin_x = flat_x[fids]
        origin_y = flat_y[fids]
        target_x = origin_x + global_dx
        target_y = origin_y + global_dy
        planned = np.fromiter(
            map(
                math.hypot,
                (origin_x - target_x).tolist(),
                (origin_y - target_y).tolist(),
            ),
            dtype=np.float64,
            count=acts,
        )
        # MotionModel.realize with zero deviation, term-for-term.
        progress = np.fromiter(
            (a.progress_fraction for a in executed), dtype=np.float64, count=acts
        )
        fraction = np.minimum(1.0, np.maximum(cfg.motion.xi, progress))
        short = planned <= EPS
        realized_x = np.where(
            short, origin_x, origin_x + (target_x - origin_x) * fraction
        )
        realized_y = np.where(
            short, origin_y, origin_y + (target_y - origin_y) * fraction
        )
        vis_l = vis_counts.tolist()
        tx_l = target_x.tolist()
        ty_l = target_y.tolist()
        rx_l = realized_x.tolist()
        ry_l = realized_y.tolist()
        return [
            MoveDecision(
                target=np.array((tx_l[a], ty_l[a]), dtype=float),
                realized=np.array((rx_l[a], ry_l[a]), dtype=float),
                neighbours_seen=vis_l[a],
                payload=(Point(tx_l[a], ty_l[a]), Point(rx_l[a], ry_l[a])),
            )
            for a in range(acts)
        ]

    def _make_record(
        self, activation: Activation, origin_row: np.ndarray, decision: MoveDecision
    ) -> Optional[ActivationRecord]:
        origin = Point(float(origin_row[0]), float(origin_row[1]))
        target_global, realized = decision.payload
        return ActivationRecord(
            activation=activation,
            origin=origin,
            target=target_global,
            destination=realized,
            neighbours_seen=decision.neighbours_seen,
            moved_distance=origin.distance_to(realized),
        )

    # -- main loop -----------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        outcome = self.run_kernel()
        cfg = self.config
        final_configuration = Configuration.of(
            [r.position for r in self.robots], cfg.visibility_range
        )
        return SimulationResult(
            initial_configuration=self.initial_configuration,
            final_configuration=final_configuration,
            metrics=outcome.metrics,
            activations_processed=outcome.processed,
            activation_counts=self.activation_counts(),
            activation_end_times=outcome.activation_end_times,
            records=outcome.records,
            converged=outcome.converged_time is not None,
            convergence_time=outcome.converged_time,
            cohesion_maintained=not outcome.metrics.cohesion_ever_violated,
            final_time=outcome.final_time,
            wall_time_seconds=outcome.wall_time_seconds,
            trajectories=outcome.recorder,
        )


def run_simulation(
    initial_positions: Sequence[PointLike],
    algorithm: ConvergenceAlgorithm,
    scheduler: Scheduler,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(initial_positions, algorithm, scheduler, config).run()
