"""The event-driven continuous-time simulator of the OBLOT model.

The simulator realises exactly the semantics the paper's proofs reason
about:

* activations are issued by a scheduler and processed in global
  ``look_time`` order;
* the Look phase is instantaneous: a robot snapshots the positions of all
  robots within the visibility range *at that instant*, including robots
  that are mid-move (their positions are interpolated along their realised
  trajectories);
* the Compute phase runs the algorithm on the snapshot (expressed in a
  private, possibly distorted, coordinate frame) and yields a destination;
* the Move phase translates the robot along a straight line toward the
  destination; the scheduler's progress fraction (clamped to the motion
  model's xi) and the motion-error model determine the realised endpoint.

Cohesion (preservation of the initial visibility edges) and hull-based
congregation measures are sampled at every processed activation.
"""

from __future__ import annotations

import heapq
import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.point import Point, PointLike
from ..geometry.transforms import LocalFrame, random_frame
from ..model.configuration import Configuration
from ..model.errors import MotionModel, PerceptionModel
from ..model.robot import Robot
from ..model.snapshot import build_snapshot
from ..model.types import Activation, ActivationRecord
from ..algorithms.base import ConvergenceAlgorithm
from ..schedulers.base import Scheduler
from .convergence import ConvergenceSummary, summarize
from .metrics import MetricsCollector, MetricsSample
from .recorder import TrajectoryRecorder
from .spatial_index import GRID_MIN_ROBOTS, UniformGridIndex
from .state import EngineState


@dataclass
class SimulationConfig:
    """Everything about a run that is not the configuration, algorithm or scheduler."""

    visibility_range: float = 1.0
    perception: PerceptionModel = field(default_factory=PerceptionModel.exact)
    motion: MotionModel = field(default_factory=MotionModel.rigid)
    seed: int = 0
    max_activations: int = 5000
    max_time: float = math.inf
    convergence_epsilon: float = 1e-3
    stop_at_convergence: bool = True
    use_random_frames: bool = True
    allow_reflection: bool = True
    reveal_visibility_range: Optional[bool] = None
    k_bound: Optional[int] = None
    multiplicity_detection: bool = False
    record_every: int = 1
    record_trajectories: bool = False
    crashed_robots: tuple = ()
    engine_mode: str = "array"
    spatial_index: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.visibility_range <= 0.0:
            raise ValueError("visibility range must be positive")
        if self.max_activations < 1:
            raise ValueError("max_activations must be at least 1")
        if self.convergence_epsilon <= 0.0:
            raise ValueError("convergence_epsilon must be positive")
        if self.record_every < 1:
            raise ValueError("record_every must be at least 1")
        if self.engine_mode not in ("array", "object"):
            raise ValueError(f"unknown engine mode {self.engine_mode!r}")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    initial_configuration: Configuration
    final_configuration: Configuration
    metrics: MetricsCollector
    activations_processed: int
    activation_counts: Dict[int, int]
    activation_end_times: Dict[int, List[float]]
    records: List[ActivationRecord]
    converged: bool
    convergence_time: Optional[float]
    cohesion_maintained: bool
    final_time: float
    wall_time_seconds: float
    trajectories: Optional[TrajectoryRecorder] = None

    def summary(self, epsilon: float = 1e-3) -> ConvergenceSummary:
        """Convergence summary of the metric history against ``epsilon``."""
        return summarize(self.metrics.samples, epsilon)

    @property
    def final_hull_diameter(self) -> float:
        """Hull diameter of the final configuration."""
        return self.final_configuration.hull_diameter()

    @property
    def initial_hull_diameter(self) -> float:
        """Hull diameter of the initial configuration."""
        return self.initial_configuration.hull_diameter()


class Simulator:
    """Run one algorithm under one scheduler from one initial configuration."""

    def __init__(
        self,
        initial_positions: Sequence[PointLike],
        algorithm: ConvergenceAlgorithm,
        scheduler: Scheduler,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.algorithm = algorithm
        self.scheduler = scheduler
        self.rng = np.random.default_rng(self.config.seed)
        self._state = EngineState(initial_positions)
        self.robots: List[Robot] = self._state.robots
        for crashed_id in self.config.crashed_robots:
            self.robots[crashed_id].crash()
        self.initial_configuration = Configuration.of(
            [r.position for r in self.robots], self.config.visibility_range
        )
        self._time = 0.0
        self._pending: List[tuple] = []
        self._sequence = 0
        self._grid = self._build_grid()

    # -- EngineView protocol --------------------------------------------------------
    @property
    def time(self) -> float:
        """Current global simulation time."""
        return self._time

    @property
    def n_robots(self) -> int:
        """Number of robots in the run."""
        return len(self.robots)

    def positions(self, at_time: Optional[float] = None) -> List[Point]:
        """Positions of all robots at ``at_time`` (default: the current time)."""
        t = self._time if at_time is None else at_time
        return self._state.positions_at_points(t)

    def positions_array(self, at_time: Optional[float] = None) -> np.ndarray:
        """Positions of all robots at ``at_time`` as an ``(n, 2)`` float array.

        The vectorized form of :meth:`positions`: all in-flight moves are
        interpolated in one numpy expression.
        """
        t = self._time if at_time is None else at_time
        return self._state.positions_at(t)

    # -- internals ---------------------------------------------------------------------
    def _build_grid(self) -> Optional[UniformGridIndex]:
        """The spatial hash index for this run, or None for the dense path.

        Auto-enabled (``config.spatial_index is None``) only when the
        array engine runs a finite visibility range over a swarm big
        enough for the bookkeeping to pay off; ``spatial_index=False``
        always forces the dense path and ``True`` forces the grid
        whenever the range is finite.  The object reference path never
        queries the grid, so it is never built there.
        """
        cfg = self.config
        if cfg.engine_mode != "array":
            return None
        effective = self._effective_range()
        feasible = math.isfinite(effective) and effective > 0.0
        if cfg.spatial_index is not None:
            enabled = cfg.spatial_index and feasible
        else:
            enabled = feasible and self.n_robots >= GRID_MIN_ROBOTS
        if not enabled:
            return None
        grid = UniformGridIndex(effective)
        committed = self._state.committed_positions()
        for i in range(self.n_robots):
            grid.settle(i, committed[i, 0], committed[i, 1])
        return grid

    def _push(self, activation: Activation) -> None:
        heapq.heappush(self._pending, (activation.look_time, self._sequence, activation))
        self._sequence += 1

    def _refill(self) -> bool:
        batch = self.scheduler.next_batch(self)
        if not batch:
            return False
        for activation in batch:
            self._push(activation)
        return True

    def _finalize_completed_moves(self, now: float) -> None:
        completed = self._state.completed_movers(now)
        if len(completed) == 0:
            return
        grid = self._grid
        committed = self._state.committed_positions()
        for i in completed:
            self.robots[i].finish_move()
            if grid is not None:
                grid.settle(int(i), committed[i, 0], committed[i, 1])

    def _begin_move(
        self, robot: Robot, origin: Point, destination: Point, start: float, end: float
    ) -> None:
        robot.begin_move(origin, destination, start, end)
        if self._grid is not None:
            self._grid.begin_move(
                robot.robot_id, origin.x, origin.y, destination.x, destination.y
            )

    def _look_positions(self, robot: Robot, look_time: float):
        """What the observing robot can be shown: candidate positions for its Look.

        On the array path this is an ``(m, 2)`` array of interpolated
        positions — all other robots on the dense path, only the robots in
        the observer's 3x3 grid neighbourhood when the spatial index is
        active (an exact superset of the visible set; the snapshot's
        distance filter is unchanged).  On the object path it is the
        seed's per-Point list.

        Returns ``(others, all_positions)`` where ``all_positions`` is the
        full ``(n, 2)`` interpolation when the dense path computed one
        (reused for the metrics sample of the same instant), else None.
        """
        rid = robot.robot_id
        if self.config.engine_mode == "object":
            return (
                [r.position_at(look_time) for r in self.robots if r.robot_id != rid],
                None,
            )
        if self._grid is not None:
            observer = self._state.committed_positions()[rid]
            candidates = self._grid.candidates(observer[0], observer[1], exclude=rid)
            return self._state.positions_at(look_time, candidates), None
        all_positions = self._state.positions_at(look_time)
        return np.delete(all_positions, rid, axis=0), all_positions

    def _reveal_range(self) -> bool:
        if self.config.reveal_visibility_range is not None:
            return self.config.reveal_visibility_range
        return self.algorithm.requires_visibility_range

    def _frame_for_look(self) -> Optional[LocalFrame]:
        if not self.config.use_random_frames:
            return None
        return random_frame(self.rng, allow_reflection=self.config.allow_reflection)

    def _effective_range(self) -> float:
        if self.algorithm.assumes_unlimited_visibility:
            return math.inf
        return self.config.visibility_range

    def _make_metrics(self) -> MetricsCollector:
        """The metrics collector for this run (a seam for benchmark baselines)."""
        return MetricsCollector(visibility_range=self.config.visibility_range)

    # -- main loop -----------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        started = _time.perf_counter()
        cfg = self.config
        metrics = self._make_metrics()
        metrics.bind_initial([r.position for r in self.robots])
        recorder = TrajectoryRecorder() if cfg.record_trajectories else None
        if recorder is not None:
            recorder.record_all(0.0, [r.position for r in self.robots])

        self.scheduler.reset(self.n_robots, self.rng)
        records: List[ActivationRecord] = []
        activation_end_times: Dict[int, List[float]] = {r.robot_id: [] for r in self.robots}
        processed = 0
        popped = 0
        converged_time: Optional[float] = None

        metrics.observe(0.0, self.positions(0.0), 0)

        while processed < cfg.max_activations and popped < 100 * cfg.max_activations:
            if not self._pending and not self._refill():
                break
            look_time, _, activation = heapq.heappop(self._pending)
            popped += 1
            if look_time > cfg.max_time:
                break
            self._time = look_time
            robot = self.robots[activation.robot_id]
            self._finalize_completed_moves(look_time)
            if robot.crashed:
                continue
            if robot.is_motile():
                # A scheduler bug: a robot was activated before its previous
                # move ended.  Fail loudly rather than silently corrupting the run.
                raise RuntimeError(
                    f"robot {robot.robot_id} activated at t={look_time} before its move ended "
                    f"at t={robot.move_end_time}"
                )

            robot.begin_activation(look_time)
            other_positions, look_all_positions = self._look_positions(robot, look_time)
            frame = self._frame_for_look()
            snapshot = build_snapshot(
                robot.position,
                other_positions,
                self._effective_range(),
                frame=frame,
                perception=cfg.perception,
                rng=self.rng,
                reveal_range=self._reveal_range(),
                k_bound=cfg.k_bound,
                multiplicity_detection=cfg.multiplicity_detection,
                time=look_time,
                robot_id=robot.robot_id,
                method=cfg.engine_mode,
            )
            destination_local = self.algorithm.compute(snapshot)
            displacement = (
                frame.to_global(destination_local) if frame is not None else Point.of(destination_local)
            )
            target_global = robot.position + displacement

            move_start = activation.move_start_time
            move_end = activation.end_time
            realized = cfg.motion.realize(
                robot.position, target_global, activation.progress_fraction, self.rng
            )
            origin = robot.position
            self._begin_move(robot, origin, realized, move_start, move_end)
            activation_end_times[robot.robot_id].append(move_end)
            if move_end <= look_time:
                # A zero-duration move completes at the look instant itself:
                # the observer is already at its destination, so the Look's
                # interpolation (taken before the move began) is stale.
                look_all_positions = None

            records.append(
                ActivationRecord(
                    activation=activation,
                    origin=origin,
                    target=target_global,
                    destination=realized,
                    neighbours_seen=snapshot.neighbour_count(),
                    moved_distance=origin.distance_to(realized),
                )
            )
            processed += 1

            if processed % cfg.record_every == 0:
                # One interpolation pass feeds both the metrics sample and the
                # trajectory recorder (the seed recomputed all positions twice);
                # the dense Look's full interpolation of this same instant is
                # reused outright (beginning the observer's move cannot change
                # its position at its own look time).
                if look_all_positions is not None:
                    sampled_positions = look_all_positions
                elif cfg.engine_mode == "array":
                    sampled_positions = self.positions_array(look_time)
                else:
                    sampled_positions = self.positions(look_time)
                sample = metrics.observe(look_time, sampled_positions, processed)
                if recorder is not None:
                    recorder.record_all(look_time, sampled_positions)
                if converged_time is None and sample.hull_diameter <= cfg.convergence_epsilon:
                    converged_time = look_time
                    if cfg.stop_at_convergence:
                        break

        # Let every in-flight move finish, then take the final measurement.
        final_time = max(
            [self._time] + [r.move_end_time for r in self.robots if r.is_motile()]
        )
        self._time = final_time
        self._finalize_completed_moves(final_time + 1e-12)
        for robot in self.robots:
            if robot.is_motile():
                robot.finish_move()
        final_positions = [r.position for r in self.robots]
        final_sample = metrics.observe(final_time, final_positions, processed)
        if recorder is not None:
            recorder.record_all(final_time, final_positions)
        if converged_time is None and final_sample.hull_diameter <= cfg.convergence_epsilon:
            converged_time = final_time

        final_configuration = Configuration.of(final_positions, cfg.visibility_range)
        result = SimulationResult(
            initial_configuration=self.initial_configuration,
            final_configuration=final_configuration,
            metrics=metrics,
            activations_processed=processed,
            activation_counts={r.robot_id: r.activation_count for r in self.robots},
            activation_end_times=activation_end_times,
            records=records,
            converged=converged_time is not None,
            convergence_time=converged_time,
            cohesion_maintained=not metrics.cohesion_ever_violated,
            final_time=final_time,
            wall_time_seconds=_time.perf_counter() - started,
            trajectories=recorder,
        )
        return result


def run_simulation(
    initial_positions: Sequence[PointLike],
    algorithm: ConvergenceAlgorithm,
    scheduler: Scheduler,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(initial_positions, algorithm, scheduler, config).run()
