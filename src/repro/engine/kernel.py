"""The dimension-generic continuous-time simulation kernel.

This module owns the event-driven activation pipeline that both engines
share: scheduler batches feeding a global ``look_time``-ordered heap,
instantaneous Looks over interpolated ``(n, d)`` kinematic state, phase
transitions on the structure-of-arrays store, spatial-index maintenance,
metrics sampling cadence, and the convergence / horizon stopping rules.
Nothing in here knows the spatial dimension: every position is a row of a
:class:`~repro.model.robot.KinematicArrays` store, every transition is a
row-level operation, and the grid is the dimension-generic
:class:`~repro.engine.spatial_index.UniformGridIndex`.

What *does* depend on the dimension is factored into a handful of hooks a
subclass provides:

* :meth:`ContinuousKernel._decide_move` — the Look/Compute core: build
  the perceived snapshot from the candidate positions (private frame,
  perception error), run the destination rule, realise the move.  The
  planar :class:`~repro.engine.simulator.Simulator` implements it with
  :func:`~repro.model.snapshot.build_snapshot` and 2D ``LocalFrame``
  transforms; the 3D engines implement it with rotation matrices and
  :meth:`~repro.spatial3d.kknps3.KKNPS3Algorithm.compute_array`.
* :meth:`ContinuousKernel._make_metrics` / :meth:`_bind_metrics` — the
  metrics collector.  The kernel only requires that ``observe`` return a
  sample exposing ``hull_diameter`` (for a full-dimensional point set the
  hull diameter *is* the set diameter, so the name is dimension-honest).
* :meth:`ContinuousKernel._make_record` — per-activation records (the
  planar engine emits Point-typed :class:`ActivationRecord` objects; the
  3D round adapter skips records entirely).

Because the pipeline itself lives here once, the full scheduler family
(fsync, ssync, k-NestA, k-Async, scripted) drives runs in any dimension;
schedulers only ever see :class:`Activation` batches and the read-only
engine view, both dimension-free.

The required configuration attributes (duck-typed; satisfied by
``SimulationConfig`` and the 3D config types) are: ``visibility_range``,
``seed``, ``max_activations``, ``max_time``, ``convergence_epsilon``,
``stop_at_convergence``, ``record_every``, ``crashed_robots``,
``engine_mode`` and ``spatial_index``.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..geometry.tolerances import EPS
from ..model.robot import PHASE_MOVING
from ..model.types import Activation, ActivationRecord
from ..schedulers.base import Scheduler
from .spatial_index import ShardedGridIndex, UniformGridIndex, grid_auto_threshold
from .state import EngineState


class MoveDecision:
    """What one Look/Compute/Move decision produced, as coordinate rows.

    ``target`` is where the algorithm wanted to go (global coordinates),
    ``realized`` where the motion model actually lands the robot;
    ``payload`` carries whatever the subclass wants to hand from
    :meth:`ContinuousKernel._decide_move` to
    :meth:`ContinuousKernel._make_record` without re-conversion.
    """

    __slots__ = ("target", "realized", "neighbours_seen", "payload")

    def __init__(
        self,
        target: np.ndarray,
        realized: np.ndarray,
        neighbours_seen: int,
        payload: object = None,
    ) -> None:
        self.target = target
        self.realized = realized
        self.neighbours_seen = neighbours_seen
        self.payload = payload


@dataclass
class KernelOutcome:
    """Everything one kernel run produced, in dimension-free form."""

    metrics: object
    processed: int
    activation_end_times: Dict[int, List[float]]
    records: List[ActivationRecord]
    converged_time: Optional[float]
    final_time: float
    final_positions: np.ndarray
    wall_time_seconds: float
    recorder: Optional[object] = None


class ContinuousKernel:
    """The shared continuous-time activation pipeline over ``(n, d)`` state."""

    def __init__(
        self,
        state: EngineState,
        algorithm,
        scheduler: Scheduler,
        config,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config
        self.algorithm = algorithm
        self.scheduler = scheduler
        self.rng = np.random.default_rng(config.seed) if rng is None else rng
        self._state = state
        for crashed_id in getattr(config, "crashed_robots", ()):
            self._state.arrays.crash_at(crashed_id)
        self._time = 0.0
        self._pending: List[tuple] = []
        self._sequence = 0
        self._round_batching = self._round_batching_enabled()
        # The batched round path rebuilds a sharded grid per round from the
        # committed positions, so the incrementally maintained index would
        # only be dead weight there.
        self._grid = None if self._round_batching else self._build_grid()

    # -- EngineView protocol --------------------------------------------------------
    @property
    def time(self) -> float:
        """Current global simulation time."""
        return self._time

    @property
    def n_robots(self) -> int:
        """Number of robots in the run."""
        return self._state.n

    @property
    def dim(self) -> int:
        """Spatial dimension of the run."""
        return self._state.arrays.dim

    def positions_array(self, at_time: Optional[float] = None) -> np.ndarray:
        """Positions of all robots at ``at_time`` as an ``(n, d)`` float array.

        All in-flight moves are interpolated in one numpy expression.
        """
        t = self._time if at_time is None else at_time
        return self._state.positions_at(t)

    # -- dimension hooks -------------------------------------------------------------
    def _decide_move(
        self,
        robot_id: int,
        look_time: float,
        other_positions,
        activation: Activation,
    ) -> MoveDecision:
        """Look/Compute/realise for one activation (subclasses implement)."""
        raise NotImplementedError

    def _make_metrics(self):
        """The metrics collector for this run (subclasses implement)."""
        raise NotImplementedError

    def _bind_metrics(self, metrics) -> None:
        """Bind the collector to the initial configuration (cohesion baseline)."""
        bind = getattr(metrics, "bind_initial", None)
        if bind is not None:
            bind(self._state.committed_positions())

    def _make_recorder(self):
        """The trajectory recorder, or None (base: no recording)."""
        return None

    def _make_record(
        self, activation: Activation, origin_row: np.ndarray, decision: MoveDecision
    ) -> Optional[ActivationRecord]:
        """The per-activation record to append, or None to skip records."""
        return None

    def _frame_for_look(self):
        """The private frame of one Look (base: the global frame)."""
        return None

    def _effective_range(self) -> float:
        """The visibility range the Look filter applies."""
        if getattr(self.algorithm, "assumes_unlimited_visibility", False):
            return math.inf
        return self.config.visibility_range

    def _sampled_positions(self, look_time: float, look_all_positions):
        """Positions fed to the metrics sample of ``look_time``.

        The dense Look's full interpolation of the same instant is reused
        outright (beginning the observer's move cannot change its position
        at its own look time); otherwise one fresh interpolation pass runs.
        """
        if look_all_positions is not None:
            return look_all_positions
        return self.positions_array(look_time)

    # -- internals ---------------------------------------------------------------------
    def _build_grid(self) -> Optional[UniformGridIndex]:
        """The spatial hash index for this run, or None for the dense path.

        Auto-enabled (``config.spatial_index is None``) only when the
        array engine runs a finite visibility range over a swarm big
        enough for the bookkeeping to pay off; ``spatial_index=False``
        always forces the dense path and ``True`` forces the grid
        whenever the range is finite.  The object reference path never
        queries the grid, so it is never built there.
        """
        cfg = self.config
        if getattr(cfg, "engine_mode", "array") != "array":
            return None
        effective = self._effective_range()
        feasible = math.isfinite(effective) and effective > 0.0
        if cfg.spatial_index is not None:
            enabled = cfg.spatial_index and feasible
        else:
            enabled = feasible and self.n_robots >= grid_auto_threshold(self.dim)
        if not enabled:
            return None
        grid = UniformGridIndex(effective, dim=self.dim)
        committed = self._state.committed_positions()
        for i in range(self.n_robots):
            grid.settle(i, *committed[i])
        return grid

    # -- batched round fast path ---------------------------------------------------------
    def _round_batching_enabled(self) -> bool:
        """Whether whole scheduler batches may be advanced as single rounds.

        ``config.round_batching`` (duck-typed, default None) forces the
        answer either way; on auto, the fast path engages exactly when the
        array engine runs under a scheduler that declares itself
        round-structured (``round_structured = True`` — fsync, ssync and
        the 3D round adapter).  Every batch is still *validated* before
        being consumed as a round (:meth:`_validated_round`), so a forced
        or misdeclared scheduler degrades to the per-activation reference
        path rather than corrupting the run.
        """
        setting = getattr(self.config, "round_batching", None)
        if setting is False:
            return False
        if getattr(self.config, "engine_mode", "array") != "array":
            return False
        if setting is None:
            return bool(getattr(self.scheduler, "round_structured", False))
        return True

    def _round_shard(self, committed: np.ndarray) -> Optional[ShardedGridIndex]:
        """The per-round sharded candidate index, or None for dense Looks.

        Mirrors :meth:`_build_grid`'s enablement rule (same thresholds,
        same ``spatial_index`` override, same cell size) but bins the
        round's committed positions in one vectorized pass instead of
        maintaining buckets per activation.
        """
        cfg = self.config
        effective = self._effective_range()
        feasible = math.isfinite(effective) and effective > 0.0
        if cfg.spatial_index is not None:
            enabled = cfg.spatial_index and feasible
        else:
            enabled = feasible and self.n_robots >= grid_auto_threshold(self.dim)
        if not enabled:
            return None
        return ShardedGridIndex(committed, effective + 2.0 * EPS)

    def _round_decider(self, look_time: float, committed: np.ndarray, shard):
        """Per-robot decide callable for one validated round (overridable).

        The base form routes through :meth:`_decide_move` unchanged — the
        candidate rows are the committed positions themselves (every robot
        of a validated round is idle at its committed position at the
        round's look instant), gathered through the shard's block-local
        candidate arrays when one is active.  The shard's candidate set
        includes the observer, which every Look filter drops at distance
        zero exactly as the dense path drops coincident robots.
        """

        def decide(robot_id: int, activation: Activation) -> MoveDecision:
            if shard is not None:
                other = committed[shard.candidates(robot_id)]
            else:
                other = np.delete(committed, robot_id, axis=0)
            return self._decide_move(robot_id, look_time, other, activation)

        return decide

    def _validated_round(self) -> Optional[List[tuple]]:
        """The pending heap as one consumable round, or None to fall back.

        A batch qualifies when every entry shares one look time within the
        horizon, ends strictly after it (a zero-duration move would make
        the shared committed snapshot stale mid-round), and activates a
        distinct robot.  Qualifying batches are removed from the heap;
        anything else is left untouched for the per-activation path.
        """
        pending = self._pending
        if not pending:
            return None
        entries = sorted(pending)
        look_time = entries[0][0]
        if entries[-1][0] != look_time or look_time > self.config.max_time:
            return None
        seen = set()
        for _, _, activation in entries:
            if activation.end_time <= look_time:
                return None
            robot_id = activation.robot_id
            if robot_id in seen:
                return None
            seen.add(robot_id)
        self._time = look_time
        self._finalize_completed_moves(look_time)
        arrays = self._state.arrays
        if bool(np.any(arrays.phase == PHASE_MOVING)):
            # Some robot is still mid-move at the shared look time, so the
            # committed array is not what this round's Looks would see.  A
            # mid-move *batch* robot means a scheduler bug — the heap is
            # left intact so the per-activation path raises its RuntimeError
            # with full context; a mid-move bystander (possible only under a
            # forced ``round_batching=True`` on a non-round scheduler) is
            # handled by the per-activation path's interpolated Look.
            return None
        pending.clear()
        return entries

    def _round_batch_ready(self, committed: np.ndarray, shard, entries) -> bool:
        """Whether this round's decides may run as one whole-round batch call.

        The base kernel has no batched decide; dimension front ends that
        implement :meth:`_round_decide_batch` override this with their
        eligibility rule (algorithm core, draw-free perception and motion,
        coincidence-collapse guard).  Returning False keeps the round on
        the per-robot :meth:`_round_decider` path unchanged.
        """
        return False

    def _round_decide_batch(
        self, look_time: float, committed: np.ndarray, shard, executed
    ) -> List[MoveDecision]:
        """All of one round's decides in a single call (subclasses implement).

        Only invoked after :meth:`_round_batch_ready` answered True for the
        round; must return one :class:`MoveDecision` per executed
        activation, in order, bit-identical to calling the round decider
        per activation (including RNG draw order).
        """
        raise NotImplementedError

    def _process_round(
        self,
        entries: List[tuple],
        metrics,
        recorder,
        records: List[ActivationRecord],
        activation_end_times: Dict[int, List[float]],
        processed: int,
        popped: int,
        converged_time: Optional[float],
    ):
        """Advance one validated round; returns updated loop state.

        Per-activation work shrinks to the decide itself: moves are
        finalized once per round (already done by validation), Looks read
        the shared committed rows, and every record boundary inside the
        round sees identical geometry — so the first boundary's sample is
        computed once and replicated (``activations_processed`` aside) for
        the rest when the collector declares that safe.
        """
        cfg = self.config
        arrays = self._state.arrays
        look_time = entries[0][0]
        committed = arrays.position
        shard = self._round_shard(committed)
        if self._round_batch_ready(committed, shard, entries):
            return self._process_round_batched(
                entries, metrics, recorder, records, activation_end_times,
                processed, popped, converged_time, shard,
            )
        decide = self._round_decider(look_time, committed, shard)
        replicate = getattr(metrics, "supports_replicated_samples", False)
        round_sample = None
        stop = False
        for _, _, activation in entries:
            if processed >= cfg.max_activations or popped >= 100 * cfg.max_activations:
                break
            popped += 1
            robot_id = activation.robot_id
            if arrays.crashed[robot_id]:
                continue
            arrays.begin_activation_at(robot_id, look_time)
            decision = decide(robot_id, activation)
            origin_row = arrays.position[robot_id].copy()
            arrays.begin_move_at(
                robot_id, origin_row, decision.realized,
                activation.move_start_time, activation.end_time,
            )
            activation_end_times[robot_id].append(activation.end_time)
            record = self._make_record(activation, origin_row, decision)
            if record is not None:
                records.append(record)
            processed += 1
            if processed % cfg.record_every == 0:
                if round_sample is not None:
                    sample = dataclasses.replace(
                        round_sample, activations_processed=processed
                    )
                    metrics.samples.append(sample)
                else:
                    sample = metrics.observe(look_time, committed, processed)
                    if replicate:
                        round_sample = sample
                if recorder is not None:
                    recorder.record_all(look_time, committed)
                if converged_time is None and sample.hull_diameter <= cfg.convergence_epsilon:
                    converged_time = look_time
                    if cfg.stop_at_convergence:
                        stop = True
                        break
        return processed, popped, converged_time, stop

    def _process_round_batched(
        self,
        entries: List[tuple],
        metrics,
        recorder,
        records: List[ActivationRecord],
        activation_end_times: Dict[int, List[float]],
        processed: int,
        popped: int,
        converged_time: Optional[float],
        shard,
    ):
        """Advance one validated round with a single whole-round decide call.

        The serial loop's counters are replayed first without touching any
        state: which activations execute (crash skips, activation caps)
        and where the record boundaries fall.  Every boundary of a round
        observes the same committed geometry — positions committed before
        the round stay committed throughout it (``begin_move_at`` never
        writes ``position``) — and ``observe`` draws no RNG, so the first
        boundary's sample and the convergence decision are taken *before*
        the decides.  A convergence stop then truncates the round exactly
        where the serial loop would have broken: the skipped activations
        never decide, so their frame draws never happen and the RNG stream
        matches the serial path byte for byte.  The surviving activations
        are decided in one :meth:`_round_decide_batch` call and committed
        in the serial loop's order; the remaining boundaries replay after
        the commits (same observe arguments in the same order — the
        committed geometry is round-invariant, so interleaving is
        unobservable).
        """
        cfg = self.config
        arrays = self._state.arrays
        look_time = entries[0][0]
        committed = arrays.position
        max_activations = cfg.max_activations
        pop_cap = 100 * max_activations
        record_every = cfg.record_every
        count = len(entries)
        boundaries: List[Tuple[int, int, int]] = []
        if (
            processed + count <= max_activations
            and popped + count < pop_cap
            and not arrays.crashed.any()
        ):
            # No skip and no cap can trigger inside this round: every entry
            # executes and the record boundaries fall arithmetically.
            executed = [entry[2] for entry in entries]
            boundary = (processed // record_every + 1) * record_every
            while boundary <= processed + count:
                k = boundary - processed
                boundaries.append((k, boundary, popped + k))
                boundary += record_every
            processed += count
            popped += count
        else:
            executed = []
            for _, _, activation in entries:
                if processed >= max_activations or popped >= pop_cap:
                    break
                popped += 1
                if arrays.crashed[activation.robot_id]:
                    continue
                executed.append(activation)
                processed += 1
                if processed % record_every == 0:
                    boundaries.append((len(executed), processed, popped))
        replicate = getattr(metrics, "supports_replicated_samples", False)
        stop = False
        round_sample = None
        if boundaries:
            round_sample = metrics.observe(look_time, committed, boundaries[0][1])
            if recorder is not None:
                recorder.record_all(look_time, committed)
            if (
                converged_time is None
                and round_sample.hull_diameter <= cfg.convergence_epsilon
            ):
                converged_time = look_time
                if cfg.stop_at_convergence:
                    stop = True
                    n_executed, processed, popped = boundaries[0]
                    executed = executed[:n_executed]
                    boundaries = boundaries[:1]
        decisions = self._round_decide_batch(look_time, committed, shard, executed)
        for activation, decision in zip(executed, decisions):
            robot_id = activation.robot_id
            arrays.begin_activation_at(robot_id, look_time)
            origin_row = arrays.position[robot_id].copy()
            arrays.begin_move_at(
                robot_id, origin_row, decision.realized,
                activation.move_start_time, activation.end_time,
            )
            activation_end_times[robot_id].append(activation.end_time)
            record = self._make_record(activation, origin_row, decision)
            if record is not None:
                records.append(record)
        for _, boundary_processed, _ in boundaries[1:]:
            if replicate:
                metrics.samples.append(
                    dataclasses.replace(
                        round_sample, activations_processed=boundary_processed
                    )
                )
            else:
                metrics.observe(look_time, committed, boundary_processed)
            if recorder is not None:
                recorder.record_all(look_time, committed)
        return processed, popped, converged_time, stop

    def _push(self, activation: Activation) -> None:
        heapq.heappush(self._pending, (activation.look_time, self._sequence, activation))
        self._sequence += 1

    def _refill(self) -> bool:
        batch = self.scheduler.next_batch(self)
        if not batch:
            return False
        for activation in batch:
            self._push(activation)
        return True

    def _finalize_completed_moves(self, now: float) -> None:
        completed = self._state.completed_movers(now)
        if len(completed) == 0:
            return
        grid = self._grid
        arrays = self._state.arrays
        committed = arrays.position
        for i in completed:
            arrays.finish_move_at(int(i))
            if grid is not None:
                grid.settle(int(i), *committed[i])

    def _begin_move(
        self, robot_id: int, origin: np.ndarray, destination: np.ndarray,
        start: float, end: float,
    ) -> None:
        self._state.arrays.begin_move_at(robot_id, origin, destination, start, end)
        if self._grid is not None:
            self._grid.begin_move(robot_id, *origin, *destination)

    def _look_positions(self, robot_id: int, look_time: float):
        """What the observing robot can be shown: candidate positions for its Look.

        An ``(m, d)`` array of interpolated positions — all other robots
        on the dense path, only the robots in the observer's 3^d grid
        neighbourhood when the spatial index is active (an exact superset
        of the visible set; the Look's distance filter is unchanged).

        Returns ``(others, all_positions)`` where ``all_positions`` is the
        full ``(n, d)`` interpolation when the dense path computed one
        (reused for the metrics sample of the same instant), else None.
        """
        if self._grid is not None:
            observer = self._state.committed_positions()[robot_id]
            candidates = self._grid.candidates(*observer, exclude=robot_id)
            return self._state.positions_at(look_time, candidates), None
        all_positions = self._state.positions_at(look_time)
        return np.delete(all_positions, robot_id, axis=0), all_positions

    # -- main loop -----------------------------------------------------------------------
    def run_kernel(self) -> KernelOutcome:
        """Execute the continuous-time pipeline and return its raw outcome."""
        started = _time.perf_counter()
        cfg = self.config
        arrays = self._state.arrays
        metrics = self._make_metrics()
        self._bind_metrics(metrics)
        recorder = self._make_recorder()
        if recorder is not None:
            recorder.record_all(0.0, self._sampled_positions(0.0, None))

        self.scheduler.reset(self.n_robots, self.rng)
        records: List[ActivationRecord] = []
        activation_end_times: Dict[int, List[float]] = {
            i: [] for i in range(self.n_robots)
        }
        processed = 0
        popped = 0
        converged_time: Optional[float] = None

        metrics.observe(0.0, self._sampled_positions(0.0, None), 0)

        while processed < cfg.max_activations and popped < 100 * cfg.max_activations:
            if not self._pending and not self._refill():
                break
            if self._round_batching:
                entries = self._validated_round()
                if entries is not None:
                    processed, popped, converged_time, stop = self._process_round(
                        entries, metrics, recorder, records, activation_end_times,
                        processed, popped, converged_time,
                    )
                    if stop:
                        break
                    continue
            look_time, _, activation = heapq.heappop(self._pending)
            popped += 1
            if look_time > cfg.max_time:
                break
            self._time = look_time
            robot_id = activation.robot_id
            self._finalize_completed_moves(look_time)
            if arrays.crashed[robot_id]:
                continue
            if arrays.phase[robot_id] == PHASE_MOVING:
                # A scheduler bug: a robot was activated before its previous
                # move ended.  Fail loudly rather than silently corrupting the run.
                raise RuntimeError(
                    f"robot {robot_id} activated at t={look_time} before its move ended "
                    f"at t={float(arrays.move_end[robot_id])}"
                )

            arrays.begin_activation_at(robot_id, look_time)
            other_positions, look_all_positions = self._look_positions(robot_id, look_time)
            decision = self._decide_move(robot_id, look_time, other_positions, activation)

            move_start = activation.move_start_time
            move_end = activation.end_time
            origin_row = arrays.position[robot_id].copy()
            self._begin_move(robot_id, origin_row, decision.realized, move_start, move_end)
            activation_end_times[robot_id].append(move_end)
            if move_end <= look_time:
                # A zero-duration move completes at the look instant itself:
                # the observer is already at its destination, so the Look's
                # interpolation (taken before the move began) is stale.
                look_all_positions = None

            record = self._make_record(activation, origin_row, decision)
            if record is not None:
                records.append(record)
            processed += 1

            if processed % cfg.record_every == 0:
                # One interpolation pass feeds both the metrics sample and
                # the trajectory recorder.
                sampled_positions = self._sampled_positions(look_time, look_all_positions)
                sample = metrics.observe(look_time, sampled_positions, processed)
                if recorder is not None:
                    recorder.record_all(look_time, sampled_positions)
                if converged_time is None and sample.hull_diameter <= cfg.convergence_epsilon:
                    converged_time = look_time
                    if cfg.stop_at_convergence:
                        break

        # Let every in-flight move finish, then take the final measurement.
        moving = np.flatnonzero(arrays.phase == PHASE_MOVING)
        final_time = max([self._time] + [float(arrays.move_end[i]) for i in moving])
        self._time = final_time
        self._finalize_completed_moves(final_time + 1e-12)
        for i in np.flatnonzero(arrays.phase == PHASE_MOVING):
            arrays.finish_move_at(int(i))
        final_positions = self._final_observed_positions()
        final_sample = metrics.observe(final_time, final_positions, processed)
        if recorder is not None:
            recorder.record_all(final_time, final_positions)
        if converged_time is None and final_sample.hull_diameter <= cfg.convergence_epsilon:
            converged_time = final_time

        return KernelOutcome(
            metrics=metrics,
            processed=processed,
            activation_end_times=activation_end_times,
            records=records,
            converged_time=converged_time,
            final_time=final_time,
            final_positions=arrays.position.copy(),
            wall_time_seconds=_time.perf_counter() - started,
            recorder=recorder,
        )

    def _final_observed_positions(self):
        """Positions handed to the final metrics sample (base: the rows)."""
        return self._state.committed_positions()

    def activation_counts(self) -> Dict[int, int]:
        """Activations begun per robot (read after :meth:`run_kernel`)."""
        counts = self._state.arrays.activation_count
        return {i: int(counts[i]) for i in range(self.n_robots)}
