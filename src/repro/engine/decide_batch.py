"""Shared flat-pipeline helpers for the whole-round batched decide paths.

Two engines batch the decide phase over a flat activation axis: the
replicate bundle driver (:mod:`repro.engine.replicate`) stacks many
lanes' activations, and the single-run round fast path
(:meth:`repro.engine.simulator.Simulator._round_decide_batch`) stacks one
round's activations.  Both need the same two ingredients, which live here
so that :mod:`simulator` (imported *by* :mod:`replicate`) can use them
without an import cycle:

* :func:`perceive_flat` — the elementwise transcription of
  ``PerceptionModel.perceive_array`` over concatenated neighbour rows
  (draw-free perception only; eligibility gates exclude the random-bias
  error model);
* :func:`collapse_hazard_lanes` — the quantized duplicate test proving
  that ``_collapse_coincident_array(visible, 1e-12)`` is the identity for
  every activation of a round, so the batched pipeline may skip it.

Everything here is pure numpy/math over the inputs; nothing draws RNG.
"""

from __future__ import annotations

import numpy as np

from ..geometry.tolerances import EPS

#: A committed pair (within one lane) closer than this demotes the lane's
#: round to the serial path: above it, the serial fast tier's
#: ``_collapse_coincident_array(visible, 1e-12)`` is provably the
#: identity for every activation of the round (the relative-coordinate
#: pair distance can differ from the committed one only by subtraction
#: rounding, orders of magnitude below this margin).
COLLAPSE_GUARD_DIST = 4e-12

#: Cell size of the quantized duplicate test implementing the guard.  Any
#: pair with both coordinate gaps below half a cell (5e-12, above the
#: guard distance) shares a cell in at least one of the four offset
#: passes, so hazardous lanes are always caught; hash collisions between
#: distinct cells only ever add false positives (a needless — but still
#: bit-identical — serial round).
GUARD_CELL = 2.5 * COLLAPSE_GUARD_DIST


def perceive_flat(model, px: np.ndarray, py: np.ndarray):
    """Flat transcription of ``PerceptionModel.perceive_array`` (2D, no RNG).

    Every operation is an elementwise ufunc, so applying it to the
    concatenated rows of many activations yields exactly the per-activation
    results (including the near-zero restore that also covers the serial
    path's all-unmeasurable early return).
    """
    no_distance_error = model.distance_error == 0.0 or model.bias == "none"
    no_distortion = model.distortion is None or model.distortion.amplitude == 0.0
    if (no_distance_error and no_distortion) or len(px) == 0:
        return px, py
    r = np.hypot(px, py)
    measurable = r > EPS
    r_perceived = r.copy()
    if model.distance_error > 0.0 and model.bias != "none":
        if model.bias == "over":
            r_perceived[measurable] = r[measurable] * (1.0 + model.distance_error)
        elif model.bias == "under":
            r_perceived[measurable] = r[measurable] * (1.0 - model.distance_error)
    angle = np.arctan2(py, px)
    if model.distortion is not None:
        angle = model.distortion.apply_angle_array(angle)
    out_x = r_perceived * np.cos(angle)
    out_y = r_perceived * np.sin(angle)
    out_x[~measurable] = px[~measurable]
    out_y[~measurable] = py[~measurable]
    return out_x, out_y


def collapse_hazard_lanes(flat_xy: np.ndarray, lanes: int, n: int) -> np.ndarray:
    """Per-lane flag: may this round hold a pair within the collapse guard?

    Quantized-cell duplicate detection in O(lanes * n log n): four passes
    quantize the committed coordinates to cells of :data:`GUARD_CELL`
    with the grid shifted by half a cell per axis.  Two points both of
    whose coordinate gaps are below half a cell straddle at most one cell
    boundary per axis across the two shifts, so at least one of the four
    offset combinations lands them in the same cell — and equal cells
    hash to equal keys, so sorting each lane's keys and scanning adjacent
    equalities finds every hazardous pair.  Distinct cells may hash alike;
    that only demotes an extra lane to the (bit-identical) serial round.

    This replaces a ``neighbour_pairs`` distance scan, which degenerates
    to O(n^2) pairs per lane once the swarm contracts inside one grid
    cell; the quantized test stays linearithmic at any density.
    """
    x = flat_xy[:, 0]
    y = flat_xy[:, 1]
    hazard = np.zeros(lanes, dtype=bool)
    inv = 1.0 / GUARD_CELL
    half = GUARD_CELL / 2.0
    mix = np.int64(-7046029254386353131)  # odd 64-bit multiplier
    for ox in (0.0, half):
        ix = np.floor((x + ox) * inv).astype(np.int64)
        for oy in (0.0, half):
            iy = np.floor((y + oy) * inv).astype(np.int64)
            keys = np.sort((ix * mix + iy).reshape(lanes, n), axis=1)
            np.logical_or(
                hazard, (keys[:, 1:] == keys[:, :-1]).any(axis=1), out=hazard
            )
    return hazard
