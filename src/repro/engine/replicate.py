"""Replicate-batched execution: many seed-replicates through one round pass.

A sweep grid whose points differ only by seed re-pays the full per-round
Python overhead once per seed.  This module advances a whole bundle of
such runs ("lanes") together: every global iteration validates one round
per lane, stacks the committed positions into one ``(runs, n, 2)``
tensor, bins it with :meth:`ShardedGridIndex.from_replicates`, and pushes
*all* lanes' activations through one vectorized Look pipeline (candidate
gather, relative offsets, distance filter, private frames, perception)
followed by one scalar KKNPS core pass
(:func:`repro.engine.fanout.kknps_destination_segment`) — optionally
fanned across a shared-memory process pool at mega scale.

Bit-identity contract: every lane owns its own RNG, scheduler, metrics
collector and kinematic arrays, and consumes its RNG stream in exactly
the serial order (frames are pre-drawn per lane in activation order; the
vectorized tiers are restricted to draw-free perception and deviation-free
motion).  Each numpy stage is an elementwise transcription of the serial
fast tier (:meth:`Simulator._round_decider`), so every row a lane
produces is bit-identical to running that lane alone — the sweep store
and aggregator cannot tell the difference.  Anything the vector tier
cannot replicate exactly (other algorithms, random distance error,
deviating motion, trajectory recording, a coincidence-collapse hazard)
drops per-round to the lane's own serial ``_process_round``; a lane whose
scheduler cannot produce validated rounds at all is re-run serially from
scratch.

Per-replicate convergence masking falls out of the lane structure: a lane
that converges (or exhausts its activation budget) is finalized and drops
out of the tensor while the stragglers continue.
"""

from __future__ import annotations

import math
import time as _time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.kknps import KKNPSAlgorithm
from ..geometry.hull import ConvexHull
from ..geometry.point import Point, points_to_array
from ..geometry.sec import smallest_enclosing_circle
from ..geometry.tolerances import EPS
from ..model.configuration import Configuration
from ..model.robot import PHASE_IDLE, PHASE_MOVING
from ..model.types import Activation, ActivationRecord
from .decide_batch import (
    COLLAPSE_GUARD_DIST as _COLLAPSE_GUARD_DIST,
    GUARD_CELL as _GUARD_CELL,
    collapse_hazard_lanes as _collapse_hazard_lanes,
    perceive_flat as _perceive_flat,
)
from .fanout import (
    REPLICATE_FANOUT_MIN_ROBOTS,
    FanoutPool,
    kknps_destinations_all,
)
from .metrics import MetricsCollector, MetricsSample, min_pairwise_distance_grid
from .simulator import SimulationConfig, SimulationResult, Simulator
from .spatial_index import ShardedGridIndex

#: Grid-cell hint for the next min-pairwise search, as a multiple of the
#: last observed minimum.  The search is exact at any positive cell and
#: doubles until it verifies, so this only trades pair count (quadratic in
#: the cell) against the odds of a retry when the minimum grows between
#: observes.
_HINT_MARGIN = 1.25

#: One bundle member: a zero-argument factory producing the pristine
#: ``(initial_positions, algorithm, scheduler, config)`` of that run.  A
#: factory may be called more than once (the serial-fallback path rebuilds
#: from scratch), so it must return fresh scheduler/algorithm objects.
LaneFactory = Callable[
    [], Tuple[Sequence, object, object, Optional[SimulationConfig]]
]


class _Lane:
    """One bundle member mid-flight: a full serial simulator plus loop state."""

    __slots__ = (
        "index",
        "sim",
        "metrics",
        "recorder",
        "records",
        "aet",
        "processed",
        "popped",
        "converged_time",
        "status",
        "vector_ok",
        "fast_observe",
        "pair_hint",
        "effective",
        "limit",
        "started",
        "result",
    )

    def __init__(self, index: int, sim: Simulator) -> None:
        self.index = index
        self.sim = sim
        self.records: List[ActivationRecord] = []
        self.aet: Dict[int, List[float]] = {i: [] for i in range(sim.n_robots)}
        self.processed = 0
        self.popped = 0
        self.converged_time: Optional[float] = None
        self.status = "active"
        self.pair_hint: Optional[float] = None
        self.result: Optional[SimulationResult] = None


def replicate_vector_eligible(sim: Simulator) -> bool:
    """Whether this run's *configuration* admits the vectorized round tier.

    The vector tier mirrors the serial fast tier float-for-float, which
    is only possible when the round draws no RNG outside the private
    frames and the algorithm core is the KKNPS scalar transcription.
    Ineligible lanes still batch at the round level — they advance through
    their own serial ``_process_round`` — so this gates the inner tier,
    not bundling itself.
    """
    cfg = sim.config
    if cfg.engine_mode != "array" or cfg.multiplicity_detection:
        return False
    if type(sim.algorithm) is not KKNPSAlgorithm:
        return False
    effective = sim._effective_range()
    if not (math.isfinite(effective) and effective > 0.0):
        return False
    perception = cfg.perception
    if perception.distance_error > 0.0 and perception.bias == "random":
        return False
    if cfg.motion.max_deviation(1.0) > 0.0:
        return False
    return True


def _prepare_lane(
    index: int, sim: Simulator, setup_cache: Optional[dict] = None
) -> _Lane:
    """Run the kernel preamble for one lane (mirrors ``run_kernel`` setup).

    Replicates of a seed-independent workload start from byte-identical
    positions, and both expensive preamble steps — ``bind_initial`` (the
    initial visibility edges) and the initial ``metrics.observe`` — are
    deterministic, RNG-free functions of those positions.  When
    ``setup_cache`` is given, their products are therefore computed once
    per distinct initial configuration and replayed into every further
    lane: the edge set is copied, the (read-only) edge index arrays and
    the frozen initial sample are shared.  The lane's RNG stream is
    untouched either way, so the replay is bit-invisible.
    """
    lane = _Lane(index, sim)
    lane.started = _time.perf_counter()
    lane.metrics = sim._make_metrics()
    template = None
    key = None
    if (
        setup_cache is not None
        and type(lane.metrics) is MetricsCollector
        and sim.config.engine_mode == "array"
    ):
        key = (
            sim.n_robots,
            sim.config.visibility_range,
            sim._state.arrays.position.tobytes(),
        )
        template = setup_cache.get(key)
    if template is None:
        sim._bind_metrics(lane.metrics)
    else:
        edges, edge_i, edge_j, _ = template
        lane.metrics.initial_edges = set(edges)
        lane.metrics._edge_i = edge_i
        lane.metrics._edge_j = edge_j
    lane.recorder = sim._make_recorder()
    if lane.recorder is not None:
        lane.recorder.record_all(0.0, sim._sampled_positions(0.0, None))
    sim.scheduler.reset(sim.n_robots, sim.rng)
    if template is None:
        sample = lane.metrics.observe(0.0, sim._sampled_positions(0.0, None), 0)
        if key is not None:
            setup_cache[key] = (
                lane.metrics.initial_edges,
                lane.metrics._edge_i,
                lane.metrics._edge_j,
                sample,
            )
    else:
        sample = template[3]
        lane.metrics.samples.append(sample)
        if sample.broken_edge_count:
            lane.metrics.cohesion_ever_violated = True
    if sample.min_pairwise_distance > 0.0:
        # Seed the observe cell hint from the initial sample so even the
        # first fast observe scans a tight grid instead of a
        # visibility-sized one.
        lane.pair_hint = _HINT_MARGIN * sample.min_pairwise_distance
    lane.effective = sim._effective_range()
    lane.limit = lane.effective + EPS
    lane.vector_ok = (
        replicate_vector_eligible(sim)
        and lane.recorder is None
        and getattr(lane.metrics, "supports_replicated_samples", False)
    )
    lane.fast_observe = lane.vector_ok and type(lane.metrics) is MetricsCollector
    return lane


def _min_pairwise_group(
    arrs: List[np.ndarray], cells: List[float]
) -> List[float]:
    """Exact per-lane minimum separations from one shared replicate grid.

    Any positive cell yields the exact minimum (the grid covers every pair
    at distance at most the cell, the true argmin pair is therefore always
    emitted once the per-lane verification ``best <= cell`` passes, and
    extra emitted pairs can only be farther), so all lanes can share one
    ``from_replicates`` binning at the largest requested cell instead of
    building one grid each.  Per-pair arithmetic matches
    :func:`min_pairwise_distance_grid` term for term; lanes whose
    verification fails at the shared cell fall back to the per-lane
    doubling search, which returns the same exact value.

    Byte-identical position arrays (seed-independent workloads before the
    lanes' RNG streams diverge) are deduplicated first: the result is a
    pure function of the array and the shared cell, so one representative
    per distinct array is computed and replayed.
    """
    unique: Dict[bytes, int] = {}
    member_of: List[int] = []
    rep_arrs: List[np.ndarray] = []
    for arr in arrs:
        key = arr.tobytes()
        rep = unique.get(key)
        if rep is None:
            rep = len(rep_arrs)
            unique[key] = rep
            rep_arrs.append(arr)
        member_of.append(rep)
    if len(rep_arrs) < len(arrs):
        minima = _min_pairwise_group(rep_arrs, [max(cells)] * len(rep_arrs))
        return [minima[rep] for rep in member_of]
    lanes = len(arrs)
    n = len(arrs[0])
    tensor = np.stack(arrs)
    cell = max(cells)
    flat = tensor.reshape(lanes * n, 2)
    extent = float(np.max(flat.max(axis=0) - flat.min(axis=0)))
    floor_cell = extent * 1e-6
    if floor_cell > 0.0 and cell < floor_cell:
        # Keep the grid's integer cell keys far from overflow even if a
        # past round reported a pathologically small separation.
        cell = floor_cell
    if not math.isfinite(cell) or cell <= 0.0:
        cell = 1.0
    shard = ShardedGridIndex.from_replicates(tensor, cell)
    i, j = shard.neighbour_pairs()
    out: List[Optional[float]] = [None] * lanes
    if len(i):
        x = np.ascontiguousarray(flat[:, 0])
        y = np.ascontiguousarray(flat[:, 1])
        dx = x[i] - x[j]
        squared = dx * dx
        dy = y[i] - y[j]
        squared = squared + dy * dy
        lane_of = i // n
        order = np.argsort(lane_of, kind="stable")
        lane_sorted = lane_of[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(lane_sorted)) + 1)
        )
        minima = np.minimum.reduceat(squared[order], starts)
        for lane_index, least in zip(lane_sorted[starts].tolist(), minima.tolist()):
            best = math.sqrt(least)
            if best <= cell:
                out[lane_index] = best
    for k in range(lanes):
        if out[k] is None:
            out[k] = min_pairwise_distance_grid(arrs[k], cell * 2.0)
    return out


def _observe_fast(
    lane: _Lane,
    time: float,
    arr: np.ndarray,
    processed: int,
    min_pairwise: Optional[float] = None,
    geometry_cache: Optional[dict] = None,
):
    """``MetricsCollector.observe``, bit-identically, without the dense matrix.

    Applies the collector's own sparse recipe (documented bit-identical to
    the dense path) below the ``METRICS_DENSE_MAX`` switchover: the hull
    diameter is attained between hull vertices and uses the dense path's
    per-pair arithmetic on them, and the minimum separation comes from
    :func:`min_pairwise_distance_grid` — exact at any positive initial
    cell, so the previous round's minimum (doubled) serves as a hint that
    keeps the grid-local pair count linear even in contracted swarms
    (where a visibility-sized cell would degenerate to all ~n^2/2 pairs).
    A caller that already holds the lane's exact minimum (the batched
    per-round group pass) hands it in via ``min_pairwise``.

    Every geometric field of the sample is a pure function of the
    position bytes and the collector's initial edge arrays; when sibling
    lanes still agree byte-for-byte (seed-independent workloads before
    their RNG streams diverge), a caller-scoped ``geometry_cache`` lets
    the first lane's observation serve the rest verbatim — only ``time``
    and ``activations_processed`` stay per-lane.
    """
    metrics = lane.metrics
    n = len(arr)
    if n < 2:
        return metrics.observe(time, arr, processed)
    key = None
    if geometry_cache is not None:
        key = (arr.tobytes(), id(metrics._edge_i))
        cached = geometry_cache.get(key)
        if cached is not None:
            diameter, perimeter, radius, cached_min, broken_count = cached
            if min_pairwise is None:
                min_pairwise = cached_min
            lane.pair_hint = (
                _HINT_MARGIN * min_pairwise if min_pairwise > 0.0 else None
            )
            if broken_count:
                metrics.cohesion_ever_violated = True
            sample = MetricsSample(
                time=time,
                hull_diameter=diameter,
                hull_perimeter=perimeter,
                hull_radius=radius,
                min_pairwise_distance=min_pairwise,
                initial_edges_preserved=not broken_count,
                broken_edge_count=broken_count,
                activations_processed=processed,
            )
            metrics.samples.append(sample)
            return sample
    hull = ConvexHull.of_array(arr)
    hull_arr = points_to_array(hull.vertices)
    hx = hull_arr[:, 0, None] - hull_arr[None, :, 0]
    hy = hull_arr[:, 1, None] - hull_arr[None, :, 1]
    diameter = float(math.sqrt((hx * hx + hy * hy).max()))
    if min_pairwise is None:
        cell = lane.pair_hint
        if cell is None or not math.isfinite(cell) or cell <= 0.0:
            cell = metrics.visibility_range
        floor_cell = diameter * 1e-6
        if floor_cell > 0.0 and cell < floor_cell:
            # Keep the grid's integer cell keys far from overflow even if
            # a past round reported a pathologically small separation.
            cell = floor_cell
        min_pairwise = min_pairwise_distance_grid(arr, cell)
    lane.pair_hint = _HINT_MARGIN * min_pairwise if min_pairwise > 0.0 else None
    broken_count = metrics._broken_edge_count(arr)
    if broken_count:
        metrics.cohesion_ever_violated = True
    perimeter = hull.perimeter()
    radius = smallest_enclosing_circle(hull.vertices).radius
    if key is not None:
        geometry_cache[key] = (
            diameter, perimeter, radius, min_pairwise, broken_count
        )
    sample = MetricsSample(
        time=time,
        hull_diameter=diameter,
        hull_perimeter=perimeter,
        hull_radius=radius,
        min_pairwise_distance=min_pairwise,
        initial_edges_preserved=not broken_count,
        broken_edge_count=broken_count,
        activations_processed=processed,
    )
    metrics.samples.append(sample)
    return sample


def _settle_moves(lane: _Lane) -> float:
    """Drain every in-flight move and return the lane's final time.

    Idempotent: a second call sees no movers and the same ``sim._time``,
    so the batched finish path may settle a lane early (to read its final
    positions for the group minimum pass) and ``_finish`` repeats the call
    harmlessly.
    """
    sim = lane.sim
    arrays = sim._state.arrays
    moving = np.flatnonzero(arrays.phase == PHASE_MOVING)
    if not len(moving):
        return sim._time
    final_time = max(sim._time, float(arrays.move_end[moving].max()))
    sim._time = final_time
    if arrays.dim == 2 and sim._grid is None:
        # ``finish_move_at`` row by row, batched: the same per-row
        # ``math.hypot`` feeds ``total_distance`` and the endpoint copy is
        # one fancy-index store (every mover ends at or before
        # ``final_time``, so both serial finalisation passes reduce to
        # this).
        origins = arrays.move_origin[moving]
        endpoints = arrays.move_destination[moving]
        arrays.total_distance[moving] += np.fromiter(
            map(
                math.hypot,
                (endpoints[:, 0] - origins[:, 0]).tolist(),
                (endpoints[:, 1] - origins[:, 1]).tolist(),
            ),
            dtype=np.float64,
            count=len(moving),
        )
        arrays.position[moving] = endpoints
        arrays.phase[moving] = PHASE_IDLE
    else:
        sim._finalize_completed_moves(final_time + 1e-12)
        for i in np.flatnonzero(arrays.phase == PHASE_MOVING):
            arrays.finish_move_at(int(i))
    return final_time


def _observe_cell(lane: _Lane) -> float:
    """The grid cell the lane's next fast observe would start from."""
    cell = lane.pair_hint
    if cell is None or not math.isfinite(cell) or cell <= 0.0:
        cell = lane.metrics.visibility_range
    return cell


def _finish_group(lanes: List[_Lane]) -> None:
    """Finish several lanes at once, batching their final observes.

    Lanes of equal swarm size share one :func:`_min_pairwise_group` pass
    over their settled final positions; everything else of the epilogue
    stays per lane.
    """
    by_n: Dict[int, List[_Lane]] = {}
    for lane in lanes:
        if lane.fast_observe and lane.sim.n_robots >= 2:
            by_n.setdefault(lane.sim.n_robots, []).append(lane)
    minima: Dict[int, float] = {}
    for group in by_n.values():
        if len(group) < 2:
            continue
        for lane in group:
            _settle_moves(lane)
        found = _min_pairwise_group(
            [lane.sim._state.arrays.position for lane in group],
            [_observe_cell(lane) for lane in group],
        )
        for lane, least in zip(group, found):
            minima[id(lane)] = least
    observe_cache: dict = {}
    for lane in lanes:
        _finish(lane, minima.get(id(lane)), observe_cache)


def _finish(
    lane: _Lane,
    min_pairwise: Optional[float] = None,
    observe_cache: Optional[dict] = None,
) -> None:
    """Lane epilogue: mirror of ``run_kernel``'s tail plus ``Simulator.run``."""
    sim = lane.sim
    cfg = sim.config
    arrays = sim._state.arrays
    final_time = _settle_moves(lane)
    if lane.fast_observe:
        # Array engine: the Robot ``position`` property reads these exact
        # rows, so building the Points straight from the array is
        # value-identical and skips 2n property round trips.
        final_positions = [
            Point(px, py) for px, py in arrays.position.tolist()
        ]
        final_sample = _observe_fast(
            lane,
            final_time,
            arrays.position,
            lane.processed,
            min_pairwise,
            observe_cache,
        )
    else:
        final_positions = sim._final_observed_positions()
        final_sample = lane.metrics.observe(
            final_time, final_positions, lane.processed
        )
    if lane.recorder is not None:
        lane.recorder.record_all(final_time, final_positions)
    if (
        lane.converged_time is None
        and final_sample.hull_diameter <= cfg.convergence_epsilon
    ):
        lane.converged_time = final_time
    final_configuration = Configuration.of(final_positions, cfg.visibility_range)
    lane.result = SimulationResult(
        initial_configuration=sim.initial_configuration,
        final_configuration=final_configuration,
        metrics=lane.metrics,
        activations_processed=lane.processed,
        activation_counts=sim.activation_counts(),
        activation_end_times=lane.aet,
        records=lane.records,
        converged=lane.converged_time is not None,
        convergence_time=lane.converged_time,
        cohesion_maintained=not lane.metrics.cohesion_ever_violated,
        final_time=final_time,
        wall_time_seconds=_time.perf_counter() - lane.started,
        trajectories=lane.recorder,
    )
    lane.status = "done"


def _advance_scalar_round(lane: _Lane, entries: List[tuple]) -> None:
    """Advance one lane's validated round through its own serial code."""
    sim = lane.sim
    processed, popped, converged_time, stop = sim._process_round(
        entries,
        lane.metrics,
        lane.recorder,
        lane.records,
        lane.aet,
        lane.processed,
        lane.popped,
        lane.converged_time,
    )
    lane.processed = processed
    lane.popped = popped
    lane.converged_time = converged_time
    if stop:
        _finish(lane)


def _walk_round(
    lane: _Lane,
    entries: List[tuple],
    min_pairwise: Optional[float] = None,
    observe_cache: Optional[dict] = None,
) -> Tuple[List[Activation], bool]:
    """Replay the round's counters without deciding anything yet.

    Determines which activations execute (crash skips, activation caps),
    where the record boundaries fall, and — because every boundary of a
    round observes the same committed geometry — handles the round's
    metrics samples and convergence checks up front.  The metrics
    ``observe`` draws no RNG, so hoisting it before the frame draws leaves
    the lane's stream untouched.
    """
    sim = lane.sim
    cfg = sim.config
    arrays = sim._state.arrays
    look_time = entries[0][0]
    max_activations = cfg.max_activations
    pop_cap = 100 * max_activations
    record_every = cfg.record_every
    processed = lane.processed
    popped = lane.popped
    boundaries: List[Tuple[int, int, int]] = []
    count = len(entries)
    if (
        processed + count <= max_activations
        and popped + count < pop_cap
        and not arrays.crashed.any()
    ):
        # No skip and no cap can trigger inside this round: every entry
        # executes and the record boundaries fall arithmetically.
        executed = [entry[2] for entry in entries]
        boundary = (processed // record_every + 1) * record_every
        while boundary <= processed + count:
            k = boundary - processed
            boundaries.append((k, boundary, popped + k))
            boundary += record_every
        processed += count
        popped += count
    else:
        executed = []
        for _, _, activation in entries:
            if processed >= max_activations or popped >= pop_cap:
                break
            popped += 1
            if arrays.crashed[activation.robot_id]:
                continue
            executed.append(activation)
            processed += 1
            if processed % record_every == 0:
                boundaries.append((len(executed), processed, popped))
    stop = False
    if boundaries:
        if lane.fast_observe:
            sample = _observe_fast(
                lane,
                look_time,
                arrays.position,
                boundaries[0][1],
                min_pairwise,
                observe_cache,
            )
        else:
            sample = lane.metrics.observe(
                look_time, arrays.position, boundaries[0][1]
            )
        if (
            lane.converged_time is None
            and sample.hull_diameter <= cfg.convergence_epsilon
        ):
            lane.converged_time = look_time
            if cfg.stop_at_convergence:
                stop = True
                n_executed, processed, popped = boundaries[0]
                executed = executed[:n_executed]
                boundaries = boundaries[:1]
        if not stop and len(boundaries) > 1:
            # dataclasses.replace, unrolled: record_every=1 makes this a
            # per-activation path.
            samples = lane.metrics.samples
            for _, boundary_processed, _ in boundaries[1:]:
                samples.append(
                    MetricsSample(
                        time=sample.time,
                        hull_diameter=sample.hull_diameter,
                        hull_perimeter=sample.hull_perimeter,
                        hull_radius=sample.hull_radius,
                        min_pairwise_distance=sample.min_pairwise_distance,
                        initial_edges_preserved=sample.initial_edges_preserved,
                        broken_edge_count=sample.broken_edge_count,
                        activations_processed=boundary_processed,
                    )
                )
    lane.processed = processed
    lane.popped = popped
    return executed, stop


def _perception_key(model) -> tuple:
    distortion = model.distortion
    return (
        model.distance_error,
        model.bias,
        None
        if distortion is None
        else (distortion.amplitude, distortion.frequency, distortion.phase),
    )


def _advance_vector_group(
    members: List[Tuple[_Lane, List[tuple], int]],
    grid: ShardedGridIndex,
    flat_xy: np.ndarray,
    n: int,
    pool: Optional[FanoutPool],
    fanout_min: int,
) -> None:
    """One vectorized round over every lane of one ``(n, range)`` group."""
    # Group observe pre-pass: lanes whose walk will certainly hit a record
    # boundary this round (the fast-walk arithmetic, re-derived here) share
    # one grid over the committed tensor for their min-pairwise distances.
    # The shared pass yields the exact same float as each lane's own grid
    # search (see ``_min_pairwise_group``), so this is purely a batching.
    group_mins: Dict[int, float] = {}
    if n >= 2:
        observing: List[int] = []
        for member_index, (lane, entries, _) in enumerate(members):
            if not lane.fast_observe:
                continue
            cfg = lane.sim.config
            if lane.sim._state.arrays.crashed.any():
                # Crash skips make the executed count data-dependent;
                # leave the lane on its per-lane observe path.
                continue
            # Without crashes the walk executes exactly this many entries
            # (cap truncation included), so the first record boundary is
            # predictable: the lane observes iff one falls inside.
            executing = min(
                len(entries),
                cfg.max_activations - lane.processed,
                100 * cfg.max_activations - lane.popped,
            )
            if executing <= 0:
                continue
            record_every = cfg.record_every
            if (lane.processed // record_every + 1) * record_every > (
                lane.processed + executing
            ):
                continue
            observing.append(member_index)
        if len(observing) >= 2:
            found = _min_pairwise_group(
                [members[k][0].sim._state.arrays.position for k in observing],
                [_observe_cell(members[k][0]) for k in observing],
            )
            group_mins = dict(zip(observing, found))
    walked: List[Tuple[_Lane, List[Activation], bool, int]] = []
    # Sibling lanes with byte-identical committed positions (common until
    # round-1 RNG frames diverge seed-varied replicates) share one round of
    # observe geometry through this per-round cache.
    observe_cache: dict = {}
    for member_index, (lane, entries, slot) in enumerate(members):
        executed, stop = _walk_round(
            lane, entries, group_mins.get(member_index), observe_cache
        )
        walked.append((lane, executed, stop, slot))
    total_activations = sum(len(w[1]) for w in walked)
    if total_activations == 0:
        finishing = [lane for lane, _, stop, _ in walked if stop]
        if finishing:
            _finish_group(finishing)
        return

    # -- flat Look pipeline (mirrors the serial fast tier, batched) -------------
    acts = total_activations
    lane_of = np.empty(acts, dtype=np.int64)
    fids = np.empty(acts, dtype=np.intp)
    write = 0
    for lane_index, (lane, executed, _, slot) in enumerate(walked):
        count = len(executed)
        if not count:
            continue
        base = slot * n
        lane_of[write : write + count] = lane_index
        fids[write : write + count] = np.fromiter(
            (base + a.robot_id for a in executed), dtype=np.intp, count=count
        )
        write += count
    grid.warm_candidates()
    slot_list = grid._slot_of_robot[fids].tolist()
    cache = grid._candidate_cache
    candidate_arrays = [cache[slot] for slot in slot_list]
    counts = np.fromiter(
        (c.size for c in candidate_arrays), dtype=np.int64, count=acts
    )
    segment = np.zeros(acts + 1, dtype=np.int64)
    np.cumsum(counts, out=segment[1:])
    candidate_ids = (
        np.concatenate(candidate_arrays)
        if candidate_arrays
        else np.empty(0, dtype=np.intp)
    )
    flat_x = np.ascontiguousarray(flat_xy[:, 0])
    flat_y = np.ascontiguousarray(flat_xy[:, 1])
    # Column-wise mirror of ``rows - np.repeat(observers, counts, axis=0)``
    # on the serial tier — elementwise identical, half the gather traffic.
    rel_x = flat_x[candidate_ids] - np.repeat(flat_x[fids], counts)
    rel_y = flat_y[candidate_ids] - np.repeat(flat_y[fids], counts)
    distance = np.hypot(rel_x, rel_y)
    lane_limits = np.fromiter(
        (lane.limit for lane, _, _, _ in walked),
        dtype=np.float64,
        count=len(walked),
    )
    keep = (distance > 1e-12) & (
        distance <= np.repeat(lane_limits[lane_of], counts)
    )
    keep_cumulative = np.zeros(len(keep) + 1, dtype=np.int64)
    np.cumsum(keep, out=keep_cumulative[1:])
    vis_counts = keep_cumulative[segment[1:]] - keep_cumulative[segment[:-1]]
    vis_segment = np.zeros(acts + 1, dtype=np.int64)
    np.cumsum(vis_counts, out=vis_segment[1:])
    vx = rel_x[keep]
    vy = rel_y[keep]

    # -- private frames: pre-draw per lane in activation order ------------------
    rotations = np.zeros(acts, dtype=np.float64)
    reflections = np.zeros(acts, dtype=bool)
    framed = np.zeros(acts, dtype=bool)
    cos_neg = np.ones(acts, dtype=np.float64)
    sin_neg = np.zeros(acts, dtype=np.float64)
    cos_pos = np.ones(acts, dtype=np.float64)
    sin_pos = np.zeros(acts, dtype=np.float64)
    write = 0
    for lane, executed, _, _ in walked:
        cfg = lane.sim.config
        if not cfg.use_random_frames:
            write += len(executed)
            continue
        rng = lane.sim.rng
        allow_reflection = cfg.allow_reflection
        for _ in executed:
            rotation = float(rng.uniform(0.0, 2.0 * math.pi))
            reflected = bool(rng.integers(0, 2)) if allow_reflection else False
            rotations[write] = rotation
            reflections[write] = reflected
            framed[write] = True
            cos_neg[write] = math.cos(-rotation)
            sin_neg[write] = math.sin(-rotation)
            cos_pos[write] = math.cos(rotation)
            sin_pos[write] = math.sin(rotation)
            write += 1
    if framed.any():
        row_cos = np.repeat(cos_neg, vis_counts)
        row_sin = np.repeat(sin_neg, vis_counts)
        local_x = row_cos * vx - row_sin * vy
        local_y = row_sin * vx + row_cos * vy
        row_reflected = np.repeat(reflections, vis_counts)
        local_y = np.where(row_reflected, -local_y, local_y)
        if not framed.all():
            row_framed = np.repeat(framed, vis_counts)
            local_x = np.where(row_framed, local_x, vx)
            local_y = np.where(row_framed, local_y, vy)
    else:
        local_x, local_y = vx, vy

    # -- perception (draw-free by eligibility) ----------------------------------
    programs: Dict[tuple, Tuple[List[int], object]] = {}
    for lane_index, (lane, _, _, _) in enumerate(walked):
        model = lane.sim.config.perception
        key = _perception_key(model)
        programs.setdefault(key, ([], model))[0].append(lane_index)
    if len(programs) == 1:
        ((_, model),) = programs.values()
        perceived_x, perceived_y = _perceive_flat(model, local_x, local_y)
    else:
        perceived_x = np.array(local_x, dtype=np.float64, copy=True)
        perceived_y = np.array(local_y, dtype=np.float64, copy=True)
        row_lane = np.repeat(lane_of, vis_counts)
        for lane_indices, model in programs.values():
            mask = np.isin(row_lane, np.asarray(lane_indices, dtype=np.int64))
            px, py = _perceive_flat(model, local_x[mask], local_y[mask])
            perceived_x[mask] = px
            perceived_y[mask] = py

    # -- the KKNPS scalar core (inline or fanned across the pool) ---------------
    lane_consts = [lane.sim.algorithm.decide_consts() for lane, _, _, _ in walked]
    if pool is not None and len(walked) * n >= fanout_min and acts > 1:
        destinations = pool.compute(
            perceived_x,
            perceived_y,
            vis_segment[:-1],
            vis_segment[1:],
            lane_of,
            lane_consts,
        )
    elif len(walked) == 1:
        # One lane: the whole round is one algorithm's batch — route
        # through its own entry point (identical arithmetic; lane_of is
        # all zeros here, so the lane-consts gather is a constant).
        destinations = walked[0][0].sim.algorithm.compute_array_rounds(
            perceived_x, perceived_y, vis_segment[:-1], vis_segment[1:]
        )
    else:
        destinations = np.zeros((acts, 2), dtype=np.float64)
        kknps_destinations_all(
            perceived_x,
            perceived_y,
            vis_segment[:-1],
            vis_segment[1:],
            lane_of,
            lane_consts,
            destinations,
        )

    # -- frame-back, motion, commit (per lane) ----------------------------------
    # The whole frame-back rotation and motion model runs elementwise over
    # the flat activation axis (same operation order as the scalar loop,
    # so the same IEEE results); the per-activation loop below only builds
    # the record objects from the precomputed values.
    ldx = np.ascontiguousarray(destinations[:, 0])
    ldy = np.where(framed & reflections, -destinations[:, 1], destinations[:, 1])
    # LocalFrame.to_global at unit scale / zero origin, kept term-for-term
    # (the 0.0 additions normalise -0.0 exactly as Point.rotated does).
    rot_x = (0.0 + cos_pos * ldx - sin_pos * ldy) + 0.0
    rot_y = (0.0 + sin_pos * ldx + cos_pos * ldy) + 0.0
    global_dx = np.where(framed, rot_x, ldx)
    global_dy = np.where(framed, rot_y, ldy)
    origin_x = flat_x[fids]
    origin_y = flat_y[fids]
    target_x = origin_x + global_dx
    target_y = origin_y + global_dy
    planned = np.fromiter(
        map(
            math.hypot,
            (origin_x - target_x).tolist(),
            (origin_y - target_y).tolist(),
        ),
        dtype=np.float64,
        count=acts,
    )
    # MotionModel.realize with zero deviation, term-for-term.
    progress = np.fromiter(
        (a.progress_fraction for _, executed, _, _ in walked for a in executed),
        dtype=np.float64,
        count=acts,
    )
    xi_of_lane = np.fromiter(
        (lane.sim.config.motion.xi for lane, _, _, _ in walked),
        dtype=np.float64,
        count=len(walked),
    )
    fraction = np.minimum(1.0, np.maximum(xi_of_lane[lane_of], progress))
    short = planned <= EPS
    realized_x = np.where(short, origin_x, origin_x + (target_x - origin_x) * fraction)
    realized_y = np.where(short, origin_y, origin_y + (target_y - origin_y) * fraction)
    # Point.distance_to, inlined: same hypot on the same floats.
    moved = np.fromiter(
        map(
            math.hypot,
            (origin_x - realized_x).tolist(),
            (origin_y - realized_y).tolist(),
        ),
        dtype=np.float64,
        count=acts,
    )
    vis_l = vis_counts.tolist()
    ox_l = origin_x.tolist()
    oy_l = origin_y.tolist()
    tx_l = target_x.tolist()
    ty_l = target_y.tolist()
    rx_l = realized_x.tolist()
    ry_l = realized_y.tolist()
    moved_l = moved.tolist()
    offset = 0
    stopping: List[_Lane] = []
    for lane, executed, stop, _ in walked:
        count = len(executed)
        if count:
            arrays = lane.sim._state.arrays
            robot_id_list = [a.robot_id for a in executed]
            start_l = [a.move_start_time for a in executed]
            end_l = [a.end_time for a in executed]
            records_append = lane.records.append
            aet = lane.aet
            for j, activation in enumerate(executed):
                a = offset + j
                records_append(
                    ActivationRecord(
                        activation=activation,
                        origin=Point(ox_l[a], oy_l[a]),
                        target=Point(tx_l[a], ty_l[a]),
                        destination=Point(rx_l[a], ry_l[a]),
                        neighbours_seen=vis_l[a],
                        moved_distance=moved_l[a],
                    )
                )
                aet[robot_id_list[j]].append(end_l[j])
            robot_ids = np.asarray(robot_id_list, dtype=np.intp)
            arrays.activation_count[robot_ids] += 1
            arrays.move_origin[robot_ids] = arrays.position[robot_ids]
            arrays.move_destination[robot_ids, 0] = rx_l[offset : offset + count]
            arrays.move_destination[robot_ids, 1] = ry_l[offset : offset + count]
            arrays.move_start[robot_ids] = start_l
            arrays.move_end[robot_ids] = end_l
            arrays.phase[robot_ids] = PHASE_MOVING
        offset += count
        if stop:
            stopping.append(lane)
    if stopping:
        _finish_group(stopping)


def _drive(lanes: List[_Lane], pool: Optional[FanoutPool], fanout_min: int) -> None:
    """The global iteration loop: one validated round per active lane."""
    while True:
        rounds: List[Tuple[_Lane, List[tuple]]] = []
        finishing: List[_Lane] = []
        for lane in lanes:
            if lane.status != "active":
                continue
            sim = lane.sim
            cfg = sim.config
            if (
                lane.processed >= cfg.max_activations
                or lane.popped >= 100 * cfg.max_activations
            ):
                finishing.append(lane)
                continue
            if not sim._pending and not sim._refill():
                finishing.append(lane)
                continue
            entries = sim._validated_round()
            if entries is None:
                if sim._pending and min(sim._pending)[0] > cfg.max_time:
                    # Serial pops the earliest entry past the horizon and
                    # stops; the pop changes no observable state.
                    lane.popped += 1
                    finishing.append(lane)
                else:
                    # The scheduler produced a batch the round fast path
                    # cannot consume — bail out to a from-scratch serial
                    # re-run, which is always bit-safe.
                    lane.status = "fallback"
                continue
            rounds.append((lane, entries))
        if finishing:
            _finish_group(finishing)
        if not rounds:
            break
        scalar_rounds: List[Tuple[_Lane, List[tuple]]] = []
        groups: Dict[tuple, List[Tuple[_Lane, List[tuple]]]] = {}
        for lane, entries in rounds:
            if lane.vector_ok:
                key = (lane.sim.n_robots, lane.effective)
                groups.setdefault(key, []).append((lane, entries))
            else:
                scalar_rounds.append((lane, entries))
        vector_groups = []
        for (n, effective), group_members in groups.items():
            tensor = np.stack(
                [lane.sim._state.arrays.position for lane, _ in group_members]
            )
            grid = ShardedGridIndex.from_replicates(tensor, effective + 2.0 * EPS)
            flat_xy = tensor.reshape(-1, 2)
            hazard = _collapse_hazard_lanes(flat_xy, len(group_members), n)
            vector_members = []
            for member_index, (lane, entries) in enumerate(group_members):
                if hazard[member_index]:
                    # A (near-)coincident pair: the coincidence collapse
                    # may engage, so take the exact serial path this round.
                    scalar_rounds.append((lane, entries))
                else:
                    vector_members.append((lane, entries, member_index))
            if vector_members:
                vector_groups.append((vector_members, grid, flat_xy, n))
        for lane, entries in scalar_rounds:
            _advance_scalar_round(lane, entries)
        for vector_members, grid, flat_xy, n in vector_groups:
            _advance_vector_group(vector_members, grid, flat_xy, n, pool, fanout_min)


def run_replicated_simulations(
    factories: Sequence[LaneFactory],
    *,
    fanout_workers: Optional[int] = None,
    fanout_min_robots: Optional[int] = None,
) -> List[SimulationResult]:
    """Run every member of a replicate bundle, batched round-by-round.

    Returns one :class:`SimulationResult` per factory, in order, each
    bit-identical (timing aside) to ``Simulator(*factory()).run()``.
    ``fanout_workers=0`` disables the shared-memory process fan-out;
    ``None`` auto-sizes it (workers only ever start once a round crosses
    ``fanout_min_robots`` total robots, default
    :data:`~repro.engine.fanout.REPLICATE_FANOUT_MIN_ROBOTS`).
    """
    fanout_min = (
        REPLICATE_FANOUT_MIN_ROBOTS
        if fanout_min_robots is None
        else int(fanout_min_robots)
    )
    lanes: List[_Lane] = []
    fallback_indices: List[int] = []
    setup_cache: dict = {}
    config_cache: dict = {}
    for index, factory in enumerate(factories):
        positions, algorithm, scheduler, config = factory()
        sim = Simulator(positions, algorithm, scheduler, config)
        # Lanes started from byte-identical positions share one (frozen,
        # value-equal) initial Configuration instead of validating n
        # identical points per lane.
        config_key = (
            sim.config.visibility_range,
            sim._initial_position_rows.tobytes(),
        )
        shared = config_cache.get(config_key)
        if shared is None:
            config_cache[config_key] = sim.initial_configuration
        else:
            sim.initial_configuration = shared
        if not sim._round_batching:
            fallback_indices.append(index)
            continue
        lanes.append(_prepare_lane(index, sim, setup_cache))
    pool = None if fanout_workers == 0 else FanoutPool(fanout_workers)
    try:
        if lanes:
            _drive(lanes, pool, fanout_min)
    finally:
        if pool is not None:
            pool.close()
    results: List[Optional[SimulationResult]] = [None] * len(factories)
    for lane in lanes:
        if lane.status == "fallback" or lane.result is None:
            fallback_indices.append(lane.index)
        else:
            results[lane.index] = lane.result
    for index in fallback_indices:
        positions, algorithm, scheduler, config = factories[index]()
        results[index] = Simulator(positions, algorithm, scheduler, config).run()
    return results
