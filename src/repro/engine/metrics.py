"""Metric samples collected while a simulation runs.

The quantities tracked are exactly the ones the paper's analysis reasons
about: the diameter, perimeter and bounding-circle radius of the convex
hull of the robot positions (congregation, Section 5), the preservation of
the initial visibility edges (cohesion, Section 2.4 / Section 4) and the
minimum pairwise separation (collision monitoring).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from ..geometry.hull import ConvexHull
from ..geometry.point import PointLike, points_to_array
from ..geometry.sec import smallest_enclosing_circle
from ..geometry.tolerances import EPS
from ..model.visibility import Edge, visibility_edges
from .spatial_index import ShardedGridIndex

#: Above this many robots the collector switches from the dense
#: ``(n, n)`` squared-distance matrix to grid-local pair enumeration (the
#: dense matrix at 10^5 robots would be 80 GB); the extreme distances it
#: reports are bit-identical either way.
METRICS_DENSE_MAX = 2048


def min_pairwise_distance_grid(arr: np.ndarray, initial_cell: float) -> float:
    """Minimum pairwise distance via grid-local pairs, exact at any scale.

    :meth:`ShardedGridIndex.neighbour_pairs` covers every pair at
    distance at most the cell size, so a found minimum no larger than the
    cell size is the true global minimum (any uncovered pair is farther
    than the cell size); otherwise the cell size doubles and the search
    reruns.  The per-pair arithmetic (``dx*dx + dy*dy``, one square root
    after the reduction) matches the dense matrix path, so the returned
    float is bit-identical to ``sqrt(squared_distance_matrix(arr).min())``.
    """
    if len(arr) < 2:
        return 0.0
    # Components squared and summed left to right, exactly like the dense
    # matrix builders in any dimension.
    columns = [np.ascontiguousarray(arr[:, axis]) for axis in range(arr.shape[1])]
    cell = initial_cell
    if not math.isfinite(cell) or cell <= 0.0:
        cell = 1.0
    while True:
        shard = ShardedGridIndex(arr, cell)
        i, j = shard.neighbour_pairs()
        if len(i):
            squared = None
            for column in columns:
                delta = column[i] - column[j]
                term = delta * delta
                squared = term if squared is None else squared + term
            best = float(math.sqrt(squared.min()))
            if best <= cell:
                return best
        cell *= 2.0


@dataclass(frozen=True)
class MetricsSample:
    """One observation of the global configuration at a given time."""

    time: float
    hull_diameter: float
    hull_perimeter: float
    hull_radius: float
    min_pairwise_distance: float
    initial_edges_preserved: bool
    broken_edge_count: int
    activations_processed: int

    def converged(self, epsilon: float) -> bool:
        """Point-Convergence check at this sample."""
        return self.hull_diameter <= epsilon


@dataclass
class MetricsCollector:
    """Builds :class:`MetricsSample` objects against a fixed initial edge set."""

    visibility_range: float
    initial_edges: Set[Edge] = field(default_factory=set)
    samples: List[MetricsSample] = field(default_factory=list)
    cohesion_ever_violated: bool = False

    #: Samples taken at distinct record boundaries of one synchronous
    #: round see identical geometry; the kernel's batched round path may
    #: therefore compute one sample and replicate it (adjusting only
    #: ``activations_processed``) instead of re-observing.  A subclass
    #: whose ``observe`` carries extra per-call state should set this
    #: False to force one observe per boundary.
    supports_replicated_samples = True

    def bind_initial(self, positions: Sequence[PointLike]) -> None:
        """Record the initial visibility edges the cohesion predicate refers to.

        The edge set is also cached as a ``(|E|, 2)`` index array so every
        subsequent observation checks cohesion with one fancy-indexed
        gather instead of rebuilding an edge list.  Past
        ``METRICS_DENSE_MAX`` robots the edges are enumerated grid-locally
        (same ``<= V + EPS`` predicate on the same per-pair floats) and
        only the index arrays are materialised: ``initial_edges`` stays
        empty at that scale, as an ``initial_edges`` set with tens of
        millions of tuples would dwarf the simulation state itself.
        """
        arr = points_to_array(positions)
        if len(arr) > METRICS_DENSE_MAX:
            effective = self.visibility_range
            if math.isfinite(effective) and effective > 0.0:
                shard = ShardedGridIndex(arr, effective + 2.0 * EPS)
                i, j = shard.neighbour_pairs()
                x = np.ascontiguousarray(arr[:, 0])
                y = np.ascontiguousarray(arr[:, 1])
                dx = x[i] - x[j]
                dy = y[i] - y[j]
                keep = np.sqrt(dx * dx + dy * dy) <= effective + EPS
                i, j = i[keep], j[keep]
                order = np.lexsort((j, i))
                self.initial_edges = set()
                self._edge_i = np.ascontiguousarray(i[order])
                self._edge_j = np.ascontiguousarray(j[order])
                return
        self.initial_edges = visibility_edges(positions, self.visibility_range)
        self._build_edge_index()

    def _build_edge_index(self) -> None:
        """Cache ``initial_edges`` as contiguous per-endpoint index vectors.

        1D gathers are measurably cheaper than row gathers in the
        per-activation cohesion check.
        """
        if self.initial_edges:
            index = np.asarray(sorted(self.initial_edges), dtype=int)
            self._edge_i = np.ascontiguousarray(index[:, 0])
            self._edge_j = np.ascontiguousarray(index[:, 1])
        else:
            self._edge_i = None
            self._edge_j = None

    def observe(
        self, time: float, positions: Sequence[PointLike], activations_processed: int
    ) -> MetricsSample:
        """Sample the configuration at ``time`` and append it to the history.

        The hot path is array-native: the positions are stacked into one
        ``(n, 2)`` array and a single *squared*-distance matrix feeds the
        diameter and the minimum separation (one square root after the
        reduction — ``sqrt`` is monotone, so the extremes are bit-identical
        to reducing over rooted distances).  The cohesion check gathers
        only the cached initial-edge entries, and the bounding circle runs
        on the hull vertices only (the SEC of a point set equals the SEC
        of its convex hull).
        """
        arr = points_to_array(positions)
        n = len(arr)
        hull = ConvexHull.of_array(arr)
        if n > METRICS_DENSE_MAX:
            # The diameter of a point set is attained between two hull
            # vertices, so the quadratic scan only needs the (tiny) hull;
            # the minimum separation comes from grid-local pairs.  Both
            # reductions apply the dense path's per-pair arithmetic to the
            # extreme pair, so the reported floats are bit-identical.
            hull_arr = points_to_array(hull.vertices)
            hx = hull_arr[:, 0, None] - hull_arr[None, :, 0]
            hy = hull_arr[:, 1, None] - hull_arr[None, :, 1]
            diameter = float(math.sqrt((hx * hx + hy * hy).max()))
            min_pairwise = min_pairwise_distance_grid(arr, self.visibility_range)
            broken_count = self._broken_edge_count(arr)
        elif n >= 2:
            sq = self._squared_matrix(arr)
            diameter = float(math.sqrt(sq.max()))
            np.fill_diagonal(sq, math.inf)
            min_pairwise = float(math.sqrt(sq.min()))
            broken_count = self._broken_edge_count(arr)
        else:
            diameter = 0.0
            min_pairwise = 0.0
            broken_count = 0
        if broken_count:
            self.cohesion_ever_violated = True
        sample = MetricsSample(
            time=time,
            hull_diameter=diameter,
            hull_perimeter=hull.perimeter(),
            hull_radius=smallest_enclosing_circle(hull.vertices).radius if n else 0.0,
            min_pairwise_distance=min_pairwise,
            initial_edges_preserved=not broken_count,
            broken_edge_count=broken_count,
            activations_processed=activations_processed,
        )
        self.samples.append(sample)
        return sample

    def _squared_matrix(self, arr: np.ndarray) -> np.ndarray:
        """The squared-distance matrix, built into per-collector scratch buffers.

        ``observe`` runs once per processed activation, so the three
        ``(n, n)`` temporaries are allocated once and reused — the values
        are exactly :func:`squared_distance_matrix` of ``arr``.
        """
        n = len(arr)
        buffers = getattr(self, "_matrix_buffers", None)
        if buffers is None or buffers[0].shape[0] != n:
            buffers = (np.empty((n, n)), np.empty((n, n)))
            self._matrix_buffers = buffers
        dx, dy = buffers
        x = np.ascontiguousarray(arr[:, 0])
        y = np.ascontiguousarray(arr[:, 1])
        np.subtract(x[:, None], x[None, :], out=dx)
        np.subtract(y[:, None], y[None, :], out=dy)
        np.multiply(dx, dx, out=dx)
        np.multiply(dy, dy, out=dy)
        np.add(dx, dy, out=dx)
        return dx

    def _broken_edge_count(self, arr: np.ndarray) -> int:
        """How many initial visibility edges currently exceed the range."""
        i = getattr(self, "_edge_i", None)
        if i is None:
            if not self.initial_edges:
                return 0
            # initial_edges was assigned directly (without bind_initial).
            self._build_edge_index()
            i = self._edge_i
        j = self._edge_j
        x = np.ascontiguousarray(arr[:, 0])
        y = np.ascontiguousarray(arr[:, 1])
        dx = x[i] - x[j]
        dy = y[i] - y[j]
        lengths = np.sqrt(dx * dx + dy * dy)
        return int(np.count_nonzero(lengths > self.visibility_range + EPS))

    # -- history queries ------------------------------------------------------
    def latest(self) -> Optional[MetricsSample]:
        """Most recent sample, if any."""
        return self.samples[-1] if self.samples else None

    def diameters(self) -> List[float]:
        """Hull diameters over time."""
        return [s.hull_diameter for s in self.samples]

    def perimeters(self) -> List[float]:
        """Hull perimeters over time."""
        return [s.hull_perimeter for s in self.samples]

    def first_time_below(self, epsilon: float) -> Optional[float]:
        """Earliest sampled time the hull diameter was at most ``epsilon``."""
        for sample in self.samples:
            if sample.hull_diameter <= epsilon:
                return sample.time
        return None

    def monotone_hull_diameter(self, *, tolerance: float = 1e-9) -> bool:
        """True when the sampled hull diameter never increases beyond ``tolerance``."""
        diameters = self.diameters()
        return all(
            later <= earlier + tolerance for earlier, later in zip(diameters, diameters[1:])
        )

    def monotone_hull_perimeter(self, *, tolerance: float = 1e-9) -> bool:
        """True when the sampled hull perimeter never increases beyond ``tolerance``."""
        perimeters = self.perimeters()
        return all(
            later <= earlier + tolerance for earlier, later in zip(perimeters, perimeters[1:])
        )
