"""Metric samples collected while a simulation runs.

The quantities tracked are exactly the ones the paper's analysis reasons
about: the diameter, perimeter and bounding-circle radius of the convex
hull of the robot positions (congregation, Section 5), the preservation of
the initial visibility edges (cohesion, Section 2.4 / Section 4) and the
minimum pairwise separation (collision monitoring).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from ..geometry.hull import ConvexHull
from ..geometry.point import PointLike, pairwise_distance_matrix, points_to_array
from ..geometry.sec import smallest_enclosing_circle
from ..model.visibility import Edge, broken_edges_from_matrix, visibility_edges


@dataclass(frozen=True)
class MetricsSample:
    """One observation of the global configuration at a given time."""

    time: float
    hull_diameter: float
    hull_perimeter: float
    hull_radius: float
    min_pairwise_distance: float
    initial_edges_preserved: bool
    broken_edge_count: int
    activations_processed: int

    def converged(self, epsilon: float) -> bool:
        """Point-Convergence check at this sample."""
        return self.hull_diameter <= epsilon


@dataclass
class MetricsCollector:
    """Builds :class:`MetricsSample` objects against a fixed initial edge set."""

    visibility_range: float
    initial_edges: Set[Edge] = field(default_factory=set)
    samples: List[MetricsSample] = field(default_factory=list)
    cohesion_ever_violated: bool = False

    def bind_initial(self, positions: Sequence[PointLike]) -> None:
        """Record the initial visibility edges the cohesion predicate refers to."""
        self.initial_edges = visibility_edges(positions, self.visibility_range)

    def observe(
        self, time: float, positions: Sequence[PointLike], activations_processed: int
    ) -> MetricsSample:
        """Sample the configuration at ``time`` and append it to the history.

        The hot path is array-native: the positions are stacked into one
        ``(n, 2)`` array, the pairwise distance matrix is computed once, and
        the diameter, minimum separation and broken-edge check all read from
        it.  The bounding circle runs on the hull vertices only (the SEC of
        a point set equals the SEC of its convex hull).
        """
        arr = points_to_array(positions)
        n = len(arr)
        hull = ConvexHull.of_array(arr)
        if n >= 2:
            dist = pairwise_distance_matrix(arr)
            diameter = float(dist.max())
            min_pairwise = float(dist[~np.eye(n, dtype=bool)].min())
            broken = broken_edges_from_matrix(
                self.initial_edges, dist, self.visibility_range
            )
        else:
            diameter = 0.0
            min_pairwise = 0.0
            broken = set()
        if broken:
            self.cohesion_ever_violated = True
        sample = MetricsSample(
            time=time,
            hull_diameter=diameter,
            hull_perimeter=hull.perimeter(),
            hull_radius=smallest_enclosing_circle(hull.vertices).radius if n else 0.0,
            min_pairwise_distance=min_pairwise,
            initial_edges_preserved=not broken,
            broken_edge_count=len(broken),
            activations_processed=activations_processed,
        )
        self.samples.append(sample)
        return sample

    # -- history queries ------------------------------------------------------
    def latest(self) -> Optional[MetricsSample]:
        """Most recent sample, if any."""
        return self.samples[-1] if self.samples else None

    def diameters(self) -> List[float]:
        """Hull diameters over time."""
        return [s.hull_diameter for s in self.samples]

    def perimeters(self) -> List[float]:
        """Hull perimeters over time."""
        return [s.hull_perimeter for s in self.samples]

    def first_time_below(self, epsilon: float) -> Optional[float]:
        """Earliest sampled time the hull diameter was at most ``epsilon``."""
        for sample in self.samples:
            if sample.hull_diameter <= epsilon:
                return sample.time
        return None

    def monotone_hull_diameter(self, *, tolerance: float = 1e-9) -> bool:
        """True when the sampled hull diameter never increases beyond ``tolerance``."""
        diameters = self.diameters()
        return all(
            later <= earlier + tolerance for earlier, later in zip(diameters, diameters[1:])
        )

    def monotone_hull_perimeter(self, *, tolerance: float = 1e-9) -> bool:
        """True when the sampled hull perimeter never increases beyond ``tolerance``."""
        perimeters = self.perimeters()
        return all(
            later <= earlier + tolerance for earlier, later in zip(perimeters, perimeters[1:])
        )
