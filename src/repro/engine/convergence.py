"""Convergence-rate measures derived from a metric history.

The classical convergence-rate yardstick (used by Cohen-Peleg and
Cord-Landwehr et al., reviewed in Section 1.2.2 of the paper) is the
number of *rounds* needed to halve the diameter of the convex hull; in
asynchronous runs a round generalises to an *epoch*: a minimal period in
which every robot completes at least one activity cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsSample


@dataclass(frozen=True)
class ConvergenceSummary:
    """Headline convergence numbers for one run."""

    initial_diameter: float
    final_diameter: float
    converged: bool
    convergence_time: Optional[float]
    halvings_observed: int
    samples: int

    @property
    def reduction_factor(self) -> float:
        """How much the hull diameter shrank (>= 1 when it shrank at all)."""
        if self.final_diameter <= 0.0:
            return math.inf
        return self.initial_diameter / self.final_diameter


def summarize(samples: Sequence[MetricsSample], epsilon: float) -> ConvergenceSummary:
    """Summarise a metric history against a convergence threshold ``epsilon``."""
    if not samples:
        return ConvergenceSummary(0.0, 0.0, False, None, 0, 0)
    initial = samples[0].hull_diameter
    final = samples[-1].hull_diameter
    convergence_time = None
    for sample in samples:
        if sample.hull_diameter <= epsilon:
            convergence_time = sample.time
            break
    halvings = 0
    if initial > 0.0 and final > 0.0:
        halvings = int(math.floor(math.log2(initial / final))) if final < initial else 0
    elif initial > 0.0 and final == 0.0:
        halvings = 60
    return ConvergenceSummary(
        initial_diameter=initial,
        final_diameter=final,
        converged=convergence_time is not None,
        convergence_time=convergence_time,
        halvings_observed=halvings,
        samples=len(samples),
    )


def time_to_halve(samples: Sequence[MetricsSample]) -> Optional[float]:
    """Time at which the hull diameter first dropped to half its initial value."""
    if not samples:
        return None
    initial = samples[0].hull_diameter
    if initial <= 0.0:
        return samples[0].time
    target = initial / 2.0
    for sample in samples:
        if sample.hull_diameter <= target:
            return sample.time
    return None


def rounds_to_halve(samples: Sequence[MetricsSample], round_length: float = 1.0) -> Optional[float]:
    """Number of (synchronous) rounds to halve the hull diameter."""
    t = time_to_halve(samples)
    if t is None:
        return None
    return t / round_length


def epochs(activation_times: Dict[int, List[float]]) -> List[Tuple[float, float]]:
    """Partition of time into epochs: periods where every robot completed a cycle.

    ``activation_times`` maps each robot id to the sorted end times of its
    activity cycles.  Epoch boundaries are greedily chosen: each epoch ends
    at the earliest time by which every robot has completed at least one
    cycle that started after the epoch began.
    """
    if not activation_times or any(not times for times in activation_times.values()):
        return []
    per_robot = {rid: sorted(times) for rid, times in activation_times.items()}
    epoch_list: List[Tuple[float, float]] = []
    start = 0.0
    while True:
        ends = []
        for times in per_robot.values():
            future = [t for t in times if t >= start]
            if not future:
                return epoch_list
            ends.append(future[0])
        end = max(ends)
        epoch_list.append((start, end))
        start = math.nextafter(end, math.inf)


def epochs_to_converge(
    activation_times: Dict[int, List[float]],
    samples: Sequence[MetricsSample],
    epsilon: float,
) -> Optional[int]:
    """Number of epochs completed before the hull diameter dropped below ``epsilon``."""
    for sample in samples:
        if sample.hull_diameter <= epsilon:
            convergence_time = sample.time
            break
    else:
        return None
    count = 0
    for _, end in epochs(activation_times):
        if end >= convergence_time:
            return count + 1
        count += 1
    return count if count > 0 else None
