"""Event-driven continuous-time simulation engine for the OBLOT model."""

from .convergence import (
    ConvergenceSummary,
    epochs,
    epochs_to_converge,
    rounds_to_halve,
    summarize,
    time_to_halve,
)
from .metrics import MetricsCollector, MetricsSample
from .recorder import TrajectoryRecorder
from .simulator import SimulationConfig, SimulationResult, Simulator, run_simulation

__all__ = [
    "ConvergenceSummary",
    "MetricsCollector",
    "MetricsSample",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "TrajectoryRecorder",
    "epochs",
    "epochs_to_converge",
    "rounds_to_halve",
    "run_simulation",
    "summarize",
    "time_to_halve",
]
