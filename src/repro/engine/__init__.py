"""Event-driven continuous-time simulation engine for the OBLOT model."""

from .convergence import (
    ConvergenceSummary,
    epochs,
    epochs_to_converge,
    rounds_to_halve,
    summarize,
    time_to_halve,
)
from .metrics import MetricsCollector, MetricsSample
from .recorder import TrajectoryRecorder
from .simulator import SimulationConfig, SimulationResult, Simulator, run_simulation
from .spatial_index import (
    GRID_MIN_ROBOTS,
    GRID_MIN_ROBOTS_3D,
    UniformGridIndex,
    grid_auto_threshold,
)
from .state import EngineState

__all__ = [
    "ConvergenceSummary",
    "EngineState",
    "GRID_MIN_ROBOTS",
    "GRID_MIN_ROBOTS_3D",
    "grid_auto_threshold",
    "MetricsCollector",
    "MetricsSample",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "TrajectoryRecorder",
    "UniformGridIndex",
    "epochs",
    "epochs_to_converge",
    "rounds_to_halve",
    "run_simulation",
    "summarize",
    "time_to_halve",
]
