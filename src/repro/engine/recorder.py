"""Trajectory recording for simulations.

The recorder keeps, per robot, the piecewise-linear trajectory actually
travelled (one breakpoint per completed move) so that experiments and
examples can inspect or export full executions — for instance to verify
that a robot's path stayed inside a region, or to dump a run for plotting
outside this repository.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from ..geometry.point import Point, PointLike


@dataclass
class TrajectoryRecorder:
    """Per-robot piecewise-linear trajectories."""

    breakpoints: Dict[int, List[Tuple[float, Point]]] = field(default_factory=dict)

    def record(self, robot_id: int, time: float, position: PointLike) -> None:
        """Append a breakpoint for ``robot_id`` at ``time``."""
        self.breakpoints.setdefault(robot_id, []).append((float(time), Point.of(position)))

    def record_all(self, time: float, positions: Sequence[PointLike]) -> None:
        """Append a breakpoint for every robot at the same instant."""
        for robot_id, position in enumerate(positions):
            self.record(robot_id, time, position)

    def robot_ids(self) -> List[int]:
        """Robots with at least one breakpoint."""
        return sorted(self.breakpoints)

    def trajectory(self, robot_id: int) -> List[Tuple[float, Point]]:
        """Breakpoints of one robot, in recording order."""
        return list(self.breakpoints.get(robot_id, []))

    def position_at(self, robot_id: int, time: float) -> Optional[Point]:
        """Interpolated position of ``robot_id`` at ``time`` (None if unknown)."""
        points = self.breakpoints.get(robot_id)
        if not points:
            return None
        if time < points[0][0]:
            return points[0][1]
        for (t0, p0), (t1, p1) in zip(points, points[1:]):
            if t0 <= time <= t1:
                if t1 - t0 <= 0.0:
                    return p1
                return p0.lerp(p1, (time - t0) / (t1 - t0))
        return points[-1][1]

    def path_length(self, robot_id: int) -> float:
        """Total length of the recorded path of ``robot_id``."""
        points = self.breakpoints.get(robot_id, [])
        return sum(p0.distance_to(p1) for (_, p0), (_, p1) in zip(points, points[1:]))

    def to_dict(self) -> dict:
        """JSON-friendly representation of all trajectories."""
        return {
            str(robot_id): [[t, p.x, p.y] for t, p in points]
            for robot_id, points in self.breakpoints.items()
        }

    def dump_json(self, stream: TextIO) -> None:
        """Write the trajectories as JSON to an open text stream."""
        json.dump(self.to_dict(), stream, indent=2)

    @staticmethod
    def from_dict(data: dict) -> "TrajectoryRecorder":
        """Rebuild a recorder from :meth:`to_dict` output."""
        recorder = TrajectoryRecorder()
        for robot_id, points in data.items():
            for t, x, y in points:
                recorder.record(int(robot_id), float(t), Point(float(x), float(y)))
        return recorder
