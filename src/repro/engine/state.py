"""Array-native engine state: the simulator's structure-of-arrays core.

:class:`EngineState` owns one :class:`~repro.model.robot.KinematicArrays`
store for the whole swarm plus the per-robot :class:`Robot` views the
rest of the engine (and user code) interacts with.  Every hot query of
the main loop — interpolating all robots' positions at a Look instant,
finding the moves that completed before the current event — is a single
numpy expression over the contiguous arrays instead of a Python loop
over robot objects.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geometry.point import Point, PointLike
from ..model.robot import KinematicArrays, Robot


class EngineState:
    """The simulator's kinematic state: arrays first, robot views on top.

    The store itself is dimension-generic (any ``(n, d)``
    :class:`~repro.model.robot.KinematicArrays`); the per-robot
    :class:`Robot` views exist only in the planar case, where the
    object-style engine API needs them.  Build a planar state from points
    with the constructor, or a state of any dimension from an ``(n, d)``
    array with :meth:`from_array`.
    """

    __slots__ = ("arrays", "robots")

    def __init__(self, initial_positions: Sequence[PointLike]) -> None:
        self.arrays = KinematicArrays.from_positions(initial_positions)
        self.robots: List[Robot] = [
            Robot.view(self.arrays, i) for i in range(self.arrays.n)
        ]

    @classmethod
    def from_array(cls, positions: np.ndarray) -> "EngineState":
        """A state of any dimension from an ``(n, d)`` position array."""
        state = object.__new__(cls)
        state.arrays = KinematicArrays.from_array(positions)
        state.robots = (
            [Robot.view(state.arrays, i) for i in range(state.arrays.n)]
            if state.arrays.dim == 2
            else []
        )
        return state

    @property
    def n(self) -> int:
        """Number of robots in the store."""
        return self.arrays.n

    def positions_at(self, time: float, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Interpolated positions at ``time`` as an ``(m, 2)`` float array.

        With ``indices`` this evaluates only the requested rows (in the
        given order) — the form the grid-accelerated Look path uses to
        interpolate candidate robots only.
        """
        return self.arrays.positions_at(time, indices)

    def positions_at_points(self, time: float) -> List[Point]:
        """Interpolated positions at ``time`` as :class:`Point` objects."""
        arr = self.arrays.positions_at(time)
        return [Point(float(x), float(y)) for x, y in arr]

    def committed_positions(self) -> np.ndarray:
        """The committed positions array (origins of any in-flight moves)."""
        return self.arrays.position

    def completed_movers(self, now: float) -> np.ndarray:
        """Indices of robots whose in-flight move has ended by ``now``."""
        return self.arrays.completed_movers(now)

    def any_moving(self) -> bool:
        """True when at least one robot is mid-move."""
        return self.arrays.any_moving()
