"""repro: a reproduction of "Separating Bounded and Unbounded Asynchrony for
Autonomous Robots: Point Convergence with Limited Visibility" (PODC 2021).

The package provides:

* a computational-geometry substrate (``repro.geometry``);
* the OBLOT robot/configuration/error model (``repro.model``);
* all scheduler classes the paper discusses (``repro.schedulers``);
* the paper's convergence algorithm and every baseline (``repro.algorithms``);
* an event-driven continuous-time simulator (``repro.engine``);
* the paper's adversarial constructions (``repro.adversary``);
* workload generators, analysis helpers and one experiment module per
  reproduced figure/claim (``repro.workloads``, ``repro.analysis``,
  ``repro.experiments``).

Quickstart::

    from repro import (
        KKNPSAlgorithm, KAsyncScheduler, SimulationConfig, run_simulation,
        random_connected_configuration,
    )

    config = random_connected_configuration(20, seed=7)
    result = run_simulation(
        config.positions,
        KKNPSAlgorithm(k=2),
        KAsyncScheduler(k=2),
        SimulationConfig(max_activations=20000, k_bound=2),
    )
    print(result.converged, result.cohesion_maintained)
"""

from .algorithms import (
    AndoAlgorithm,
    CenterOfGravityAlgorithm,
    ConvergenceAlgorithm,
    KKNPSAlgorithm,
    KatreniakAlgorithm,
    MinboxAlgorithm,
    StationaryAlgorithm,
)
from .engine import (
    SimulationConfig,
    SimulationResult,
    Simulator,
    run_simulation,
)
from .geometry import Point
from .model import Configuration, MotionModel, PerceptionModel, Snapshot
from .schedulers import (
    AsyncScheduler,
    FSyncScheduler,
    KAsyncScheduler,
    KNestAScheduler,
    SSyncScheduler,
    ScriptedScheduler,
)
from .workloads import (
    clustered_configuration,
    grid_configuration,
    line_configuration,
    polygon_configuration,
    random_connected_configuration,
    random_disk_configuration,
    ring_configuration,
    two_robot_configuration,
)

__version__ = "1.0.0"

__all__ = [
    "AndoAlgorithm",
    "AsyncScheduler",
    "CenterOfGravityAlgorithm",
    "Configuration",
    "ConvergenceAlgorithm",
    "FSyncScheduler",
    "KAsyncScheduler",
    "KKNPSAlgorithm",
    "KNestAScheduler",
    "KatreniakAlgorithm",
    "MinboxAlgorithm",
    "MotionModel",
    "PerceptionModel",
    "Point",
    "SSyncScheduler",
    "ScriptedScheduler",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "Snapshot",
    "StationaryAlgorithm",
    "clustered_configuration",
    "grid_configuration",
    "line_configuration",
    "polygon_configuration",
    "random_connected_configuration",
    "random_disk_configuration",
    "ring_configuration",
    "run_simulation",
    "two_robot_configuration",
    "__version__",
]
