"""Axis-aligned minimal bounding boxes.

The Go-To-The-Centre-Of-Minbox (GCM) convergence algorithm of
Cord-Landwehr et al. (reviewed in Section 1.2.2 of the paper as the
asymptotically optimal unlimited-visibility baseline) moves robots toward
the centre of the minimal axis-aligned box containing all robot
positions.  This module provides that box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .point import Point, PointLike
from .tolerances import EPS


@dataclass(frozen=True)
class BoundingBox:
    """Closed axis-aligned box ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min - EPS or self.y_max < self.y_min - EPS:
            raise ValueError("bounding box must have non-negative extent")

    @staticmethod
    def of(points: Sequence[PointLike]) -> "BoundingBox":
        """Minimal axis-aligned box containing every point."""
        pts = [Point.of(p) for p in points]
        if not pts:
            raise ValueError("bounding box of an empty point set")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    def center(self) -> Point:
        """Centre of the box (the GCM target)."""
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def width(self) -> float:
        """Extent along x."""
        return self.x_max - self.x_min

    def height(self) -> float:
        """Extent along y."""
        return self.y_max - self.y_min

    def diagonal(self) -> float:
        """Length of the box diagonal (a convenient convergence measure)."""
        return Point(self.x_min, self.y_min).distance_to(Point(self.x_max, self.y_max))

    def area(self) -> float:
        """Area of the box."""
        return self.width() * self.height()

    def contains(self, point: PointLike, *, eps: float = EPS) -> bool:
        """Closed containment test."""
        p = Point.of(point)
        return (
            self.x_min - eps <= p.x <= self.x_max + eps
            and self.y_min - eps <= p.y <= self.y_max + eps
        )

    def contains_box(self, other: "BoundingBox", *, eps: float = EPS) -> bool:
        """True when ``other`` is nested inside this box."""
        return (
            other.x_min >= self.x_min - eps
            and other.x_max <= self.x_max + eps
            and other.y_min >= self.y_min - eps
            and other.y_max <= self.y_max + eps
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Box grown by ``margin`` on every side."""
        return BoundingBox(
            self.x_min - margin, self.y_min - margin, self.x_max + margin, self.y_max + margin
        )


def minbox_center(points: Sequence[PointLike]) -> Point:
    """Centre of the minimal axis-aligned bounding box of ``points``."""
    return BoundingBox.of(points).center()
