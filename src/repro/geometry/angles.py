"""Angle arithmetic and angular-sector utilities.

The paper's destination rule (Section 5) needs two angular computations:

* whether a robot lies in the convex hull of the *directions* of its
  distant neighbours (equivalently: whether those directions fit inside an
  open half-plane through the robot), and
* if they do fit, which two directions are *extreme*, i.e. define the
  smallest sector containing all of them (the complement of the maximum
  angular gap).

Both are provided here, together with the usual normalisation helpers and
the "signed turn angle" used by the Lemma-5 chain analysis and by the
Section-7 sliver construction.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from .point import Point, PointLike
from .tolerances import EPS

TWO_PI = 2.0 * math.pi


def normalize_angle(theta: float) -> float:
    """Map ``theta`` into ``(-pi, pi]``."""
    theta = math.fmod(theta, TWO_PI)
    if theta <= -math.pi:
        theta += TWO_PI
    elif theta > math.pi:
        theta -= TWO_PI
    return theta


def normalize_angle_positive(theta: float) -> float:
    """Map ``theta`` into ``[0, 2*pi)``."""
    theta = math.fmod(theta, TWO_PI)
    if theta < 0.0:
        theta += TWO_PI
    return theta


def angle_difference(a: float, b: float) -> float:
    """Signed difference ``a - b`` normalised into ``(-pi, pi]``."""
    return normalize_angle(a - b)


def angle_between(u: PointLike, v: PointLike) -> float:
    """Unsigned angle in ``[0, pi]`` between two non-zero vectors."""
    u, v = Point.of(u), Point.of(v)
    nu, nv = u.norm(), v.norm()
    if nu <= EPS or nv <= EPS:
        raise ValueError("angle between zero vectors is undefined")
    c = max(-1.0, min(1.0, u.dot(v) / (nu * nv)))
    return math.acos(c)


def signed_turn_angle(a: PointLike, b: PointLike, c: PointLike) -> float:
    """Signed turn at ``b`` when walking ``a -> b -> c``.

    Zero means the walk continues straight ahead; positive means a left
    (counter-clockwise) turn.  The Section-7 spiral places consecutive tail
    robots at a fixed turn angle ``psi`` from the supporting chord, and the
    sliver-flattening adversary drives this quantity to (essentially) zero.
    """
    a, b, c = Point.of(a), Point.of(b), Point.of(c)
    incoming = b - a
    outgoing = c - b
    return normalize_angle(outgoing.angle() - incoming.angle())


def interior_angle(a: PointLike, b: PointLike, c: PointLike) -> float:
    """Interior angle at vertex ``b`` of the triangle ``a b c``, in ``[0, pi]``."""
    a, b, c = Point.of(a), Point.of(b), Point.of(c)
    return angle_between(a - b, c - b)


def max_angular_gap(angles: Sequence[float]) -> Tuple[float, int, int]:
    """Largest gap between consecutive directions on the circle.

    Returns ``(gap, i, j)`` where ``gap`` is the size of the largest empty
    angular interval and ``i``/``j`` are indices (into ``angles``) of the
    directions bounding the gap: the gap runs counter-clockwise from
    ``angles[i]`` to ``angles[j]``.

    With a single direction the gap is the full circle bounded by that
    direction on both sides.
    """
    if not angles:
        raise ValueError("max_angular_gap of an empty direction set")
    normalized = [normalize_angle_positive(a) for a in angles]
    order = sorted(range(len(normalized)), key=lambda k: normalized[k])
    if len(order) == 1:
        return TWO_PI, order[0], order[0]
    best_gap = -1.0
    best_pair = (order[0], order[0])
    for idx in range(len(order)):
        i = order[idx]
        j = order[(idx + 1) % len(order)]
        gap = normalized[j] - normalized[i]
        if idx == len(order) - 1:
            gap += TWO_PI
        if gap > best_gap:
            best_gap = gap
            best_pair = (i, j)
    return best_gap, best_pair[0], best_pair[1]


def fits_in_open_halfplane(directions: Sequence[PointLike]) -> bool:
    """True when all directions fit strictly inside some open half-plane.

    Equivalently: the origin is *not* in the convex hull of the direction
    vectors.  The paper's destination rule keeps a robot stationary exactly
    when its distant neighbours do **not** fit in such a half-plane (the
    intersection of their safe regions is then the robot's own location).
    """
    angles = []
    for d in directions:
        p = Point.of(d)
        if p.norm() > EPS:
            angles.append(p.angle())
    if not angles:
        return False
    gap, _, _ = max_angular_gap(angles)
    return gap > math.pi + EPS


def extreme_directions(directions: Sequence[PointLike]) -> Tuple[int, int]:
    """Indices of the two directions bounding the smallest containing sector.

    Preconditions: the directions fit in an open half-plane (use
    :func:`fits_in_open_halfplane` first).  The returned pair ``(i, j)``
    spans the sector counter-clockwise from direction ``j`` to direction
    ``i`` (i.e. the *complement* of the maximum angular gap).
    """
    dirs = [Point.of(d) for d in directions]
    angles = [d.angle() for d in dirs]
    _, i, j = max_angular_gap(angles)
    return j, i


def sector_span(directions: Sequence[PointLike]) -> float:
    """Angular span of the smallest sector containing all directions."""
    dirs = [Point.of(d) for d in directions if Point.of(d).norm() > EPS]
    if not dirs:
        return 0.0
    gap, _, _ = max_angular_gap([d.angle() for d in dirs])
    return TWO_PI - gap


def directions_from(origin: PointLike, points: Iterable[PointLike]) -> List[Point]:
    """Unit direction vectors from ``origin`` to each point (skipping coincident points)."""
    origin = Point.of(origin)
    result: List[Point] = []
    for p in points:
        p = Point.of(p)
        if origin.distance_to(p) > EPS:
            result.append(origin.direction_to(p))
    return result
