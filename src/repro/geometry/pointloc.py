"""Build-once / query-many point location for the per-Look safe regions.

Every algorithm in the repo decides membership against the same three
region shapes: intersections of disks (the paper's distant safe regions,
Ando et al.'s disks), unions of disks (Katreniak's two-disk regions) and
fans of half-planes (the direction cones behind the stay-put rule).  The
naive decision loops over every disk for every query point; this module
builds a small locator structure *once* per snapshot and answers whole
query batches with two distance comparisons per point in the common case.

The certificate scheme
----------------------

Anchor the structure at a point ``c`` (the centroid of the disk centres).
For a query ``q`` at distance ``d = |q - c|``, the triangle inequality
gives per-disk bounds ``d - |c - c_i| <= |q - c_i| <= d + |c - c_i|``, so

* **intersection** of disks ``(c_i, r_i)``: ``q`` is inside *every* disk
  whenever ``d <= min_i (r_i - |c - c_i|) + eps`` (the *inner* base) and
  outside *some* disk whenever ``d > min_i (r_i + |c - c_i|) + eps`` (the
  *outer* base);
* **union**: dually with ``max`` — inside *some* disk whenever
  ``d <= max_i (r_i - |c - c_i|) + eps``, outside *all* whenever
  ``d > max_i (r_i + |c - c_i|) + eps``.

The tolerance ``eps`` shifts every per-disk threshold by the same
constant, so the minimising/maximising index never moves and the bases
can be built once and have ``eps`` folded in at query time.  Certificate
distances are evaluated with ``np.hypot`` and guarded by a conservative
slack band; only queries that land inside the band — or between the two
bases — fall through to the exact per-disk test, which evaluates the very
``math.hypot(center.x - qx, center.y - qy) <= radius + eps`` comparison
:meth:`repro.geometry.disk.Disk.contains` makes.  Because conjunction and
disjunction are order-independent, the batched verdicts are *bit-identical*
to looping :meth:`Disk.contains` over the same disks.

For large disk sets the exact fallback is hierarchical: disks are grouped
into blocks of :data:`BLOCK_SIZE`, each with its own anchored certificate
pair, so a fallback query visits ``O(m / BLOCK_SIZE)`` block certificates
and only opens the blocks its distance band straddles — the logarithmic
spirit of Kirkpatrick's point-location refinement, specialised to the
one-level hierarchy these region counts need.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .angles import extreme_directions, fits_in_open_halfplane
from .disk import Disk
from .point import Point
from .tolerances import EPS

#: Relative half-width of the slack band around each certificate
#: threshold.  ``np.hypot`` and the triangle-inequality folding are each
#: accurate to a few ulps, so anything comfortably above ``2**-40``
#: relative keeps the certificates sound; queries inside the band simply
#: take the exact path.
CERT_SLACK = 1e-9

#: Number of disks per block of the hierarchical exact fallback.
BLOCK_SIZE = 8


def _exact_distances(cx: float, cy: float, px: np.ndarray, py: np.ndarray) -> np.ndarray:
    """Per-point ``math.hypot`` distances — the scalar ``Disk.contains`` metric."""
    count = len(px)
    return np.fromiter(
        map(math.hypot, (cx - px).tolist(), (cy - py).tolist()),
        dtype=np.float64,
        count=count,
    )


class _DiskBlock:
    """One block of the exact-fallback hierarchy: disks plus local certificates."""

    __slots__ = ("disks", "ax", "ay", "inner", "outer", "reach")

    def __init__(self, disks: Sequence[Disk], reduce_fn) -> None:
        self.disks = list(disks)
        cx = np.array([d.center.x for d in self.disks], dtype=np.float64)
        cy = np.array([d.center.y for d in self.disks], dtype=np.float64)
        r = np.array([d.radius for d in self.disks], dtype=np.float64)
        self.ax = float(cx.mean())
        self.ay = float(cy.mean())
        spread = np.hypot(cx - self.ax, cy - self.ay)
        # reduce_fn is min for intersections, max for unions; eps is folded
        # in at query time (a constant shift never moves the arg-extreme).
        self.inner = float(reduce_fn(r - spread))
        self.outer = float(reduce_fn(r + spread))
        self.reach = float(spread.max() + r.max())


class DiskIntersectionLocator:
    """Batched membership in the intersection of closed disks.

    Build once per Look from the observing robot's distant safe regions
    (or any other conjunctive disk family); query many points with
    :meth:`contains_array`.  An empty family contains everything, matching
    ``all()`` over no disks.
    """

    def __init__(self, disks: Sequence[Disk]) -> None:
        self.disks: List[Disk] = list(disks)
        self._blocks: List[_DiskBlock] = [
            _DiskBlock(self.disks[i : i + BLOCK_SIZE], np.min)
            for i in range(0, len(self.disks), BLOCK_SIZE)
        ]
        if self._blocks:
            self._root = _DiskBlock(self.disks, np.min)

    def contains(self, point, *, eps: float = EPS) -> bool:
        """Scalar convenience wrapper over :meth:`contains_array`."""
        point = Point.of(point)
        return bool(
            self.contains_array(
                np.array([point.x]), np.array([point.y]), eps=eps
            )[0]
        )

    def contains_array(
        self, px: np.ndarray, py: np.ndarray, *, eps: float = EPS
    ) -> np.ndarray:
        """Boolean verdicts, bit-identical to ``all(d.contains(q, eps=eps))``."""
        px = np.ascontiguousarray(px, dtype=np.float64)
        py = np.ascontiguousarray(py, dtype=np.float64)
        if not self.disks:
            return np.ones(len(px), dtype=bool)
        root = self._root
        dq = np.hypot(px - root.ax, py - root.ay)
        band = CERT_SLACK * (1.0 + dq + root.reach)
        out = dq <= (root.inner + eps) - band
        undecided = np.flatnonzero(~out & (dq <= (root.outer + eps) + band))
        if len(undecided):
            out[undecided] = self._exact(px[undecided], py[undecided], eps)
        return out

    def _exact(self, px: np.ndarray, py: np.ndarray, eps: float) -> np.ndarray:
        """Exact conjunction over the block hierarchy with alive-set pruning."""
        ok = np.ones(len(px), dtype=bool)
        alive = np.arange(len(px), dtype=np.intp)
        for block in self._blocks:
            if not len(alive):
                break
            qx = px[alive]
            qy = py[alive]
            db = np.hypot(qx - block.ax, qy - block.ay)
            band = CERT_SLACK * (1.0 + db + block.reach)
            rejected = db > (block.outer + eps) + band
            accepted = db <= (block.inner + eps) - band
            open_block = np.flatnonzero(~accepted & ~rejected)
            good = ~rejected
            for disk in block.disks:
                if not len(open_block):
                    break
                dist = _exact_distances(
                    disk.center.x, disk.center.y, qx[open_block], qy[open_block]
                )
                inside = dist <= disk.radius + eps
                good[open_block[~inside]] = False
                open_block = open_block[inside]
            ok[alive[~good]] = False
            alive = alive[good]
        return ok


class DiskUnionLocator:
    """Batched membership in the union of closed disks (Katreniak regions).

    An empty family contains nothing, matching ``any()`` over no disks.
    """

    def __init__(self, disks: Sequence[Disk]) -> None:
        self.disks: List[Disk] = list(disks)
        self._blocks: List[_DiskBlock] = [
            _DiskBlock(self.disks[i : i + BLOCK_SIZE], np.max)
            for i in range(0, len(self.disks), BLOCK_SIZE)
        ]
        if self._blocks:
            self._root = _DiskBlock(self.disks, np.max)

    def contains(self, point, *, eps: float = EPS) -> bool:
        """Scalar convenience wrapper over :meth:`contains_array`."""
        point = Point.of(point)
        return bool(
            self.contains_array(
                np.array([point.x]), np.array([point.y]), eps=eps
            )[0]
        )

    def contains_array(
        self, px: np.ndarray, py: np.ndarray, *, eps: float = EPS
    ) -> np.ndarray:
        """Boolean verdicts, bit-identical to ``any(d.contains(q, eps=eps))``."""
        px = np.ascontiguousarray(px, dtype=np.float64)
        py = np.ascontiguousarray(py, dtype=np.float64)
        if not self.disks:
            return np.zeros(len(px), dtype=bool)
        root = self._root
        dq = np.hypot(px - root.ax, py - root.ay)
        band = CERT_SLACK * (1.0 + dq + root.reach)
        out = dq <= (root.inner + eps) - band
        undecided = np.flatnonzero(~out & (dq <= (root.outer + eps) + band))
        if len(undecided):
            out[undecided] = self._exact(px[undecided], py[undecided], eps)
        return out

    def _exact(self, px: np.ndarray, py: np.ndarray, eps: float) -> np.ndarray:
        """Exact disjunction over the block hierarchy with missing-set pruning."""
        found = np.zeros(len(px), dtype=bool)
        missing = np.arange(len(px), dtype=np.intp)
        for block in self._blocks:
            if not len(missing):
                break
            qx = px[missing]
            qy = py[missing]
            db = np.hypot(qx - block.ax, qy - block.ay)
            band = CERT_SLACK * (1.0 + db + block.reach)
            hit = db <= (block.inner + eps) - band
            open_block = np.flatnonzero(~hit & (db <= (block.outer + eps) + band))
            for disk in block.disks:
                if not len(open_block):
                    break
                dist = _exact_distances(
                    disk.center.x, disk.center.y, qx[open_block], qy[open_block]
                )
                inside = dist <= disk.radius + eps
                hit[open_block[inside]] = True
                open_block = open_block[~inside]
            found[missing[hit]] = True
            missing = missing[~hit]
        return found


class HalfplaneFan:
    """Batched strict membership in a fan of open half-planes through the origin.

    The fan is ``{q : q . d_i > 0 for every i}`` for a family of direction
    vectors ``d_i`` — the cone whose non-emptiness the stay-put rule tests
    with :func:`repro.geometry.angles.fits_in_open_halfplane`.  When the
    directions span less than a half-turn, any interior direction is a
    non-negative combination ``alpha e1 + beta e2`` of the two extreme
    directions with ``alpha + beta >= 1``, so ``q . d_i >= min(q . e1,
    q . e2)`` for every ``i``: two dot products decide each query point
    outside a slack band, and the band falls through to the full dot set.
    The reference semantics is the literal loop ``all(qx * dx + qy * dy
    > 0.0)`` over the stored directions, and the batched path reproduces
    it bit-identically.
    """

    def __init__(self, directions: Sequence[Point]) -> None:
        self.directions: List[Point] = [Point.of(d) for d in directions]
        self._dx = np.array([d.x for d in self.directions], dtype=np.float64)
        self._dy = np.array([d.y for d in self.directions], dtype=np.float64)
        self._extremes: Optional[Tuple[int, int]] = None
        if len(self.directions) >= 2 and fits_in_open_halfplane(self.directions):
            self._extremes = extreme_directions(self.directions)

    def contains(self, point) -> bool:
        """Scalar convenience wrapper over :meth:`contains_array`."""
        point = Point.of(point)
        return bool(self.contains_array(np.array([point.x]), np.array([point.y]))[0])

    def contains_array(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """Boolean verdicts, bit-identical to the all-dots-positive loop."""
        px = np.ascontiguousarray(px, dtype=np.float64)
        py = np.ascontiguousarray(py, dtype=np.float64)
        if not self.directions:
            return np.ones(len(px), dtype=bool)
        if self._extremes is None:
            return self._exact(px, py, np.arange(len(px), dtype=np.intp), len(px))
        i, j = self._extremes
        dot_i = px * self._dx[i] + py * self._dy[i]
        dot_j = px * self._dx[j] + py * self._dy[j]
        low = np.minimum(dot_i, dot_j)
        scale = np.hypot(px, py) * max(
            1.0, float(np.max(np.hypot(self._dx, self._dy)))
        )
        band = CERT_SLACK * (1.0 + scale)
        out = low > band
        # An extreme dot <= 0 is itself one of the reference dots, so the
        # reference conjunction is already False there: reject exactly.
        undecided = np.flatnonzero(~out & (low > 0.0))
        if len(undecided):
            out[undecided] = self._exact(px, py, undecided, len(undecided))
        return out

    def _exact(
        self, px: np.ndarray, py: np.ndarray, idx: np.ndarray, count: int
    ) -> np.ndarray:
        qx = px[idx]
        qy = py[idx]
        ok = np.ones(count, dtype=bool)
        for dx, dy in zip(self._dx.tolist(), self._dy.tolist()):
            ok &= (qx * dx + qy * dy) > 0.0
            if not ok.any():
                break
        return ok


def points_in_all_disks(
    disks: Sequence[Disk], px: np.ndarray, py: np.ndarray, *, eps: float = EPS
) -> np.ndarray:
    """One-shot batched form of :func:`repro.algorithms.safe_regions.point_respects_disks`."""
    return DiskIntersectionLocator(disks).contains_array(px, py, eps=eps)


def points_in_any_disk(
    disks: Sequence[Disk], px: np.ndarray, py: np.ndarray, *, eps: float = EPS
) -> np.ndarray:
    """One-shot batched union membership."""
    return DiskUnionLocator(disks).contains_array(px, py, eps=eps)
