"""Convex hulls and hull-based progress measures.

The congregation argument (Section 5 of the paper) measures progress
towards convergence with the convex hull of the robot locations: the hulls
of successive configurations are nested, and both the perimeter and the
radius of the smallest bounding circle decrease monotonically.  This
module provides the hull itself plus the perimeter/diameter/containment
operations the experiments assert on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .point import Point, PointLike, points_to_array
from .segment import distance_point_to_line, orientation
from .tolerances import EPS


# Points this deep inside the octagon of coordinate extremes (relative to
# the configuration's extent) are discarded before the chain walk.  The
# margin is three orders of magnitude above the chain's collinearity
# tolerance, so pruned points could never have appeared on (or influenced)
# the toleranced boundary.
_PREFILTER_MARGIN = 1e-6
_PREFILTER_MIN_POINTS = 16


def _prune_interior(unique: np.ndarray) -> np.ndarray:
    """Drop points safely interior to the hull (Akl-Toussaint prefilter).

    Takes the eight coordinate extremes (support points of the axis and
    diagonal directions, a convex CCW octagon), and removes every point
    farther than a safety margin inside *all* of its edges.  The
    survivors keep their lexicographic order, so the chain walk sees the
    same sequence it would have seen minus provably-interior points.
    """
    x, y = unique[:, 0], unique[:, 1]
    s, d = x + y, x - y
    stacked = np.stack((x, s, y, d))
    low = np.argmin(stacked, axis=1)
    high = np.argmax(stacked, axis=1)
    # Support points of the eight axis/diagonal directions, in CCW order.
    support = [
        int(low[0]),
        int(low[1]),
        int(low[2]),
        int(high[3]),
        int(high[0]),
        int(high[1]),
        int(high[2]),
        int(low[3]),
    ]
    corners: List[int] = []
    for i in support:
        if not corners or (i != corners[-1] and i != corners[0]):
            corners.append(i)
    if len(corners) < 3:
        return unique
    cx, cy = x[corners], y[corners]
    extent = max(float(cx.max() - cx.min()), float(cy.max() - cy.min()))
    if extent <= 0.0:
        return unique
    margin = _PREFILTER_MARGIN * extent
    # One broadcast evaluates every point against every octagon edge: the
    # signed distance left of edge a->b (CCW interior) must clear the
    # margin for all edges for a point to be pruned.
    ex = np.roll(cx, -1) - cx
    ey = np.roll(cy, -1) - cy
    lengths = np.hypot(ex, ey)
    valid = lengths > 0.0
    if not valid.any():
        return unique
    ex, ey, cx, cy, lengths = ex[valid], ey[valid], cx[valid], cy[valid], lengths[valid]
    offsets = (
        ex[:, None] * (y[None, :] - cy[:, None]) - ey[:, None] * (x[None, :] - cx[:, None])
    ) / lengths[:, None]
    interior = (offsets > margin).all(axis=0)
    if not interior.any():
        return unique
    return unique[~interior]


def convex_hull_array(array: np.ndarray) -> List[Point]:
    """Convex hull of an ``(n, 2)`` array, counter-clockwise (monotone chain).

    The input preparation is vectorized: deduplication and lexicographic
    sorting via ``np.unique`` over rows, then an interior-point prefilter
    that discards everything safely inside the octagon of coordinate
    extremes, so the Python chain walk only visits near-boundary points.
    Collinear points on the boundary are dropped.  Degenerate inputs (one
    point, or all-collinear points) return the one or two extreme points.
    """
    arr = np.asarray(array, dtype=float).reshape(-1, 2)
    # Prune before deduplicating: the filter needs only the coordinate
    # extremes, and it cuts the points the O(n log n) unique-sort touches.
    if len(arr) >= _PREFILTER_MIN_POINTS:
        arr = _prune_interior(arr)
    unique = np.unique(arr, axis=0) if len(arr) else arr
    m = len(unique)
    if m <= 2:
        return [Point(float(x), float(y)) for x, y in unique]

    xs: List[float] = unique[:, 0].tolist()
    ys: List[float] = unique[:, 1].tolist()

    def build(order: range) -> List[int]:
        chain: List[int] = []
        for i in order:
            while len(chain) >= 2:
                j, k = chain[-1], chain[-2]
                ax, ay = xs[j] - xs[k], ys[j] - ys[k]
                bx, by = xs[i] - xs[k], ys[i] - ys[k]
                # Drop the middle point only when the turn is (relatively)
                # non-left; the tolerance scales with the vector magnitudes so
                # that tiny-extent configurations are not over-collapsed.
                cross = ax * by - ay * bx
                norms = math.hypot(ax, ay) * math.hypot(bx, by)
                if cross <= EPS * max(norms, EPS):
                    chain.pop()
                else:
                    break
            chain.append(i)
        return chain

    lower = build(range(m))
    upper = build(range(m - 1, -1, -1))
    hull = lower[:-1] + upper[:-1]
    if not hull:
        # Fully collinear input: return the two extreme points.
        hull = [0, m - 1]
    return [Point(xs[i], ys[i]) for i in hull]


def convex_hull(points: Sequence[PointLike]) -> List[Point]:
    """Convex hull in counter-clockwise order (Andrew's monotone chain).

    Collinear points on the boundary are dropped.  Degenerate inputs (one
    point, or all-collinear points) return the one or two extreme points.
    """
    return convex_hull_array(points_to_array(points))


@dataclass(frozen=True)
class ConvexHull:
    """Convex hull of a point set, with the measures used by the paper."""

    vertices: tuple

    @staticmethod
    def of(points: Sequence[PointLike]) -> "ConvexHull":
        """Compute the hull of ``points``."""
        return ConvexHull(tuple(convex_hull(points)))

    @staticmethod
    def of_array(array: np.ndarray) -> "ConvexHull":
        """Compute the hull of an ``(n, 2)`` coordinate array."""
        return ConvexHull(tuple(convex_hull_array(array)))

    def __len__(self) -> int:
        return len(self.vertices)

    def perimeter(self) -> float:
        """Perimeter of the hull (0 for a single point, 2*length for a segment)."""
        verts = self.vertices
        if len(verts) < 2:
            return 0.0
        total = 0.0
        for i, v in enumerate(verts):
            total += v.distance_to(verts[(i + 1) % len(verts)])
        return total

    def area(self) -> float:
        """Area of the hull (shoelace formula)."""
        verts = self.vertices
        if len(verts) < 3:
            return 0.0
        total = 0.0
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            total += v.cross(w)
        return abs(total) / 2.0

    def diameter(self) -> float:
        """Largest pairwise distance between hull vertices."""
        verts = self.vertices
        if len(verts) < 2:
            return 0.0
        best = 0.0
        for i in range(len(verts)):
            for j in range(i + 1, len(verts)):
                best = max(best, verts[i].distance_to(verts[j]))
        return best

    def centroid(self) -> Point:
        """Arithmetic mean of the hull vertices."""
        verts = self.vertices
        if not verts:
            raise ValueError("centroid of an empty hull")
        sx = sum(v.x for v in verts)
        sy = sum(v.y for v in verts)
        return Point(sx / len(verts), sy / len(verts))

    def contains(self, point: PointLike, *, eps: float = EPS) -> bool:
        """Closed containment test, tolerant by ``eps``."""
        point = Point.of(point)
        verts = self.vertices
        if not verts:
            return False
        if len(verts) == 1:
            return verts[0].is_close(point, eps=eps)
        if len(verts) == 2:
            from .segment import Segment

            return Segment(verts[0], verts[1]).distance_to_point(point) <= eps
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            if (w - v).cross(point - v) < -eps * max(1.0, (w - v).norm()):
                return False
        return True

    def contains_hull(self, other: "ConvexHull", *, eps: float = EPS) -> bool:
        """True when every vertex of ``other`` lies in this hull (hull nesting)."""
        return all(self.contains(v, eps=eps) for v in other.vertices)

    def distance_to_point(self, point: PointLike) -> float:
        """Distance from ``point`` to the hull (0 if inside)."""
        point = Point.of(point)
        if self.contains(point):
            return 0.0
        from .segment import Segment

        verts = self.vertices
        if len(verts) == 1:
            return verts[0].distance_to(point)
        best = math.inf
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            best = min(best, Segment(v, w).distance_to_point(point))
        return best


def hulls_nested(outer: Sequence[PointLike], inner: Sequence[PointLike], *, eps: float = 1e-7) -> bool:
    """True when the hull of ``inner`` is contained in the hull of ``outer``.

    This is the paper's incremental-congregation invariant
    ``CH_{t+} ⊆ CH_t``.
    """
    return ConvexHull.of(outer).contains_hull(ConvexHull.of(inner), eps=eps)


def hull_perimeter(points: Sequence[PointLike]) -> float:
    """Perimeter of the convex hull of ``points``."""
    return ConvexHull.of(points).perimeter()


def hull_diameter(points: Sequence[PointLike]) -> float:
    """Diameter of the convex hull of ``points``."""
    return ConvexHull.of(points).diameter()


def hull_radius(points: Sequence[PointLike]) -> float:
    """Radius of the smallest circle enclosing the hull of ``points``."""
    from .sec import smallest_enclosing_circle

    return smallest_enclosing_circle(points).radius
