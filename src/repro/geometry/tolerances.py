"""Numeric tolerances used throughout the geometry substrate.

All geometry in this package is carried out in float64.  The paper's
constructions keep every relevant quantity bounded away from its threshold
by a constant (or by Theta(psi) for the Section-7 spiral), so a single
absolute/relative tolerance pair is sufficient for membership and
comparison predicates.  Experiments that need a looser or tighter
tolerance pass it explicitly.
"""

from __future__ import annotations

#: Default absolute tolerance for geometric predicates (membership,
#: collinearity, coincidence).  Distances in this package are expressed in
#: units of the visibility range, so 1e-9 is nine orders of magnitude below
#: any quantity of interest.
EPS = 1e-9

#: Relative tolerance used when comparing lengths of the same magnitude.
REL_EPS = 1e-12


def close(a: float, b: float, *, eps: float = EPS) -> bool:
    """Return ``True`` when ``a`` and ``b`` differ by at most ``eps``."""
    return abs(a - b) <= eps


def leq(a: float, b: float, *, eps: float = EPS) -> bool:
    """Tolerant ``a <= b``."""
    return a <= b + eps


def geq(a: float, b: float, *, eps: float = EPS) -> bool:
    """Tolerant ``a >= b``."""
    return a >= b - eps


def positive(a: float, *, eps: float = EPS) -> bool:
    """Tolerant strict positivity: ``a > eps``."""
    return a > eps
