"""The paper's reachable region ``R^r_{Y0}(X0, X1)`` (core + bulge).

Section 3.2.1 of the paper introduces, for a robot ``Y`` located at
``Y0`` watching another robot ``X`` moving from ``X0`` to ``X1``, the
region ``R^r_{Y0}(X0, X1)`` that over-approximates every point ``Y`` can
reach by making up to ``k`` moves, each confined to the current
``1/k``-scaled safe region with respect to the *current* position of
``X`` (Lemmas 1 and 2).  The region is the union of

* the **core**: all disks of radius ``r`` whose centres lie at distance
  ``r`` from ``Y0`` in the direction of some point of the segment
  ``X0 X1``; and
* the **bulge**: the intersection of four disks determined by the two
  extreme core circles (see Figure 5 of the paper).

The membership tests here are what the Lemma-1/Lemma-2 Monte-Carlo
verification benches (`benchmarks/bench_lemma_regions.py`) exercise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional

import numpy as np

from .disk import Disk
from .point import Point, PointLike
from .segment import Segment
from .tolerances import EPS


def offset_disk(origin: PointLike, toward: PointLike, radius: float) -> Disk:
    """Disk of radius ``radius`` centred at distance ``radius`` from ``origin`` toward ``toward``.

    This is the shape of every safe region in the paper's algorithm:
    ``S^{r}_{Y0}(X0) = offset_disk(Y0, X0, r)``.  When ``origin`` and
    ``toward`` coincide the disk degenerates to the single point
    ``origin`` (radius 0), matching the convention that a robot with a
    coincident neighbour does not move because of it.
    """
    origin, toward = Point.of(origin), Point.of(toward)
    if origin.distance_to(toward) <= EPS:
        return Disk(origin, 0.0)
    center = origin.toward(toward, radius)
    return Disk(center, radius)


@dataclass(frozen=True)
class ReachableRegion:
    """``R^r_{Y0}(X0, X1)``: core plus bulge, with membership tests."""

    observer: Point
    x_start: Point
    x_end: Point
    radius: float

    @staticmethod
    def of(
        observer: PointLike, x_start: PointLike, x_end: PointLike, radius: float
    ) -> "ReachableRegion":
        """Build the region for observer ``Y0`` and neighbour trajectory ``X0 -> X1``."""
        return ReachableRegion(
            Point.of(observer), Point.of(x_start), Point.of(x_end), float(radius)
        )

    # -- core ---------------------------------------------------------------
    def core_center(self, t: float) -> Point:
        """Centre of the core disk parameterised by ``t`` along ``X0 X1``."""
        x_star = self.x_start.lerp(self.x_end, t)
        if self.observer.distance_to(x_star) <= EPS:
            return self.observer
        return self.observer.toward(x_star, self.radius)

    def core_disk(self, t: float) -> Disk:
        """Core disk parameterised by ``t`` along ``X0 X1``."""
        return Disk(self.core_center(t), self.radius)

    def distance_to_core_center(self, point: PointLike, *, samples: int = 129) -> float:
        """Minimum distance from ``point`` to any core-disk centre.

        Evaluated by dense sampling along ``X0 X1`` followed by a local
        golden-section refinement around the best sample; accurate to well
        below the tolerances used by the verification benches.
        """
        point = Point.of(point)
        if samples < 2:
            samples = 2
        best_t, best_d = 0.0, math.inf
        for i in range(samples):
            t = i / (samples - 1)
            d = point.distance_to(self.core_center(t))
            if d < best_d:
                best_t, best_d = t, d
        # Local refinement in the bracket around the best sample.
        step = 1.0 / (samples - 1)
        lo, hi = max(0.0, best_t - step), min(1.0, best_t + step)
        for _ in range(60):
            m1 = lo + (hi - lo) / 3.0
            m2 = hi - (hi - lo) / 3.0
            d1 = point.distance_to(self.core_center(m1))
            d2 = point.distance_to(self.core_center(m2))
            if d1 < d2:
                hi = m2
            else:
                lo = m1
        t = (lo + hi) / 2.0
        return min(best_d, point.distance_to(self.core_center(t)))

    def in_core(self, point: PointLike, *, eps: float = EPS, samples: int = 129) -> bool:
        """True when ``point`` belongs to the core."""
        return self.distance_to_core_center(point, samples=samples) <= self.radius + eps

    # -- bulge ---------------------------------------------------------------
    def _extreme_points(self) -> Optional[tuple]:
        """The extreme boundary points ``Y0+`` and ``Y0-`` of Figure 5.

        ``Y0+`` lies on the core circle toward ``X0`` and is the point of
        that circle farthest from ``X1``; ``Y0-`` lies on the core circle
        toward ``X1`` and is farthest from ``X0``.  Returns ``None`` when
        the observer coincides with one of the endpoints (degenerate).
        """
        if (
            self.observer.distance_to(self.x_start) <= EPS
            or self.observer.distance_to(self.x_end) <= EPS
        ):
            return None
        plus_disk = offset_disk(self.observer, self.x_start, self.radius)
        minus_disk = offset_disk(self.observer, self.x_end, self.radius)
        y_plus = plus_disk.farthest_point_from(self.x_end)
        y_minus = minus_disk.farthest_point_from(self.x_start)
        return y_plus, y_minus

    def bulge_disks(self) -> List[Disk]:
        """The four disks whose intersection is the bulge (empty list if degenerate)."""
        extremes = self._extreme_points()
        if extremes is None:
            return []
        y_plus, y_minus = extremes
        return [
            Disk(self.x_end, self.x_end.distance_to(y_plus)),
            Disk(self.observer, self.observer.distance_to(y_plus)),
            Disk(self.x_start, self.x_start.distance_to(y_minus)),
            Disk(self.observer, self.observer.distance_to(y_minus)),
        ]

    @cached_property
    def _bulge_locator(self):
        """Build-once point locator for the bulge's four-disk intersection."""
        from .pointloc import DiskIntersectionLocator

        return DiskIntersectionLocator(self.bulge_disks())

    def in_bulge(self, point: PointLike, *, eps: float = EPS) -> bool:
        """True when ``point`` belongs to the bulge."""
        locator = self._bulge_locator
        if not locator.disks:
            return False
        return locator.contains(Point.of(point), eps=eps)

    def in_bulge_array(self, px, py, *, eps: float = EPS):
        """Vectorized :meth:`in_bulge`, bit-identical per point."""
        locator = self._bulge_locator
        if not locator.disks:
            return np.zeros(len(px), dtype=bool)
        return locator.contains_array(px, py, eps=eps)

    # -- full region --------------------------------------------------------
    def contains(self, point: PointLike, *, eps: float = EPS, samples: int = 129) -> bool:
        """True when ``point`` belongs to ``R^r_{Y0}(X0, X1)`` (core or bulge)."""
        return self.in_core(point, eps=eps, samples=samples) or self.in_bulge(point, eps=eps)

    def expanded(self, extra_radius: float) -> "ReachableRegion":
        """The region with radius grown by ``extra_radius`` (same observer/trajectory).

        The induction step of Lemma 2 states that
        ``R^{r + aV/8}_{Y0}(X0, X1)`` contains every ``a``-scaled safe
        region anchored at a point of ``R^{r}_{Y0}(X0, X1)``.
        """
        return ReachableRegion(self.observer, self.x_start, self.x_end, self.radius + extra_radius)

    def is_stationary_trajectory(self) -> bool:
        """True when the observed robot does not move (``X0 == X1``)."""
        return self.x_start.is_close(self.x_end)

    def coincides_with_safe_region(self) -> Optional[Disk]:
        """For a stationary trajectory the region is exactly the safe region disk.

        This is Observation 1(i) of the paper.  Returns the disk, or
        ``None`` when the trajectory is not stationary.
        """
        if not self.is_stationary_trajectory():
            return None
        return offset_disk(self.observer, self.x_start, self.radius)
