"""Computational-geometry substrate for the reproduction.

Everything the simulator, the algorithms and the adversarial
constructions need: points, segments, disks, smallest enclosing circles,
convex hulls, bounding boxes, angular sectors, the paper's reachable
region ``R^r_{Y0}(X0, X1)`` and local coordinate frames / distortions.
"""

from .angles import (
    angle_between,
    angle_difference,
    directions_from,
    extreme_directions,
    fits_in_open_halfplane,
    interior_angle,
    max_angular_gap,
    normalize_angle,
    normalize_angle_positive,
    sector_span,
    signed_turn_angle,
)
from .disk import Disk, disks_common_point, farthest_point_in_disk_from, lens_center
from .hull import (
    ConvexHull,
    convex_hull,
    convex_hull_array,
    hull_diameter,
    hull_perimeter,
    hull_radius,
    hulls_nested,
)
from .minbox import BoundingBox, minbox_center
from .point import (
    Point,
    PointLike,
    array_to_points,
    centroid,
    max_pairwise_distance,
    min_pairwise_distance,
    min_pairwise_distance_from_matrix,
    pairwise_distance_matrix,
    pairwise_distances,
    points_to_array,
)
from .region import ReachableRegion, offset_disk
from .sec import (
    critical_points,
    is_valid_enclosing_circle,
    sec_center,
    sec_radius,
    smallest_enclosing_circle,
)
from .segment import (
    Segment,
    clamp_motion,
    collinear,
    distance_point_to_line,
    foot_of_perpendicular,
    orientation,
    perpendicular_bisector_intersection,
)
from .tolerances import EPS
from .transforms import LocalFrame, SymmetricDistortion, random_frame

__all__ = [
    "EPS",
    "Point",
    "PointLike",
    "Segment",
    "Disk",
    "BoundingBox",
    "ConvexHull",
    "ReachableRegion",
    "LocalFrame",
    "SymmetricDistortion",
    "angle_between",
    "angle_difference",
    "array_to_points",
    "centroid",
    "clamp_motion",
    "collinear",
    "convex_hull",
    "convex_hull_array",
    "critical_points",
    "directions_from",
    "disks_common_point",
    "distance_point_to_line",
    "extreme_directions",
    "farthest_point_in_disk_from",
    "fits_in_open_halfplane",
    "foot_of_perpendicular",
    "hull_diameter",
    "hull_perimeter",
    "hull_radius",
    "hulls_nested",
    "interior_angle",
    "is_valid_enclosing_circle",
    "lens_center",
    "max_angular_gap",
    "max_pairwise_distance",
    "min_pairwise_distance",
    "min_pairwise_distance_from_matrix",
    "minbox_center",
    "pairwise_distance_matrix",
    "normalize_angle",
    "normalize_angle_positive",
    "offset_disk",
    "orientation",
    "pairwise_distances",
    "perpendicular_bisector_intersection",
    "points_to_array",
    "random_frame",
    "sec_center",
    "sec_radius",
    "sector_span",
    "signed_turn_angle",
    "smallest_enclosing_circle",
]
