"""Smallest enclosing circle (Welzl's algorithm).

Ando et al.'s Go-To-The-Centre-Of-The-SEC algorithm moves each robot
toward the centre of the smallest circle enclosing all robots it can see;
the congregation analysis in Section 5 of the paper also reasons about the
smallest circle bounding the convex hull.  This module provides a robust,
deterministic (seedable) expected-linear-time implementation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .disk import Disk
from .point import Point, PointLike
from .segment import perpendicular_bisector_intersection
from .tolerances import EPS


def _circle_from_two(a: Point, b: Point) -> Disk:
    center = a.midpoint(b)
    return Disk(center, a.distance_to(b) / 2.0)


def _circle_from_three(a: Point, b: Point, c: Point) -> Optional[Disk]:
    center = perpendicular_bisector_intersection(a, b, c)
    if center is None:
        return None
    return Disk(center, center.distance_to(a))


def _is_in(disk: Optional[Disk], p: Point) -> bool:
    return disk is not None and disk.contains(p, eps=1e-7 * max(1.0, disk.radius))


def _trivial(boundary: Sequence[Point]) -> Optional[Disk]:
    if not boundary:
        return None
    if len(boundary) == 1:
        return Disk(boundary[0], 0.0)
    if len(boundary) == 2:
        return _circle_from_two(boundary[0], boundary[1])
    # Three boundary points: try all pairs first (one may dominate), then the
    # circumcircle.  The pair acceptance uses a tight relative tolerance so a
    # point that is genuinely (if barely) outside falls through to the
    # circumcircle, which contains all three exactly.
    for i in range(3):
        for j in range(i + 1, 3):
            d = _circle_from_two(boundary[i], boundary[j])
            if all(d.contains(q, eps=1e-12 * max(1.0, d.radius)) for q in boundary):
                return d
    return _circle_from_three(boundary[0], boundary[1], boundary[2])


def smallest_enclosing_circle(
    points: Sequence[PointLike], *, seed: Optional[int] = 0
) -> Disk:
    """Smallest closed disk containing every point in ``points``.

    Uses Welzl's randomised incremental algorithm (iterative variant).  The
    shuffle is seeded (default seed 0) so results are reproducible; pass
    ``seed=None`` for an unshuffled run, which is fine for the small point
    sets a robot sees.
    """
    pts = [Point.of(p) for p in points]
    if not pts:
        raise ValueError("smallest enclosing circle of an empty point set")
    if seed is not None and len(pts) > 3:
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(pts))
        pts = [pts[i] for i in order]

    disk: Optional[Disk] = None
    for i, p in enumerate(pts):
        if _is_in(disk, p):
            continue
        # p must be on the boundary of the smallest circle of pts[:i + 1]
        disk = Disk(p, 0.0)
        for j in range(i):
            q = pts[j]
            if _is_in(disk, q):
                continue
            disk = _circle_from_two(p, q)
            for k in range(j):
                r = pts[k]
                if _is_in(disk, r):
                    continue
                candidate = _trivial([p, q, r])
                if candidate is None:
                    # Collinear triple: fall back to the diametral pair.
                    far_pair = max(
                        ((a, b) for a in (p, q, r) for b in (p, q, r)),
                        key=lambda ab: ab[0].distance_to(ab[1]),
                    )
                    candidate = _circle_from_two(*far_pair)
                disk = candidate
    assert disk is not None
    return disk


def sec_center(points: Sequence[PointLike], *, seed: Optional[int] = 0) -> Point:
    """Centre of the smallest enclosing circle of ``points``."""
    return smallest_enclosing_circle(points, seed=seed).center


def sec_radius(points: Sequence[PointLike], *, seed: Optional[int] = 0) -> float:
    """Radius of the smallest enclosing circle of ``points``."""
    return smallest_enclosing_circle(points, seed=seed).radius


def is_valid_enclosing_circle(
    disk: Disk, points: Sequence[PointLike], *, eps: float = 1e-7
) -> bool:
    """Check that ``disk`` contains every point (a convenient test helper)."""
    return all(disk.contains(p, eps=eps) for p in points)


def critical_points(
    disk: Disk, points: Sequence[PointLike], *, eps: float = 1e-6
) -> list[Point]:
    """Points lying (within ``eps``) on the boundary of ``disk``.

    The congregation argument of Section 5 works with the up-to-three
    critical points of the smallest circle bounding the convex hull.
    """
    result = []
    for p in points:
        p = Point.of(p)
        if abs(disk.center.distance_to(p) - disk.radius) <= eps:
            result.append(p)
    return result
