"""Smallest enclosing circle (Welzl's algorithm).

Ando et al.'s Go-To-The-Centre-Of-The-SEC algorithm moves each robot
toward the centre of the smallest circle enclosing all robots it can see;
the congregation analysis in Section 5 of the paper also reasons about the
smallest circle bounding the convex hull.  This module provides a robust,
deterministic (seedable) expected-linear-time implementation.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Sequence

import numpy as np

from .disk import Disk
from .point import Point, PointLike
from .segment import perpendicular_bisector_intersection
from .tolerances import EPS


def _circle_from_two(a: Point, b: Point) -> Disk:
    center = a.midpoint(b)
    return Disk(center, a.distance_to(b) / 2.0)


def _circle_from_three(a: Point, b: Point, c: Point) -> Optional[Disk]:
    center = perpendicular_bisector_intersection(a, b, c)
    if center is None:
        return None
    return Disk(center, center.distance_to(a))


def _is_in(disk: Optional[Disk], p: Point) -> bool:
    return disk is not None and disk.contains(p, eps=1e-7 * max(1.0, disk.radius))


def _trivial(boundary: Sequence[Point]) -> Optional[Disk]:
    if not boundary:
        return None
    if len(boundary) == 1:
        return Disk(boundary[0], 0.0)
    if len(boundary) == 2:
        return _circle_from_two(boundary[0], boundary[1])
    # Three boundary points: try all pairs first (one may dominate), then the
    # circumcircle.  The pair acceptance uses a tight relative tolerance so a
    # point that is genuinely (if barely) outside falls through to the
    # circumcircle, which contains all three exactly.
    for i in range(3):
        for j in range(i + 1, 3):
            d = _circle_from_two(boundary[i], boundary[j])
            if all(d.contains(q, eps=1e-12 * max(1.0, d.radius)) for q in boundary):
                return d
    return _circle_from_three(boundary[0], boundary[1], boundary[2])


@lru_cache(maxsize=64)
def _seeded_order(n: int, seed: int) -> tuple:
    """The (cached) seeded shuffle order for ``n`` points."""
    rng = np.random.default_rng(seed)
    return tuple(int(i) for i in rng.permutation(n))


def _float_two(ax, ay, bx, by):
    """Diametral circle of two points, as plain floats (``Disk``-free)."""
    cx, cy = (ax + bx) / 2.0, (ay + by) / 2.0
    return cx, cy, math.hypot(bx - ax, by - ay) / 2.0


def _float_trivial(ax, ay, bx, by, cx, cy):
    """The three-boundary-point circle of :func:`_trivial`, on plain floats."""
    for (px, py), (qx, qy) in (
        ((ax, ay), (bx, by)),
        ((ax, ay), (cx, cy)),
        ((bx, by), (cx, cy)),
    ):
        ox, oy, r = _float_two(px, py, qx, qy)
        eps = 1e-12 * max(1.0, r)
        if (
            math.hypot(ax - ox, ay - oy) <= r + eps
            and math.hypot(bx - ox, by - oy) <= r + eps
            and math.hypot(cx - ox, cy - oy) <= r + eps
        ):
            return ox, oy, r
    d = 2.0 * ((bx - ax) * (cy - ay) - (by - ay) * (cx - ax))
    if abs(d) <= EPS:
        return None
    a2 = ax * ax + ay * ay
    b2 = bx * bx + by * by
    c2 = cx * cx + cy * cy
    ux = (a2 * (by - cy) + b2 * (cy - ay) + c2 * (ay - by)) / d
    uy = (a2 * (cx - bx) + b2 * (ax - cx) + c2 * (bx - ax)) / d
    return ux, uy, math.hypot(ux - ax, uy - ay)


def smallest_enclosing_circle(
    points: Sequence[PointLike], *, seed: Optional[int] = 0
) -> Disk:
    """Smallest closed disk containing every point in ``points``.

    Uses Welzl's randomised incremental algorithm (iterative variant).  The
    shuffle is seeded (default seed 0) so results are reproducible; pass
    ``seed=None`` for an unshuffled run, which is fine for the small point
    sets a robot sees.

    This runs after every processed activation (once per metrics sample
    and inside Ando et al.'s algorithm on every Look), so the inner loops
    work on plain floats — same formulas, same tolerances, same seeded
    order as the object form, with the :class:`Disk` built only at the
    end.
    """
    pts = [Point.of(p) for p in points]
    if not pts:
        raise ValueError("smallest enclosing circle of an empty point set")
    if seed is not None and len(pts) > 3:
        order = _seeded_order(len(pts), seed)
        pts = [pts[i] for i in order]
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]

    # (cx, cy, radius) of the current candidate, None before the first point.
    disk = None
    for i in range(len(pts)):
        px, py = xs[i], ys[i]
        if disk is not None:
            cx, cy, cr = disk
            if math.hypot(px - cx, py - cy) <= cr + 1e-7 * max(1.0, cr):
                continue
        # p must be on the boundary of the smallest circle of pts[:i + 1]
        disk = (px, py, 0.0)
        for j in range(i):
            qx, qy = xs[j], ys[j]
            cx, cy, cr = disk
            if math.hypot(qx - cx, qy - cy) <= cr + 1e-7 * max(1.0, cr):
                continue
            disk = _float_two(px, py, qx, qy)
            for k in range(j):
                rx, ry = xs[k], ys[k]
                cx, cy, cr = disk
                if math.hypot(rx - cx, ry - cy) <= cr + 1e-7 * max(1.0, cr):
                    continue
                candidate = _float_trivial(px, py, qx, qy, rx, ry)
                if candidate is None:
                    # Collinear triple: fall back to the diametral pair.
                    triple = ((px, py), (qx, qy), (rx, ry))
                    far_pair = max(
                        ((a, b) for a in triple for b in triple),
                        key=lambda ab: math.hypot(ab[0][0] - ab[1][0], ab[0][1] - ab[1][1]),
                    )
                    (fax, fay), (fbx, fby) = far_pair
                    candidate = _float_two(fax, fay, fbx, fby)
                disk = candidate
    assert disk is not None
    return Disk(Point(disk[0], disk[1]), disk[2])


def sec_center(points: Sequence[PointLike], *, seed: Optional[int] = 0) -> Point:
    """Centre of the smallest enclosing circle of ``points``."""
    return smallest_enclosing_circle(points, seed=seed).center


# Memo of SEC solutions keyed by the exact bytes of the input array: one
# entry per distinct neighbourhood, storing the centre plus the (up to
# three) support-point indices that define it.  A robot whose visibility
# set did not move between rounds re-hits its entry, so the re-check is a
# hash of the bytes rather than a Welzl run.  Bounded FIFO so mega-swarm
# sweeps cannot grow it without limit.
_SEC_CACHE: dict = {}
_SEC_CACHE_MAX = 4096


def _welzl_float_core(xs: list, ys: list, xs_arr: np.ndarray, ys_arr: np.ndarray):
    """Welzl's loops on plain floats with a vectorized violator scan.

    Control flow is *identical* to :func:`smallest_enclosing_circle`: the
    acceptance test per point has no side effects, so skipping a run of
    accepted points in one ``np.hypot`` sweep — with every surviving
    candidate re-confirmed by the scalar ``math.hypot`` test in index
    order — visits exactly the same violators with exactly the same
    candidate disks.  The prefilter margin ``(1 - 1e-12)`` is orders of
    magnitude wider than the one-ulp disagreement between ``np.hypot``
    and ``math.hypot``, so no true violator can slip past it.  Returns
    ``(cx, cy, r, support)`` with ``support`` the indices (into the given
    order) of the points the final disk was built from.
    """
    m = len(xs)
    disk = None
    support: tuple = ()
    i = 0
    while i < m:
        if disk is not None:
            cx, cy, cr = disk
            tol = cr + 1e-7 * max(1.0, cr)
            approx = np.hypot(xs_arr[i:] - cx, ys_arr[i:] - cy)
            nxt = None
            for c in np.flatnonzero(approx > tol * (1.0 - 1e-12)):
                idx = i + int(c)
                if math.hypot(xs[idx] - cx, ys[idx] - cy) > tol:
                    nxt = idx
                    break
            if nxt is None:
                break
            i = nxt
        px, py = xs[i], ys[i]
        disk = (px, py, 0.0)
        support = (i,)
        for j in range(i):
            qx, qy = xs[j], ys[j]
            cx, cy, cr = disk
            if math.hypot(qx - cx, qy - cy) <= cr + 1e-7 * max(1.0, cr):
                continue
            disk = _float_two(px, py, qx, qy)
            support = (i, j)
            for k in range(j):
                rx, ry = xs[k], ys[k]
                cx, cy, cr = disk
                if math.hypot(rx - cx, ry - cy) <= cr + 1e-7 * max(1.0, cr):
                    continue
                candidate = _float_trivial(px, py, qx, qy, rx, ry)
                if candidate is None:
                    # Collinear triple: fall back to the diametral pair.
                    triple = ((px, py), (qx, qy), (rx, ry))
                    far_pair = max(
                        ((a, b) for a in triple for b in triple),
                        key=lambda ab: math.hypot(ab[0][0] - ab[1][0], ab[0][1] - ab[1][1]),
                    )
                    (fax, fay), (fbx, fby) = far_pair
                    candidate = _float_two(fax, fay, fbx, fby)
                disk = candidate
                support = (i, j, k)
        i += 1
    assert disk is not None
    return disk[0], disk[1], disk[2], support


def sec_center_array(arr: np.ndarray, *, seed: Optional[int] = 0):
    """Centre of the SEC of the ``(m, 2)`` rows of ``arr``, as two floats.

    The float-core fast form of :func:`sec_center`: same seeded shuffle,
    same tolerances, same inner loops, bit-identical result — without
    building any :class:`~repro.geometry.point.Point` or
    :class:`~repro.geometry.disk.Disk`, and memoised on the exact bytes
    of the input so unchanged neighbourhoods cost a hash lookup.
    """
    a = np.ascontiguousarray(arr, dtype=float)
    if a.ndim != 2 or a.shape[1] != 2 or a.shape[0] == 0:
        raise ValueError("sec_center_array needs a non-empty (m, 2) array")
    key = (a.shape[0], seed, a.tobytes())
    hit = _SEC_CACHE.get(key)
    if hit is not None:
        return hit[0], hit[1]
    m = a.shape[0]
    if seed is not None and m > 3:
        a = a[list(_seeded_order(m, seed))]
    xs_arr = np.ascontiguousarray(a[:, 0])
    ys_arr = np.ascontiguousarray(a[:, 1])
    cx, cy, _r, support = _welzl_float_core(
        xs_arr.tolist(), ys_arr.tolist(), xs_arr, ys_arr
    )
    if len(_SEC_CACHE) >= _SEC_CACHE_MAX:
        _SEC_CACHE.pop(next(iter(_SEC_CACHE)))
    _SEC_CACHE[key] = (cx, cy, support)
    return cx, cy


def sec_centers(batches: Sequence[np.ndarray], *, seed: Optional[int] = 0) -> np.ndarray:
    """SEC centres for a round's visibility sets, as a ``(k, 2)`` array.

    One call per round from the batched Ando path: each entry of
    ``batches`` is one robot's ``(m_i, 2)`` local point set (self plus
    perceived neighbours).  Per-set solves go through the memo, so robots
    whose neighbourhood bytes did not change since the previous round are
    O(1) re-checks.
    """
    out = np.empty((len(batches), 2), dtype=float)
    for row, batch in enumerate(batches):
        out[row] = sec_center_array(batch, seed=seed)
    return out


def sec_radius(points: Sequence[PointLike], *, seed: Optional[int] = 0) -> float:
    """Radius of the smallest enclosing circle of ``points``."""
    return smallest_enclosing_circle(points, seed=seed).radius


def is_valid_enclosing_circle(
    disk: Disk, points: Sequence[PointLike], *, eps: float = 1e-7
) -> bool:
    """Check that ``disk`` contains every point (a convenient test helper)."""
    return all(disk.contains(p, eps=eps) for p in points)


def critical_points(
    disk: Disk, points: Sequence[PointLike], *, eps: float = 1e-6
) -> list[Point]:
    """Points lying (within ``eps``) on the boundary of ``disk``.

    The congregation argument of Section 5 works with the up-to-three
    critical points of the smallest circle bounding the convex hull.
    """
    result = []
    for p in points:
        p = Point.of(p)
        if abs(disk.center.distance_to(p) - disk.radius) <= eps:
            result.append(p)
    return result
