"""Closed disks and circles.

Safe regions in all three algorithms (Ando et al., Katreniak, and the
paper's KKNPS algorithm) are disks or unions/intersections of disks, so
the :class:`Disk` type carries the containment, intersection and
lens-geometry operations those constructions need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .point import Point, PointLike
from .tolerances import EPS


@dataclass(frozen=True)
class Disk:
    """The closed disk of radius ``radius`` centred at ``center``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < -EPS:
            raise ValueError(f"disk radius must be non-negative, got {self.radius}")
        object.__setattr__(self, "center", Point.of(self.center))
        object.__setattr__(self, "radius", float(max(0.0, self.radius)))

    # -- predicates ----------------------------------------------------------
    def contains(self, point: PointLike, *, eps: float = EPS) -> bool:
        """Closed containment test, with tolerance ``eps``."""
        return self.center.distance_to(point) <= self.radius + eps

    def contains_array(self, px, py, *, eps: float = EPS):
        """Vectorized :meth:`contains` over coordinate arrays.

        Each verdict feeds the same scalar ``math.hypot`` distance into
        the same comparison as :meth:`contains`, so the boolean array is
        bit-identical to looping ``contains(Point(x, y), eps=eps)``.
        """
        px = np.ascontiguousarray(px, dtype=np.float64)
        py = np.ascontiguousarray(py, dtype=np.float64)
        count = len(px)
        dist = np.fromiter(
            map(math.hypot, (self.center.x - px).tolist(), (self.center.y - py).tolist()),
            dtype=np.float64,
            count=count,
        )
        return dist <= self.radius + eps

    def contains_disk(self, other: "Disk", *, eps: float = EPS) -> bool:
        """True when ``other`` lies entirely inside this disk."""
        return self.center.distance_to(other.center) + other.radius <= self.radius + eps

    def intersects(self, other: "Disk", *, eps: float = EPS) -> bool:
        """True when the two closed disks share at least one point."""
        return self.center.distance_to(other.center) <= self.radius + other.radius + eps

    def on_boundary(self, point: PointLike, *, eps: float = EPS) -> bool:
        """True when ``point`` lies on the bounding circle up to ``eps``."""
        return abs(self.center.distance_to(point) - self.radius) <= eps

    # -- geometry --------------------------------------------------------------
    def area(self) -> float:
        """Area of the disk."""
        return math.pi * self.radius * self.radius

    def boundary_point(self, angle: float) -> Point:
        """Point on the bounding circle in direction ``angle`` from the centre."""
        return self.center + Point.polar(self.radius, angle)

    def closest_point_to(self, point: PointLike) -> Point:
        """The point of the disk closest to ``point`` (``point`` itself if inside)."""
        point = Point.of(point)
        if self.contains(point):
            return point
        return self.center.toward(point, self.radius)

    def farthest_point_from(self, point: PointLike) -> Point:
        """The point of the disk farthest from ``point``."""
        point = Point.of(point)
        if self.center.is_close(point):
            return self.boundary_point(0.0)
        direction = (self.center - point).unit()
        return self.center + direction * self.radius

    def clamp(self, point: PointLike) -> Point:
        """Alias of :meth:`closest_point_to` (projection onto the disk)."""
        return self.closest_point_to(point)

    def scaled(self, factor: float) -> "Disk":
        """Disk with the same centre and radius scaled by ``factor``."""
        return Disk(self.center, self.radius * factor)

    def translated(self, offset: PointLike) -> "Disk":
        """Disk translated by ``offset``."""
        return Disk(self.center + Point.of(offset), self.radius)

    # -- circle-circle intersections ------------------------------------------
    def boundary_intersections(self, other: "Disk") -> List[Point]:
        """Intersection points of the two bounding circles (0, 1 or 2 points)."""
        d = self.center.distance_to(other.center)
        r0, r1 = self.radius, other.radius
        if d <= EPS and abs(r0 - r1) <= EPS:
            return []  # coincident circles: infinitely many points
        if d > r0 + r1 + EPS or d < abs(r0 - r1) - EPS or d <= EPS:
            return []
        a = (r0 * r0 - r1 * r1 + d * d) / (2.0 * d)
        h_sq = r0 * r0 - a * a
        if h_sq < -EPS:
            return []
        h = math.sqrt(max(0.0, h_sq))
        base = self.center + (other.center - self.center) * (a / d)
        if h <= EPS:
            return [base]
        offset = (other.center - self.center).perpendicular() * (h / d)
        return [base + offset, base - offset]

    def intersection_area(self, other: "Disk") -> float:
        """Area of the lens formed by the two closed disks."""
        d = self.center.distance_to(other.center)
        r0, r1 = self.radius, other.radius
        if d >= r0 + r1:
            return 0.0
        if d <= abs(r0 - r1):
            small = min(r0, r1)
            return math.pi * small * small
        alpha = math.acos(max(-1.0, min(1.0, (d * d + r0 * r0 - r1 * r1) / (2 * d * r0))))
        beta = math.acos(max(-1.0, min(1.0, (d * d + r1 * r1 - r0 * r0) / (2 * d * r1))))
        return (
            r0 * r0 * (alpha - math.sin(2 * alpha) / 2.0)
            + r1 * r1 * (beta - math.sin(2 * beta) / 2.0)
        )

    def segment_intersection_length(self, a: PointLike, b: PointLike) -> float:
        """Length of the part of segment ``a b`` inside the disk."""
        a, b = Point.of(a), Point.of(b)
        d = b - a
        length = d.norm()
        if length <= EPS:
            return 0.0
        f = a - self.center
        qa = d.norm_squared()
        qb = 2.0 * f.dot(d)
        qc = f.norm_squared() - self.radius * self.radius
        disc = qb * qb - 4 * qa * qc
        if disc <= 0.0:
            return 0.0
        sqrt_disc = math.sqrt(disc)
        t0 = max(0.0, (-qb - sqrt_disc) / (2 * qa))
        t1 = min(1.0, (-qb + sqrt_disc) / (2 * qa))
        if t1 <= t0:
            return 0.0
        return (t1 - t0) * length


def lens_center(a: Disk, b: Disk) -> Optional[Point]:
    """Centre point of the lens ``a ∩ b``.

    The paper's destination rule picks "the middle point of the segment
    connecting the centers of the safe regions corresponding to the two
    [extreme] distant neighbours"; for two disks of equal radius this is
    exactly the centre of their lens.  Returns ``None`` when the disks are
    disjoint.
    """
    if not a.intersects(b):
        return None
    return a.center.midpoint(b.center)


def disks_common_point(disks: Sequence[Disk], point: PointLike, *, eps: float = EPS) -> bool:
    """True when ``point`` belongs to every disk in ``disks``."""
    return all(d.contains(point, eps=eps) for d in disks)


def farthest_point_in_disk_from(disk: Disk, anchor: PointLike) -> Tuple[Point, float]:
    """Farthest point of ``disk`` from ``anchor`` together with its distance."""
    p = disk.farthest_point_from(anchor)
    return p, Point.of(anchor).distance_to(p)
