"""Line segments: projection, distance and intersection primitives."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from .point import Point, PointLike
from .tolerances import EPS


@dataclass(frozen=True)
class Segment:
    """The closed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    @staticmethod
    def of(a: PointLike, b: PointLike) -> "Segment":
        """Build a segment from any two point-like objects."""
        return Segment(Point.of(a), Point.of(b))

    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    def direction(self) -> Point:
        """Unit direction from ``start`` to ``end``."""
        return self.start.direction_to(self.end)

    def midpoint(self) -> Point:
        """Midpoint of the segment."""
        return self.start.midpoint(self.end)

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` (0 = start, 1 = end); ``t`` is not clamped."""
        return self.start.lerp(self.end, t)

    def project_parameter(self, point: PointLike) -> float:
        """Parameter of the orthogonal projection of ``point`` onto the supporting line."""
        point = Point.of(point)
        d = self.end - self.start
        denom = d.norm_squared()
        if denom <= EPS * EPS:
            return 0.0
        return (point - self.start).dot(d) / denom

    def closest_point(self, point: PointLike) -> Point:
        """Closest point of the (closed) segment to ``point``."""
        t = max(0.0, min(1.0, self.project_parameter(point)))
        return self.point_at(t)

    def distance_to_point(self, point: PointLike) -> float:
        """Euclidean distance from ``point`` to the segment."""
        return Point.of(point).distance_to(self.closest_point(point))

    def contains_point(self, point: PointLike, *, eps: float = EPS) -> bool:
        """True when ``point`` lies on the segment up to ``eps``."""
        return self.distance_to_point(point) <= eps

    def reversed(self) -> "Segment":
        """The same segment traversed in the opposite direction."""
        return Segment(self.end, self.start)

    def translate(self, offset: PointLike) -> "Segment":
        """Segment translated by ``offset``."""
        offset = Point.of(offset)
        return Segment(self.start + offset, self.end + offset)

    def intersection(self, other: "Segment") -> Optional[Point]:
        """Proper intersection point of two segments, if there is exactly one.

        Returns ``None`` when the segments do not intersect or are
        collinear-overlapping (no unique point).
        """
        p, r = self.start, self.end - self.start
        q, s = other.start, other.end - other.start
        denom = r.cross(s)
        qp = q - p
        if abs(denom) <= EPS:
            return None
        t = qp.cross(s) / denom
        u = qp.cross(r) / denom
        if -EPS <= t <= 1.0 + EPS and -EPS <= u <= 1.0 + EPS:
            return self.point_at(t)
        return None


def distance_point_to_line(point: PointLike, a: PointLike, b: PointLike) -> float:
    """Distance from ``point`` to the infinite line through ``a`` and ``b``."""
    point, a, b = Point.of(point), Point.of(a), Point.of(b)
    d = b - a
    n = d.norm()
    if n <= EPS:
        return point.distance_to(a)
    return abs((point - a).cross(d)) / n


def collinear(a: PointLike, b: PointLike, c: PointLike, *, eps: float = EPS) -> bool:
    """True when the three points are collinear up to ``eps``."""
    a, b, c = Point.of(a), Point.of(b), Point.of(c)
    return abs((b - a).cross(c - a)) <= eps * max(1.0, (b - a).norm() * (c - a).norm())


def orientation(a: PointLike, b: PointLike, c: PointLike) -> int:
    """Orientation of the ordered triple: +1 counter-clockwise, -1 clockwise, 0 collinear."""
    a, b, c = Point.of(a), Point.of(b), Point.of(c)
    cross = (b - a).cross(c - a)
    if cross > EPS:
        return 1
    if cross < -EPS:
        return -1
    return 0


def foot_of_perpendicular(point: PointLike, a: PointLike, b: PointLike) -> Point:
    """Foot of the perpendicular from ``point`` onto the line through ``a`` and ``b``."""
    point, a, b = Point.of(point), Point.of(a), Point.of(b)
    d = b - a
    denom = d.norm_squared()
    if denom <= EPS * EPS:
        return a
    t = (point - a).dot(d) / denom
    return a + d * t


def perpendicular_bisector_intersection(
    a: PointLike, b: PointLike, c: PointLike
) -> Optional[Point]:
    """Circumcentre of the (non-degenerate) triangle ``a b c``.

    Returns ``None`` for collinear input.  Used by the smallest-enclosing
    circle routine.
    """
    a, b, c = Point.of(a), Point.of(b), Point.of(c)
    d = 2.0 * ((b - a).cross(c - a))
    if abs(d) <= EPS:
        return None
    a2, b2, c2 = a.norm_squared(), b.norm_squared(), c.norm_squared()
    ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d
    uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d
    return Point(ux, uy)


def clamp_motion(start: PointLike, target: PointLike, max_length: float) -> Point:
    """Truncate the move ``start -> target`` to at most ``max_length``."""
    start, target = Point.of(start), Point.of(target)
    length = start.distance_to(target)
    if length <= max_length or length <= EPS:
        return target
    return start.toward(target, max_length)
