"""Local coordinate frames and symmetric angular distortions.

Robots in the OBLOT model are disoriented: every Look phase reports
positions in a private coordinate system that may be an arbitrary rigid
transformation (rotation, reflection, translation, and here also uniform
scaling of the length unit) of the global frame, and may additionally be
*distorted*.  The paper's error model (Sections 2.3.3 and 6.1) considers
symmetric distortions ``mu`` of the angular coordinate — continuous
bijections of the circle with ``mu(theta + pi) = mu(theta) + pi`` — whose
*skew* is bounded by ``lambda < 1``:

    (1 - lambda) * xi <= mu(theta + xi) - mu(theta) <= (1 + lambda) * xi.

This module provides rigid local frames and a concrete parametric family
of bounded-skew symmetric distortions used by the error-model experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from .angles import normalize_angle_positive
from .point import Point, PointLike
from .tolerances import EPS


@dataclass(frozen=True)
class LocalFrame:
    """A rigid private coordinate frame (rotation, optional reflection, origin, scale)."""

    origin: Point
    rotation: float = 0.0
    reflected: bool = False
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= EPS:
            raise ValueError("frame scale must be positive")
        object.__setattr__(self, "origin", Point.of(self.origin))

    def to_local(self, point: PointLike) -> Point:
        """Express a global point in this frame."""
        p = Point.of(point) - self.origin
        p = p.rotated(-self.rotation)
        if self.reflected:
            p = Point(p.x, -p.y)
        return p / self.scale

    def to_global(self, point: PointLike) -> Point:
        """Express a frame-local point in global coordinates."""
        p = Point.of(point) * self.scale
        if self.reflected:
            p = Point(p.x, -p.y)
        p = p.rotated(self.rotation)
        return p + self.origin

    def to_local_many(self, points: Iterable[PointLike]) -> List[Point]:
        """Vector-friendly convenience: convert a collection of points."""
        return [self.to_local(p) for p in points]

    def to_global_many(self, points: Iterable[PointLike]) -> List[Point]:
        """Convert a collection of frame-local points to global coordinates."""
        return [self.to_global(p) for p in points]

    def to_local_array(self, array) -> "np.ndarray":
        """Express an ``(m, 2)`` array of global points in this frame.

        The rotation coefficients are the same ``math.cos``/``math.sin``
        scalars the per-point path uses and the elementwise arithmetic is
        IEEE-identical, so the rows match :meth:`to_local` bit for bit.
        """
        arr = np.asarray(array, dtype=float).reshape(-1, 2)
        x = arr[:, 0] - self.origin.x
        y = arr[:, 1] - self.origin.y
        c, s = math.cos(-self.rotation), math.sin(-self.rotation)
        rx = c * x - s * y
        ry = s * x + c * y
        if self.reflected:
            ry = -ry
        return np.column_stack((rx / self.scale, ry / self.scale))

    def to_global_array(self, array) -> "np.ndarray":
        """Express an ``(m, 2)`` array of frame-local points globally.

        Bit-identical to mapping :meth:`to_global` over the rows.
        """
        arr = np.asarray(array, dtype=float).reshape(-1, 2)
        x = arr[:, 0] * self.scale
        y = arr[:, 1] * self.scale
        if self.reflected:
            y = -y
        c, s = math.cos(self.rotation), math.sin(self.rotation)
        rx = c * x - s * y
        ry = s * x + c * y
        return np.column_stack((rx + self.origin.x, ry + self.origin.y))


@dataclass(frozen=True)
class SymmetricDistortion:
    """A bounded-skew symmetric distortion of the angular coordinate.

    The concrete family used is ``mu(theta) = theta + (amplitude / frequency)
    * sin(frequency * theta)`` with an even ``frequency``; the evenness
    gives the required symmetry ``mu(theta + pi) = mu(theta) + pi`` and the
    derivative ``1 + amplitude * cos(frequency * theta)`` keeps the skew
    bounded by ``amplitude``.

    ``amplitude = 0`` is the identity (no distortion).
    """

    amplitude: float = 0.0
    frequency: int = 2
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("distortion amplitude (skew) must lie in [0, 1)")
        if self.frequency % 2 != 0 or self.frequency <= 0:
            raise ValueError("distortion frequency must be a positive even integer")

    def skew(self) -> float:
        """The skew bound lambda of this distortion."""
        return self.amplitude

    def apply_angle(self, theta: float) -> float:
        """Distorted image of the angle ``theta`` (radians)."""
        if self.amplitude == 0.0:
            return theta
        return theta + (self.amplitude / self.frequency) * math.sin(
            self.frequency * (theta - self.phase)
        )

    def apply_angle_array(self, theta: np.ndarray) -> np.ndarray:
        """Distorted image of an array of angles (the batch-perception form).

        Uses ``np.sin`` where :meth:`apply_angle` uses ``math.sin``; both
        snapshot paths route through this form so their outputs agree
        exactly.
        """
        theta = np.asarray(theta, dtype=float)
        if self.amplitude == 0.0:
            return theta
        return theta + (self.amplitude / self.frequency) * np.sin(
            self.frequency * (theta - self.phase)
        )

    def apply_vector(self, vector: PointLike) -> Point:
        """Distort a displacement vector: same length, distorted direction."""
        v = Point.of(vector)
        r = v.norm()
        if r <= EPS or self.amplitude == 0.0:
            return v
        return Point.polar(r, self.apply_angle(v.angle()))

    def is_symmetric(self, *, samples: int = 64, eps: float = 1e-9) -> bool:
        """Numerically verify ``mu(theta + pi) = mu(theta) + pi`` (a test helper)."""
        for i in range(samples):
            theta = 2.0 * math.pi * i / samples
            lhs = normalize_angle_positive(self.apply_angle(theta + math.pi))
            rhs = normalize_angle_positive(self.apply_angle(theta) + math.pi)
            diff = abs(lhs - rhs)
            diff = min(diff, 2.0 * math.pi - diff)
            if diff > eps:
                return False
        return True

    def max_observed_skew(self, *, samples: int = 2048) -> float:
        """Largest observed relative deviation of angle differences (test helper)."""
        worst = 0.0
        for i in range(samples):
            theta = 2.0 * math.pi * i / samples
            xi = math.pi * (i % 7 + 1) / 16.0
            delta = self.apply_angle(theta + xi) - self.apply_angle(theta)
            worst = max(worst, abs(delta - xi) / xi)
        return worst


def random_frame(rng, *, allow_reflection: bool = True, scale_range=(1.0, 1.0)) -> LocalFrame:
    """Draw a random private frame for one Look phase.

    ``rng`` is a ``numpy.random.Generator``; the origin is left at (0, 0)
    because snapshots are always expressed relative to the observing robot.
    """
    rotation = float(rng.uniform(0.0, 2.0 * math.pi))
    reflected = bool(rng.integers(0, 2)) if allow_reflection else False
    lo, hi = scale_range
    scale = float(rng.uniform(lo, hi)) if hi > lo else float(lo)
    return LocalFrame(Point.origin(), rotation=rotation, reflected=reflected, scale=scale)
